"""An enforcement oracle independent of the query rewriter.

:class:`EnforcementOracle` computes the result an enforced query *should*
return without ever invoking :func:`repro.core.rewriter.rewrite_query` or
the engine-registered ``complieswith`` UDF.  Instead it exploits the
semantic identity the paper's rewriting rests on: conjoining
``complieswith(asm, t.policy)`` to a block's WHERE clause is (for inner
joins) equivalent to running the *unmodified* block over a copy of the
table that was pre-filtered to the policy-compliant rows.  The oracle:

1. derives the query signature with the production
   :class:`~repro.core.signatures.SignatureDeriver` (shared by construction
   — signatures are the *specification* of which accesses occur, and both
   implementations must agree on them);
2. for every base-table binding of every block, computes the action
   signature masks (Def. 14) and materializes a shadow copy of the table
   holding exactly the rows whose policy mask satisfies **all** of them
   under the direct Python :func:`~repro.core.masks.complies_with` check —
   mirroring the strict UDF, a NULL policy mask never complies;
3. rebuilds the statement with each base-table reference redirected to its
   shadow copy (aliased back to the original binding so column references
   resolve unchanged), recursing into subqueries exactly where Listing 2's
   ``rwSubQueries`` does — correlated references attributed to an *outer*
   binding get no filter in the inner block, matching the rewriter;
4. executes the rebuilt statement on a scratch database with a fresh
   engine, so no state of the production pipeline can leak into the
   expectation.

The only shared code between oracle and implementation is signature
derivation, mask encoding and the SELECT executor; the rewriter, the plan
cache, the prepared-statement machinery and the wire protocol — the
subsystems the differential runner is meant to falsify — contribute
nothing to the expected result.
"""

from __future__ import annotations

import dataclasses

from ..core.admin import AccessControlManager, POLICY_COLUMN
from ..core.masks import complies_with
from ..core.query_model import query_id as compute_query_id
from ..core.signatures import QuerySignature, SignatureDeriver, TableSignature
from ..engine import Database, TableSchema
from ..engine.result import ResultSet
from ..sql import ast, parse_statement


class EnforcementOracle:
    """Computes expected enforced results by policy pre-filtering."""

    def __init__(self, admin: AccessControlManager):
        self.admin = admin
        self.deriver = SignatureDeriver(admin, admin)

    def expected(
        self,
        query: "str | ast.Select | ast.SetOperation",
        purpose: str,
        params=None,
    ) -> ResultSet:
        """The result the enforced execution of ``query`` must produce."""
        if isinstance(query, str):
            statement = parse_statement(query)
        else:
            statement = query
        if not isinstance(statement, (ast.Select, ast.SetOperation)):
            raise TypeError(
                f"oracle expects a SELECT statement, got {type(statement).__name__}"
            )
        self.admin.purposes.get(purpose)  # same validation as the monitor
        scratch = Database("oracle")
        self._shadows: dict[tuple[str, tuple[str, ...]], str] = {}
        for name in self.admin.target_tables():
            source = self.admin.database.table(name)
            self._copy_table(scratch, source.schema, name, source.rows)
        transformed = self._transform_statement(statement, purpose, scratch)
        return scratch.prepare(transformed).execute(params)

    # -- shadow tables ---------------------------------------------------------

    @staticmethod
    def _copy_table(scratch: Database, schema, name: str, rows) -> None:
        table = scratch.create_table(TableSchema(name, list(schema.columns)))
        table.rows = list(rows)

    def _shadow_for(
        self, scratch: Database, table_signature: TableSignature, purpose: str
    ) -> str:
        """The pre-filtered copy for one ⟨table, mask set⟩ combination."""
        layout = self.admin.layout(table_signature.table)
        masks = [
            layout.signature_mask(action.columns, action.action_type, purpose)
            for action in table_signature.actions
        ]
        key = (table_signature.table, tuple(sorted(m.bits() for m in masks)))
        name = self._shadows.get(key)
        if name is not None:
            return name
        source = self.admin.database.table(table_signature.table)
        policy_index = source.schema.column_index(POLICY_COLUMN)
        rows = [
            row
            for row in source.rows
            if self._admits(row[policy_index], masks)
        ]
        name = f"__oracle_{table_signature.table}_{len(self._shadows)}"
        self._copy_table(scratch, source.schema, name, rows)
        self._shadows[key] = name
        return name

    @staticmethod
    def _admits(policy_mask, masks) -> bool:
        """Direct Def. 15 evaluation; NULL masks never comply (strict UDF)."""
        if not masks:
            return True
        if policy_mask is None:
            return False
        return all(complies_with(mask, policy_mask) for mask in masks)

    # -- statement transformation ----------------------------------------------

    def _transform_statement(
        self,
        statement: "ast.Select | ast.SetOperation",
        purpose: str,
        scratch: Database,
    ) -> "ast.Select | ast.SetOperation":
        """Per-branch transformation: each SELECT gets its own signature,
        mirroring the monitor's branch-by-branch set-operation enforcement."""
        if isinstance(statement, ast.SetOperation):
            return dataclasses.replace(
                statement,
                left=self._transform_statement(statement.left, purpose, scratch),
                right=self._transform_statement(statement.right, purpose, scratch),
            )
        signature = self.deriver.derive(statement, purpose)
        return self._transform_select(statement, signature, scratch)

    def _transform_select(
        self, select: ast.Select, signature: QuerySignature, scratch: Database
    ) -> ast.Select:
        sources = tuple(
            self._transform_source(source, signature, scratch)
            for source in select.sources
        )
        items = tuple(
            dataclasses.replace(
                item,
                expression=self._transform_expression(
                    item.expression, signature, scratch
                ),
            )
            for item in select.items
        )
        where = (
            self._transform_expression(select.where, signature, scratch)
            if select.where is not None
            else None
        )
        group_by = tuple(
            self._transform_expression(expression, signature, scratch)
            for expression in select.group_by
        )
        having = (
            self._transform_expression(select.having, signature, scratch)
            if select.having is not None
            else None
        )
        order_by = tuple(
            dataclasses.replace(
                item,
                expression=self._transform_expression(
                    item.expression, signature, scratch
                ),
            )
            for item in select.order_by
        )
        return dataclasses.replace(
            select,
            items=items,
            sources=sources,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
        )

    def _transform_source(
        self,
        source: ast.TableSource,
        signature: QuerySignature,
        scratch: Database,
    ) -> ast.TableSource:
        if isinstance(source, ast.TableName):
            table_signature = signature.table_signature(source.binding)
            if table_signature is None or not table_signature.actions:
                return source  # unreferenced source: no conjuncts, no filter
            shadow = self._shadow_for(scratch, table_signature, signature.purpose)
            # Alias the shadow back to the original binding so every
            # qualified column reference resolves exactly as before.
            return ast.TableName(shadow, alias=source.binding)
        if isinstance(source, ast.SubquerySource):
            # Query id computed on the *original* sub-select, as the
            # rewriter does, before any shadow substitution changes it.
            sub_signature = signature.subquery_signature(
                compute_query_id(source.select)
            )
            return dataclasses.replace(
                source,
                select=self._transform_select(
                    source.select, sub_signature, scratch
                ),
            )
        if isinstance(source, ast.Join):
            return dataclasses.replace(
                source,
                left=self._transform_source(source.left, signature, scratch),
                right=self._transform_source(source.right, signature, scratch),
                condition=(
                    self._transform_expression(
                        source.condition, signature, scratch
                    )
                    if source.condition is not None
                    else None
                ),
            )
        return source

    def _transform_expression(
        self,
        expression: ast.Expression,
        signature: QuerySignature,
        scratch: Database,
    ) -> ast.Expression:
        """Rebuild an expression, redirecting nested subqueries.

        The three subquery-bearing node types are handled explicitly (they
        need the sub-signature lookup); everything else is rebuilt
        generically field by field, so new expression node types are
        covered without touching the oracle.
        """

        def sub(select: ast.Select) -> ast.Select:
            sub_signature = signature.subquery_signature(compute_query_id(select))
            return self._transform_select(select, sub_signature, scratch)

        if isinstance(expression, ast.InSubquery):
            return dataclasses.replace(
                expression,
                operand=self._transform_expression(
                    expression.operand, signature, scratch
                ),
                subquery=sub(expression.subquery),
            )
        if isinstance(expression, ast.Exists):
            return dataclasses.replace(expression, subquery=sub(expression.subquery))
        if isinstance(expression, ast.ScalarSubquery):
            return dataclasses.replace(expression, subquery=sub(expression.subquery))

        changes = {}
        for field_info in dataclasses.fields(expression):
            value = getattr(expression, field_info.name)
            rebuilt = self._transform_value(value, signature, scratch)
            if rebuilt is not value:
                changes[field_info.name] = rebuilt
        return dataclasses.replace(expression, **changes) if changes else expression

    def _transform_value(self, value, signature, scratch):
        if isinstance(value, ast.Expression):
            return self._transform_expression(value, signature, scratch)
        if isinstance(value, tuple):
            rebuilt = tuple(
                self._transform_value(item, signature, scratch) for item in value
            )
            return rebuilt if rebuilt != value else value
        return value
