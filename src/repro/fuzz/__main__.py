"""Entry point for ``python -m repro.fuzz``."""

import sys

from .cli import main

sys.exit(main())
