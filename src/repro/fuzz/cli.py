"""``python -m repro.fuzz`` — the differential fuzzing campaign driver.

Runs generated cases through every production enforcement path against the
rewriter-independent oracle until the case budget or the time budget runs
out.  On a disagreement the failing case is minimized with the shrinker,
written to a replayable repro file, and the exact replay command is
printed.  Exit status is 0 for a clean campaign, 1 if any case failed,
2 for usage errors.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .generator import FuzzQueryGenerator
from .inject import BUGS, inject_bug
from .repro_file import replay, save_repro
from .runner import DifferentialRunner
from .scenario import POLICY_MODES, ScenarioSpec, build_fuzz_scenario
from .shrinker import shrink


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of the enforcement pipeline.",
    )
    parser.add_argument("--seed", default="2015", help="campaign seed (default: 2015)")
    parser.add_argument(
        "--cases", type=int, default=200, help="case budget (default: 200)"
    )
    parser.add_argument(
        "--start", type=int, default=0, help="first case index (default: 0)"
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop starting new cases after this many seconds",
    )
    parser.add_argument(
        "--replay", metavar="FILE", help="replay a saved repro file and exit"
    )
    parser.add_argument(
        "--inject-bug",
        choices=BUGS,
        help="run with a deliberate enforcement defect (oracle self-test)",
    )
    parser.add_argument(
        "--out",
        default="fuzz-repros",
        metavar="DIR",
        help="directory for minimized repro files (default: fuzz-repros)",
    )
    parser.add_argument(
        "--max-failures",
        type=int,
        default=5,
        help="stop after this many failing cases (default: 5)",
    )
    parser.add_argument(
        "--no-server",
        action="store_true",
        help="skip the wire-protocol paths (in-process paths only)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[],
        metavar="N",
        help=(
            "also execute every case through async sharded deployments at "
            "these shard counts (e.g. --shards 1 3)"
        ),
    )
    parser.add_argument("--patients", type=int, default=None)
    parser.add_argument("--samples", type=int, default=None)
    parser.add_argument("--policy-mode", choices=POLICY_MODES, default=None)
    parser.add_argument("--policy-seed", type=int, default=None)
    return parser


def _spec_from_args(args: argparse.Namespace) -> ScenarioSpec:
    overrides = {
        key: value
        for key, value in (
            ("patients", args.patients),
            ("samples", args.samples),
            ("policy_mode", args.policy_mode),
            ("policy_seed", args.policy_seed),
        )
        if value is not None
    }
    return ScenarioSpec(**overrides)


def _coerce_seed(raw: str) -> "int | str":
    try:
        return int(raw)
    except ValueError:
        return raw


def _replay_command(path: Path) -> str:
    return f"PYTHONPATH=src python -m repro.fuzz --replay {path}"


def _run_replay(args: argparse.Namespace) -> int:
    report, recorded = replay(args.replay, use_server=not args.no_server)
    print(f"replaying {args.replay}")
    if recorded:
        print("recorded failures:")
        for failure in recorded:
            print(f"  - {failure}")
    if report.ok:
        print("replay PASSED: the disagreement no longer reproduces")
        return 0
    print("replay FAILED (disagreement still present):")
    print(report.describe())
    return 1


def _run_campaign(args: argparse.Namespace) -> int:
    seed = _coerce_seed(args.seed)
    spec = _spec_from_args(args)
    world = build_fuzz_scenario(spec)
    generator = FuzzQueryGenerator.for_world(world, seed=seed)
    deadline = (
        time.monotonic() + args.time_budget if args.time_budget is not None else None
    )
    out_dir = Path(args.out)

    executed = 0
    failures = 0
    started = time.monotonic()
    with DifferentialRunner(
        world=world,
        use_server=not args.no_server,
        sharded_counts=tuple(args.shards),
    ) as runner:
        for index in range(args.start, args.start + args.cases):
            if deadline is not None and time.monotonic() >= deadline:
                print(f"time budget reached after {executed} cases")
                break
            case = generator.case(index)
            report = runner.run_case(case)
            executed += 1
            if report.ok:
                continue
            failures += 1
            print(f"FAILURE at case {case.replay_token} [{case.kind}]")
            for line in report.failures:
                print(f"  - {line}")
            minimized = shrink(runner, case)
            final = runner.run_case(minimized)
            path = out_dir / f"repro-{_slug(seed)}-{case.index}.json"
            save_repro(path, spec, minimized, final.failures or report.failures)
            print(f"  minimized sql: {minimized.sql}")
            if minimized.params:
                print(f"  params: {minimized.params}")
            print(f"  repro file: {path}")
            print(f"  replay with: {_replay_command(path)}")
            if failures >= args.max_failures:
                print(f"stopping after {failures} failures")
                break
    elapsed = time.monotonic() - started
    print(
        f"{executed} cases, {failures} failing, seed={seed}, "
        f"{elapsed:.1f}s ({executed / elapsed:.1f} cases/s)"
        if elapsed > 0
        else f"{executed} cases, {failures} failing, seed={seed}"
    )
    return 1 if failures else 0


def _slug(seed: "int | str") -> str:
    return "".join(c if c.isalnum() else "_" for c in str(seed))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    run = _run_replay if args.replay else _run_campaign
    if args.inject_bug:
        with inject_bug(args.inject_bug):
            return run(args)
    return run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
