"""Differential enforcement oracle and query fuzzer.

The package falsification-tests the whole enforcement stack: a seeded
generator (:mod:`.generator`) produces SQL + submission contexts beyond the
paper's fixed workloads, an independent oracle (:mod:`.oracle`) computes the
result enforcement *should* produce by policy pre-filtering instead of
query rewriting, and a differential runner (:mod:`.runner`) executes each
case through every production path — ad-hoc, prepared (cold and cached) and
the wire protocol — checking path agreement, oracle agreement, audit and
check-counter consistency, and metamorphic invariants.  Failures are
minimized (:mod:`.shrinker`) into replayable repro files
(:mod:`.repro_file`); ``python -m repro.fuzz`` drives campaigns and
replays.
"""

from .generator import FUZZ_KINDS, FuzzCase, FuzzQueryGenerator
from .inject import BUGS, inject_bug
from .oracle import EnforcementOracle
from .repro_file import FORMAT, load_repro, replay, save_repro
from .runner import CaseReport, DifferentialRunner, PathResult
from .scenario import (
    POLICY_MODES,
    FuzzScenario,
    ScenarioSpec,
    build_fuzz_scenario,
)
from .schedules import ScheduleReport, ScheduleRunner
from .shrinker import shrink

__all__ = [
    "FUZZ_KINDS",
    "FuzzCase",
    "FuzzQueryGenerator",
    "BUGS",
    "inject_bug",
    "EnforcementOracle",
    "FORMAT",
    "load_repro",
    "replay",
    "save_repro",
    "CaseReport",
    "DifferentialRunner",
    "PathResult",
    "POLICY_MODES",
    "FuzzScenario",
    "ScenarioSpec",
    "build_fuzz_scenario",
    "ScheduleReport",
    "ScheduleRunner",
    "shrink",
]
