"""Reproducible fuzzing scenarios: data, policies, users and grants.

A :class:`ScenarioSpec` is the complete, serializable recipe for the world a
fuzz case runs in: dataset sizes and seed, the policy-randomization mode and
seed, and how many users (with which purpose grants) exist.  Building the
same spec twice yields byte-identical databases, which is what makes a repro
file self-contained — replaying ⟨spec, case⟩ re-creates exactly the state
the failure was observed under.

Policy modes:

``scattered``
    Section 6.1's pass-all/pass-none policies at the spec's selectivity
    (per-tuple for users/nutritional_profiles, per-watch for sensed_data).
``structured``
    Fully randomized ⟨Cl, Pu, At⟩ rules per entity
    (:func:`repro.workload.policies.apply_random_policies`).
``mixed``
    Scattered policies on ``users``/``sensed_data``, structured on
    ``nutritional_profiles`` — both families in one world.
``open``
    No policies stored at all: every mask is NULL, so every enforced
    query over a signed table returns nothing (the closed-world default).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..workload import (
    PatientsScenario,
    ScatteredPolicySpec,
    apply_random_policies,
    apply_scattered_policies,
    build_patients_scenario,
)

#: The policy-randomization modes a spec may name.
POLICY_MODES = ("scattered", "structured", "mixed", "open")

#: Indexable workload columns: ``(table, column, kind)``.  Hash for the
#: id-equality columns the generator probes, B-tree for the range-heavy
#: numeric ones.
INDEX_CANDIDATES = (
    ("users", "watch_id", "hash"),
    ("users", "nutritional_profile_id", "btree"),
    ("sensed_data", "watch_id", "hash"),
    ("sensed_data", "timestamp", "btree"),
    ("sensed_data", "beats", "btree"),
    ("nutritional_profiles", "profile_id", "btree"),
)


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to rebuild a fuzzing world deterministically."""

    patients: int = 25
    samples: int = 8
    data_seed: int = 20150311
    policy_mode: str = "mixed"
    policy_seed: int = 411595
    selectivity: float = 0.4
    user_count: int = 4
    #: Secondary indexes to create: ``-1`` draws 0–3 from the policy seed
    #: (the first one policy-partitioned), ``0`` disables, ``1``–``3`` pin
    #: the count.  Index presence never changes enforced results — that is
    #: exactly the invariant the differential harness checks — so older
    #: repro files without this field replay under the default.
    index_count: int = -1

    def __post_init__(self) -> None:
        if self.policy_mode not in POLICY_MODES:
            raise ValueError(
                f"policy_mode must be one of {POLICY_MODES}, got {self.policy_mode!r}"
            )
        if self.patients < 1 or self.samples < 1 or self.user_count < 1:
            raise ValueError("patients, samples and user_count must be >= 1")
        if not -1 <= self.index_count <= 3:
            raise ValueError("index_count must be between -1 and 3")

    def to_dict(self) -> dict:
        """JSON-ready form (the ``spec`` object of a repro file)."""
        return {
            "patients": self.patients,
            "samples": self.samples,
            "data_seed": self.data_seed,
            "policy_mode": self.policy_mode,
            "policy_seed": self.policy_seed,
            "selectivity": self.selectivity,
            "user_count": self.user_count,
            "index_count": self.index_count,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown ScenarioSpec fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass
class FuzzScenario:
    """A built world: the patients scenario plus the fuzzing user roster."""

    spec: ScenarioSpec
    scenario: PatientsScenario
    grants: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Names of the secondary indexes created in this world, in creation
    #: order (the first, when any exist, is policy-partitioned).
    indexes: tuple[str, ...] = ()

    @property
    def admin(self):
        return self.scenario.admin

    @property
    def monitor(self):
        return self.scenario.monitor

    @property
    def database(self):
        return self.scenario.database

    @property
    def users(self) -> tuple[str, ...]:
        """User ids in roster order; ``u0`` always holds every purpose."""
        return tuple(self.grants)

    @property
    def purposes(self) -> tuple[str, ...]:
        return self.admin.purposes.ids()

    def is_authorized(self, user: str | None, purpose: str) -> bool:
        """The oracle-side Pa check (``None`` means no user restriction)."""
        if user is None:
            return True
        return purpose in self.grants.get(user, ())


def _apply_policies(instance: PatientsScenario, spec: ScenarioSpec) -> None:
    if spec.policy_mode == "open":
        return
    rng = random.Random(spec.policy_seed)
    scattered = ScatteredPolicySpec(spec.selectivity)
    per_table = {
        "users": None,
        "nutritional_profiles": None,
        "sensed_data": "watch_id",
    }
    for table, entity_column in per_table.items():
        if spec.policy_mode == "scattered":
            structured = False
        elif spec.policy_mode == "structured":
            structured = True
        else:  # mixed
            structured = table == "nutritional_profiles"
        if structured:
            apply_random_policies(
                instance.admin, table, rng, entity_column=entity_column
            )
        else:
            apply_scattered_policies(
                instance.admin, table, scattered, rng, entity_column=entity_column
            )


def _grant_users(instance: PatientsScenario, spec: ScenarioSpec) -> dict:
    """Create the user roster: u0 holds all purposes, the rest random subsets.

    Every user holds at least one grant (an ungranted user is unknown to the
    framework and could not even open a session), but most hold only some —
    which is what makes generated ⟨user, purpose⟩ pairs exercise both the
    allowed and the denied authorization outcome.
    """
    rng = random.Random(f"{spec.policy_seed}:users")
    purposes = instance.admin.purposes.ids()
    grants: dict[str, tuple[str, ...]] = {}
    for index in range(spec.user_count):
        user = f"u{index}"
        if index == 0:
            granted = purposes
        else:
            count = rng.randint(1, max(1, len(purposes) - 1))
            granted = tuple(sorted(rng.sample(list(purposes), k=count)))
        for purpose in granted:
            instance.admin.grant_purpose(user, purpose)
        grants[user] = granted
    return grants


def _create_indexes(instance: PatientsScenario, spec: ScenarioSpec) -> tuple[str, ...]:
    """Create the spec's secondary indexes through the DDL surface.

    Deterministic per policy seed.  When any index is created, the first
    is policy-partitioned so every indexed world exercises partition
    pruning, and a final ``ANALYZE`` gives the cost model fresh statistics.
    """
    rng = random.Random(f"{spec.policy_seed}:indexes")
    count = spec.index_count
    if count < 0:
        count = rng.randint(0, 3)
    if count == 0:
        return ()
    database = instance.database
    created: list[str] = []
    table, column, _ = rng.choice(INDEX_CANDIDATES)
    name = f"idx_part_{table}"
    database.execute(
        f"create index {name} on {table} ({column}) "
        f"partition by {database.policy_column}"
    )
    created.append(name)
    candidates = list(INDEX_CANDIDATES)
    rng.shuffle(candidates)
    for table, column, kind in candidates[: count - 1]:
        name = f"idx_{table}_{column}"
        using = f" using {kind}" if kind != "btree" else ""
        database.execute(f"create index {name} on {table} ({column}){using}")
        created.append(name)
    database.execute("analyze")
    return tuple(created)


def build_fuzz_scenario(spec: ScenarioSpec | None = None) -> FuzzScenario:
    """Build the world a spec describes (deterministic per spec)."""
    spec = spec or ScenarioSpec()
    instance = build_patients_scenario(
        patients=spec.patients,
        samples_per_patient=spec.samples,
        seed=spec.data_seed,
    )
    _apply_policies(instance, spec)
    grants = _grant_users(instance, spec)
    indexes = _create_indexes(instance, spec)
    return FuzzScenario(
        spec=spec, scenario=instance, grants=grants, indexes=indexes
    )
