"""Unbounded seeded SQL fuzzing on top of :mod:`repro.workload.randgen`.

:class:`FuzzQueryGenerator` extends the Figure 5 query classes with the
shapes the paper's r1–r20 never exercise — nested subqueries (IN / EXISTS /
scalar / derived tables), set-operation chains, parameter placeholders,
``SELECT *`` — and pairs every query with a randomized ⟨purpose, user⟩
submission context, so generated cases cover the denied as well as the
allowed authorization outcome.

Reproducibility contract: case *i* of seed *s* draws all of its randomness
from :func:`repro.workload.randgen.case_rng`, an RNG derived from the pair
``(s, i)`` alone.  No global :mod:`random` state is read and no state is
carried between cases, so ``FuzzQueryGenerator(seed).case(i)`` rebuilds any
case verbatim without generating its predecessors — the property repro
files and the ``--replay`` CLI rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..workload.randgen import QUERY_CLASSES, RandomQueryGenerator, case_rng
from .scenario import ScenarioSpec

#: Shapes beyond the Figure 5 classes (method names on the generator).
EXTRA_KINDS: tuple[str, ...] = (
    "in_subquery",
    "exists_correlated",
    "scalar_subquery",
    "derived_table",
    "set_operation",
    "star_select",
    "parameterized",
    "nested_subquery",
)

#: Every shape the fuzzer can draw.
FUZZ_KINDS: tuple[str, ...] = QUERY_CLASSES + EXTRA_KINDS

#: Kinds for which the subset metamorphic invariant (enforced rows form a
#: sub-multiset of the unenforced rows) holds.  Only subquery-free,
#: aggregate-free, set-operation-free selects qualify: a subquery evaluated
#: under enforcement can change value and flip a predicate (``NOT IN`` over
#: a *smaller* enforced inner result admits *more* outer rows), so
#: enforcement is only guaranteed row-monotone when the outer block's
#: predicate does not depend on another enforced block.
ROW_SUBSET_KINDS = frozenset({"single", "join", "star_select", "parameterized"})

#: Default purposes (matches ``repro.core.purposes.default_purpose_set``).
_DEFAULT_PURPOSES = tuple(f"p{i}" for i in range(1, 9))


@dataclass(frozen=True)
class FuzzCase:
    """One generated differential-testing case, replayable from its fields.

    ``seed`` and ``index`` embed the case's provenance: the pair is the
    complete derivation key of its randomness, printed in every failure
    report so the exact case can be re-run in isolation.
    """

    seed: int | str
    index: int
    kind: str
    sql: str
    purpose: str
    user: str | None = None
    params: dict[str, object] = field(default_factory=dict)

    @property
    def subset_invariant(self) -> bool:
        """Whether the enforced-⊆-unenforced row invariant applies."""
        return self.kind in ROW_SUBSET_KINDS

    @property
    def replay_token(self) -> str:
        """The ``seed:index`` pair identifying this case."""
        return f"{self.seed}:{self.index}"

    def with_sql(self, sql: str, params: dict | None = None) -> "FuzzCase":
        """A shrunk variant keeping the submission context."""
        return replace(
            self, sql=sql, params=self.params if params is None else params
        )

    def to_dict(self) -> dict:
        """JSON-ready form (the ``case`` object of a repro file)."""
        return {
            "seed": self.seed,
            "index": self.index,
            "kind": self.kind,
            "sql": self.sql,
            "purpose": self.purpose,
            "user": self.user,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzCase":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=payload["seed"],
            index=int(payload["index"]),
            kind=str(payload["kind"]),
            sql=str(payload["sql"]),
            purpose=str(payload["purpose"]),
            user=payload.get("user"),
            params=dict(payload.get("params") or {}),
        )


class FuzzQueryGenerator:
    """Seeded, stateless-per-case generator of :class:`FuzzCase` streams."""

    def __init__(
        self,
        seed: int | str = 2015,
        spec: ScenarioSpec | None = None,
        purposes: tuple[str, ...] = _DEFAULT_PURPOSES,
        users: tuple[str, ...] | None = None,
    ):
        self.seed = seed
        self.spec = spec or ScenarioSpec()
        self.purposes = purposes
        self.users = users or tuple(f"u{i}" for i in range(self.spec.user_count))

    @classmethod
    def for_world(cls, world, seed: int | str = 2015) -> "FuzzQueryGenerator":
        """A generator matched to a built :class:`~.scenario.FuzzScenario`."""
        return cls(
            seed=seed,
            spec=world.spec,
            purposes=world.purposes,
            users=world.users,
        )

    # -- case derivation -------------------------------------------------------

    def case(self, index: int) -> FuzzCase:
        """Case ``index`` of this seed (independent of all other cases)."""
        rng = case_rng(self.seed, index)
        base = RandomQueryGenerator(
            0, patients=self.spec.patients, samples=self.spec.samples
        )
        base.rng = rng  # all base-class randomness comes from the case RNG
        kind = rng.choice(FUZZ_KINDS)
        params: dict[str, object] = {}
        if kind in QUERY_CLASSES:
            sql = base.query_of_class(kind)
        else:
            sql, params = getattr(self, f"_{kind}")(rng, base)
        purpose = rng.choice(list(self.purposes))
        user = None if rng.random() < 0.25 else rng.choice(list(self.users))
        return FuzzCase(
            seed=self.seed,
            index=index,
            kind=kind,
            sql=sql,
            purpose=purpose,
            user=user,
            params=params,
        )

    def cases(self, count: int, start: int = 0):
        """Yield cases ``start .. start+count-1``."""
        for index in range(start, start + count):
            yield self.case(index)

    # -- shape builders --------------------------------------------------------
    # Each takes (rng, base) and returns (sql, params).  INNER joins only:
    # WHERE-conjunct enforcement is equivalent to pre-filtering the sources
    # only for inner joins, and the oracle depends on that equivalence.

    def _in_subquery(self, rng: random.Random, base) -> tuple[str, dict]:
        outer, inner, outer_cols, link_outer, link_inner = rng.choice(
            (
                ("users", "sensed_data", "user_id, watch_id", "watch_id", "watch_id"),
                ("sensed_data", "users", "watch_id, beats", "watch_id", "watch_id"),
                (
                    "nutritional_profiles",
                    "users",
                    "profile_id, diet_type",
                    "profile_id",
                    "nutritional_profile_id",
                ),
                (
                    "users",
                    "nutritional_profiles",
                    "user_id, nutritional_profile_id",
                    "nutritional_profile_id",
                    "profile_id",
                ),
            )
        )
        negated = "not " if rng.random() < 0.3 else ""
        sub = f"select {link_inner} from {inner}"
        if rng.random() < 0.7:
            sub += f" where {base._predicate(rng.choice(base._table_columns(inner)), False)}"
        sql = f"select {outer_cols} from {outer} where {link_outer} {negated}in ({sub})"
        return sql, {}

    def _nested_subquery(self, rng: random.Random, base) -> tuple[str, dict]:
        inner_pred = base._predicate(
            rng.choice(base._table_columns("users")), False
        )
        middle_pred = base._predicate(
            rng.choice(base._table_columns("sensed_data")), False
        )
        sql = (
            "select user_id, watch_id from users where watch_id in "
            f"(select watch_id from sensed_data where {middle_pred} "
            "and watch_id in "
            f"(select watch_id from users where {inner_pred}))"
        )
        return sql, {}

    def _exists_correlated(self, rng: random.Random, base) -> tuple[str, dict]:
        negated = "not " if rng.random() < 0.3 else ""
        inner = "select 1 from sensed_data where sensed_data.watch_id = u.watch_id"
        if rng.random() < 0.7:
            inner += (
                f" and {base._predicate(rng.choice(base._table_columns('sensed_data')), True)}"
            )
        sql = f"select u.user_id, u.watch_id from users u where {negated}exists ({inner})"
        return sql, {}

    def _scalar_subquery(self, rng: random.Random, base) -> tuple[str, dict]:
        operator = rng.choice((">", "<", ">=", "<="))
        if rng.random() < 0.5:
            aggregate = rng.choice(("avg", "min", "max"))
            sub = f"select {aggregate}(beats) from sensed_data"
            if rng.random() < 0.5:
                sub += f" where {base._predicate(rng.choice(base._table_columns('sensed_data')), False)}"
            sql = (
                "select watch_id, timestamp, beats from sensed_data "
                f"where beats {operator} ({sub})"
            )
        else:
            aggregate = rng.choice(("avg", "min", "max"))
            sub = f"select {aggregate}(profile_id) from nutritional_profiles"
            sql = (
                "select user_id, nutritional_profile_id from users "
                f"where nutritional_profile_id {operator} ({sub})"
            )
        return sql, {}

    def _derived_table(self, rng: random.Random, base) -> tuple[str, dict]:
        aggregate = rng.choice(("avg", "min", "max", "count"))
        threshold = rng.randint(50, 140) if aggregate != "count" else rng.randint(1, 5)
        if rng.random() < 0.5:
            sql = (
                f"select d.watch_id, d.m from "
                f"(select watch_id, {aggregate}(beats) as m from sensed_data "
                f"group by watch_id) d where d.m > {threshold}"
            )
        else:
            sql = (
                "select users.user_id, d.m from users join "
                f"(select watch_id as w, {aggregate}(beats) as m "
                "from sensed_data group by watch_id) d "
                "on users.watch_id = d.w"
            )
        return sql, {}

    def _set_operation(self, rng: random.Random, base) -> tuple[str, dict]:
        branches = []
        pool = (
            ("users", "watch_id"),
            ("sensed_data", "watch_id"),
            ("users", "user_id"),
            ("nutritional_profiles", "diet_type"),
        )
        for _ in range(rng.randint(2, 3)):
            table, column = rng.choice(pool)
            branch = f"select {column} from {table}"
            if rng.random() < 0.6:
                branch += f" where {base._predicate(rng.choice(base._table_columns(table)), False)}"
            branches.append(branch)
        operator = rng.choice(("union", "union all", "intersect", "except"))
        return f" {operator} ".join(branches), {}

    def _star_select(self, rng: random.Random, base) -> tuple[str, dict]:
        table = rng.choice(("users", "sensed_data", "nutritional_profiles"))
        sql = f"select * from {table}"
        if rng.random() < 0.7:
            sql += f" where {base._predicate(rng.choice(base._table_columns(table)), False)}"
        return sql, {}

    def _parameterized(self, rng: random.Random, base) -> tuple[str, dict]:
        params: dict[str, object] = {}
        if rng.random() < 0.5:
            params["p0"] = rng.randint(50, 140)
            sql = "select watch_id, beats, temperature from sensed_data where beats > :p0"
            if rng.random() < 0.5:
                params["p1"] = round(rng.uniform(35.0, 41.0), 1)
                sql += " and temperature < :p1"
        else:
            params["p0"] = rng.randint(1, max(self.spec.samples, 2))
            sql = (
                "select users.user_id, sensed_data.beats from users "
                "join sensed_data on users.watch_id = sensed_data.watch_id "
                "where sensed_data.timestamp >= :p0"
            )
        return sql, params
