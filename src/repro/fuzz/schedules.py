"""Interleaved reader / policy-writer schedules for snapshot enforcement.

:class:`ScheduleRunner` extends the differential harness to the MVCC
claim DESIGN.md §15 makes: *a snapshot-pinned reader is enforced under the
policy state its snapshot captured, no matter what commits around it*.

For each :class:`~.generator.FuzzCase` the runner:

1. computes the **serial frozen-policy reference** — the oracle's expected
   answer under the world state at pin time;
2. opens a transaction, pinning a :class:`~repro.engine.mvcc.Snapshot`
   (commit ts × policy epoch);
3. interleaves a seeded schedule of committed writer steps — scattered
   policy-mask churn (which bumps the policy epoch), row duplications,
   row deletions, index DDL, and taxonomy edits (a scratch purpose
   defined/removed with mask migration) — re-running the pinned reader
   after **every** step;
4. requires every pinned read to reproduce the reference exactly: same
   rows, same columns, same denial outcome, and (with the bitmap cache
   cleared before each read) the same ``complieswith`` count;
5. after rolling the reader back, requires a fresh latest-snapshot read to
   agree with the oracle recomputed under the churned state — the schedule
   must not leave enforcement broken for later readers.

A case whose reference errors must keep erroring at every pinned read
(consistent-error rule, as in :class:`~.runner.DifferentialRunner`).

Schedules are deterministic per ``(case.replay_token, schedule seed)``:
every step draws from one :class:`random.Random`, so a failing schedule
replays from its token alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.policy_manager import PolicyManager
from ..core.purposes import Purpose
from ..errors import ReproError, UnauthorizedPurposeError
from ..workload.policies import scattered_policy
from .generator import FuzzCase
from .runner import DifferentialRunner, normalize_rows

#: Writer-step kinds a schedule may draw (weights in ``_churn_step``).
SCHEDULE_OPS = (
    "mask-churn",
    "epoch-bump",
    "dml-duplicate",
    "dml-delete",
    "ddl-index",
    "taxonomy-edit",
)

#: The purpose id the taxonomy-edit op toggles (never granted to a user or
#: referenced by a rule — its existence only shifts every mask layout).
SCRATCH_PURPOSE = "zz_sched_scratch"


@dataclass
class PinnedRead:
    """One execution of the pinned reader: outcome plus comparison data."""

    label: str
    outcome: str  # "rows" | "denied" | "error"
    columns: list[str] | None = None
    rows: list[tuple] | None = None
    checks: int | None = None
    error: str | None = None


@dataclass
class ScheduleReport:
    """Everything one schedule concluded, in replayable form."""

    case: FuzzCase
    ok: bool
    failures: list[str] = field(default_factory=list)
    steps: list[str] = field(default_factory=list)
    reads: list[PinnedRead] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"schedule {self.case.replay_token} [{self.case.kind}] "
            f"purpose={self.case.purpose} user={self.case.user}",
            f"  sql: {self.case.sql}",
            f"  steps: {', '.join(self.steps) or '(none)'}",
        ]
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)


class ScheduleRunner(DifferentialRunner):
    """A differential runner that also drives interleaved schedules.

    Inherits the world/oracle plumbing (and, when enabled, every ordinary
    execution path) from :class:`~.runner.DifferentialRunner`; adds
    :meth:`run_schedule`.  Built with ``use_server=False`` by default —
    schedules pin transactions in-process, not over the wire.
    """

    def __init__(self, world=None, spec=None, use_server: bool = False):
        super().__init__(world=world, spec=spec, use_server=use_server)
        self._policies: PolicyManager | None = None

    def _policy_manager(self) -> PolicyManager:
        """The (lazily built) mask-migration manager for taxonomy edits."""
        if self._policies is None:
            self._policies = PolicyManager(self.world.admin)
        return self._policies

    # -- the pinned reader -------------------------------------------------

    def _pinned_read(self, txn, case: FuzzCase, label: str) -> PinnedRead:
        from ..engine import txn_scope

        monitor = self.world.monitor
        monitor.clear_policy_bitmaps()
        try:
            with txn_scope(txn):
                report = monitor.execute_with_report(
                    case.sql,
                    case.purpose,
                    user=case.user,
                    params=case.params or None,
                )
        except UnauthorizedPurposeError:
            return PinnedRead(label, "denied")
        except ReproError as exc:
            return PinnedRead(
                label, "error", error=f"{type(exc).__name__}: {exc}"
            )
        return PinnedRead(
            label,
            "rows",
            columns=[c.lower() for c in report.result.columns],
            rows=normalize_rows(report.result.rows),
            checks=report.compliance_checks,
        )

    # -- writer steps ------------------------------------------------------

    def _churn_step(self, rng: random.Random, index: int) -> str:
        """Apply one committed writer step; returns its description."""
        admin = self.world.admin
        table = rng.choice(admin.target_tables())
        op = rng.choice(SCHEDULE_OPS)
        if op == "mask-churn":
            # Rewrite the whole table's policy masks with a fresh scattered
            # policy — ordinary (versioned) row data plus an epoch bump.
            policy = scattered_policy(
                table,
                compliant=rng.random() < 0.5,
                rule_count=rng.randint(1, 3),
                pass_all_position=rng.randint(0, 2),
            )
            admin.apply_policy(policy)
            return f"{index}:mask-churn[{table}]"
        if op == "epoch-bump":
            admin.bump_policy_epoch()
            return f"{index}:epoch-bump"
        if op == "ddl-index":
            # Toggle a secondary index through SQL DDL: pure access-path
            # churn.  Index definitions resolve as of the pinned snapshot's
            # catalog version, so neither the create nor the drop may alter
            # a pinned read — rows, columns or ``complieswith`` count.
            database = self.world.database
            name = f"idx_sched_{table}"
            if database.indexes.find(name) is None:
                column = database.table(table).schema.columns[0].name
                database.execute(f"create index {name} on {table} ({column})")
                return f"{index}:ddl-index[create {name}]"
            database.execute(f"drop index {name}")
            return f"{index}:ddl-index[drop {name}]"
        if op == "taxonomy-edit":
            # Toggle one scratch purpose under an open snapshot, driving the
            # Policy Management module end-to-end: snapshot the layouts,
            # edit the taxonomy (a versioned catalog commit), then migrate
            # stored masks so fresh reads stay oracle-consistent.  Pinned
            # readers keep decoding under the taxonomy their snapshot
            # captured.
            manager = self._policy_manager()
            manager.snapshot_layouts()
            if SCRATCH_PURPOSE in admin.purposes:
                admin.remove_purpose(SCRATCH_PURPOSE)
                action = "remove"
            else:
                admin.define_purpose(
                    Purpose(SCRATCH_PURPOSE, "schedule scratch purpose")
                )
                action = "define"
            manager.migrate()
            return f"{index}:taxonomy-edit[{action} {SCRATCH_PURPOSE}]"
        storage = self.world.database.table(table)
        rows = storage.rows
        if not rows:
            admin.bump_policy_epoch()
            return f"{index}:epoch-bump[{table} empty]"
        if op == "dml-duplicate":
            # Duplicate one committed row (schema-safe DML on any table).
            storage.append_rows([rng.choice(rows)])
            return f"{index}:dml-duplicate[{table}]"
        victim = rng.randrange(len(rows))
        storage.rows = [row for i, row in enumerate(rows) if i != victim]
        return f"{index}:dml-delete[{table}]"

    # -- one schedule ------------------------------------------------------

    def run_schedule(
        self,
        case: FuzzCase,
        churn_steps: int = 4,
        schedule_seed: "int | str | None" = None,
    ) -> ScheduleReport:
        """Pin a reader, interleave writer steps, check every read."""
        failures: list[str] = []
        steps: list[str] = []
        reads: list[PinnedRead] = []
        rng = random.Random(
            f"{case.replay_token}:{schedule_seed if schedule_seed is not None else 'schedule'}"
        )
        transactions = self.world.database.transactions

        txn = transactions.begin()
        try:
            reference = self._pinned_read(txn, case, "pre-churn")
            reads.append(reference)
            for index in range(churn_steps):
                steps.append(self._churn_step(rng, index))
                read = self._pinned_read(txn, case, f"after {steps[-1]}")
                reads.append(read)
                self._compare(reference, read, failures)
        finally:
            transactions.rollback(txn)

        self._check_latest(case, failures)
        return ScheduleReport(
            case=case, ok=not failures, failures=failures, steps=steps, reads=reads
        )

    def _compare(
        self, reference: PinnedRead, read: PinnedRead, failures: list[str]
    ) -> None:
        if read.outcome != reference.outcome:
            failures.append(
                f"{read.label}: outcome {read.outcome} != pinned reference "
                f"{reference.outcome}"
                + (f" ({read.error})" if read.error else "")
            )
            return
        if reference.outcome != "rows":
            return
        if read.columns != reference.columns:
            failures.append(
                f"{read.label}: columns {read.columns} != reference "
                f"{reference.columns}"
            )
        if read.rows != reference.rows:
            failures.append(
                f"{read.label}: {len(read.rows)} rows != reference's "
                f"{len(reference.rows)} — the pinned snapshot leaked "
                f"concurrent policy/data churn"
            )
        if read.checks != reference.checks:
            failures.append(
                f"{read.label}: {read.checks} compliance checks != "
                f"reference's {reference.checks}"
            )

    def _check_latest(self, case: FuzzCase, failures: list[str]) -> None:
        """Post-churn: a fresh read must match the recomputed oracle."""
        monitor = self.world.monitor
        monitor.clear_policy_bitmaps()
        denial_expected = case.user is not None and not self.world.is_authorized(
            case.user, case.purpose
        )
        try:
            expected = self.oracle.expected(
                case.sql, case.purpose, case.params or None
            )
            expected_rows = normalize_rows(expected.rows)
        except ReproError:
            expected_rows = None  # consistent-error: latest read may error too
        try:
            report = monitor.execute_with_report(
                case.sql, case.purpose, user=case.user, params=case.params or None
            )
        except UnauthorizedPurposeError:
            if not denial_expected:
                failures.append("latest: unexpected denial after churn")
            return
        except ReproError as exc:
            if expected_rows is not None:
                failures.append(
                    f"latest: post-churn read failed but the oracle did not: "
                    f"{type(exc).__name__}: {exc}"
                )
            return
        if denial_expected:
            failures.append("latest: expected denial after churn, got rows")
            return
        if expected_rows is None:
            failures.append("latest: oracle errored post-churn but the read did not")
            return
        if normalize_rows(report.result.rows) != expected_rows:
            failures.append(
                "latest: post-churn read disagrees with the oracle recomputed "
                "under the churned policy state"
            )

    # -- batches -----------------------------------------------------------

    def run_schedules(self, cases, churn_steps: int = 4):
        """Run an iterable of cases as schedules, yielding each report."""
        for case in cases:
            yield self.run_schedule(case, churn_steps=churn_steps)
