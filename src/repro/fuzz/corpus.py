"""Builds the seed regression corpus under ``tests/corpus/``.

The corpus is a set of repro-format files covering the paper's fixed
workloads (q1–q8 and the r1–r20 batch, each oracle-checked at corpus-build
time) plus hand-picked edge cases for every generator shape family — a
denial, a parameterized query, a set-operation chain, a correlated EXISTS,
a derived table and a ``SELECT *``.  ``tests/fuzz/test_corpus_replay.py``
replays every file through all production paths on each test run, so any
regression the fuzzer once caught (or could catch) stays caught.

Regenerate with ``PYTHONPATH=src python -m repro.fuzz.corpus [DIR]`` —
the build refuses to write a case that does not pass the differential
runner, so a broken pipeline cannot silently poison the corpus.
"""

from __future__ import annotations

import sys
from pathlib import Path

from ..workload import AD_HOC_QUERIES, random_queries
from .generator import EXTRA_KINDS, FuzzCase, FuzzQueryGenerator
from .repro_file import save_repro
from .runner import DifferentialRunner
from .scenario import ScenarioSpec, build_fuzz_scenario

#: How far into the seed-2015 stream to look for one case of each shape.
_SCAN_LIMIT = 500


def _fixed_workload_cases(world) -> list[FuzzCase]:
    """q1–q8 and r1–r20 as corpus cases, purposes cycled deterministically."""
    purposes = world.purposes
    cases = []
    batch = list(AD_HOC_QUERIES) + list(
        random_queries(
            seed=2015, patients=world.spec.patients, samples=world.spec.samples
        )
    )
    for offset, query in enumerate(batch):
        cases.append(
            FuzzCase(
                seed="corpus",
                index=offset,
                kind=query.name,
                sql=query.sql,
                purpose=purposes[offset % len(purposes)],
                user=world.users[0],  # u0 holds every purpose
            )
        )
    return cases


def _edge_cases(world, generator: FuzzQueryGenerator) -> list[FuzzCase]:
    """The first seed-2015 case of every extra shape, plus a denial."""
    wanted = set(EXTRA_KINDS)
    cases = []
    for index in range(_SCAN_LIMIT):
        if not wanted:
            break
        case = generator.case(index)
        if case.kind in wanted:
            wanted.discard(case.kind)
            cases.append(case)
    denied = _denied_pair(world)
    if denied is not None:
        user, purpose = denied
        cases.append(
            FuzzCase(
                seed="corpus",
                index=1000,
                kind="denial",
                sql="select user_id from users",
                purpose=purpose,
                user=user,
            )
        )
    return cases


def _denied_pair(world) -> tuple[str, str] | None:
    for user in world.users:
        for purpose in world.purposes:
            if not world.is_authorized(user, purpose):
                return user, purpose
    return None


def build_corpus(directory: "str | Path", use_server: bool = True) -> list[Path]:
    """Write the corpus into ``directory``; every case must pass first."""
    directory = Path(directory)
    spec = ScenarioSpec()
    world = build_fuzz_scenario(spec)
    generator = FuzzQueryGenerator.for_world(world, seed=2015)
    written: list[Path] = []
    with DifferentialRunner(world=world, use_server=use_server) as runner:
        for case in _fixed_workload_cases(world) + _edge_cases(world, generator):
            report = runner.run_case(case)
            if not report.ok:
                raise AssertionError(
                    "refusing to write a failing corpus case:\n"
                    + report.describe()
                )
            path = directory / f"{case.kind}-{case.seed}-{case.index}.json"
            save_repro(path, spec, case)
            written.append(path)
    return written


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    directory = Path(argv[0]) if argv else Path("tests/corpus")
    written = build_corpus(directory)
    print(f"wrote {len(written)} corpus files to {directory}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
