"""Deliberate enforcement bugs, for validating that the fuzzer catches them.

A differential oracle is only trustworthy if it *fails* when the system
under test is broken.  :func:`inject_bug` patches a known defect into the
production rewriter for the duration of a ``with`` block; running the fuzzer
under it must produce disagreements (and minimized repro files), otherwise
the oracle is vacuous.  Used by the acceptance test and by the CLI's
``--inject-bug`` flag.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager

from ..core import monitor as monitor_module
from ..core.admin import COMPLIES_WITH
from ..sql import ast

#: Injectable defects, by name.
BUGS = ("drop-conjunct",)


def _is_compliance_conjunct(expression: ast.Expression) -> bool:
    return (
        isinstance(expression, ast.FunctionCall)
        and expression.name.lower() == COMPLIES_WITH
    )


def _split_conjuncts(expression: ast.Expression) -> list[ast.Expression]:
    if isinstance(expression, ast.BinaryOp) and expression.op.lower() == "and":
        return _split_conjuncts(expression.left) + _split_conjuncts(
            expression.right
        )
    return [expression]


def _conjoin(parts: list[ast.Expression]) -> ast.Expression | None:
    if not parts:
        return None
    combined = parts[0]
    for part in parts[1:]:
        combined = ast.BinaryOp("AND", combined, part)
    return combined


def _drop_one_compliance_conjunct(select: ast.Select) -> ast.Select:
    """Remove the last ``complieswith`` conjunct of the outer WHERE clause.

    This models the classic rewriting bug of forgetting one base binding:
    the query then leaks rows of one table that its policies exclude.  If
    the outer block carries no compliance conjunct (e.g. the only signed
    binding sits in a subquery), the select is returned unchanged — some
    generated cases will not trip the bug, which is exactly the situation
    a fuzzer exists to cover by volume.
    """
    if select.where is None:
        return select
    conjuncts = _split_conjuncts(select.where)
    for index in range(len(conjuncts) - 1, -1, -1):
        if _is_compliance_conjunct(conjuncts[index]):
            kept = conjuncts[:index] + conjuncts[index + 1 :]
            return dataclasses.replace(select, where=_conjoin(kept))
    return select


@contextmanager
def inject_bug(name: str):
    """Patch defect ``name`` into the enforcement pipeline for a block.

    The patch targets the rewriter reference the monitor actually calls,
    so both the ad-hoc and the prepared/cached paths (and therefore the
    server) compile through the buggy rewrite.  The plan cache is *not*
    cleared here; the runner clears it per path, so buggy plans never
    outlive the block in practice, and tests that want a pristine cache
    afterwards should clear it explicitly.
    """
    if name not in BUGS:
        raise ValueError(f"unknown bug {name!r}; known: {BUGS}")
    real_rewrite = monitor_module.rewrite_query

    def buggy_rewrite(select, signature, layouts):
        return _drop_one_compliance_conjunct(
            real_rewrite(select, signature, layouts)
        )

    monitor_module.rewrite_query = buggy_rewrite
    try:
        yield
    finally:
        monitor_module.rewrite_query = real_rewrite
