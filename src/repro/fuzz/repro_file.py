"""Replayable repro files: a failing case plus the world that produced it.

A repro file is a small JSON document holding the :class:`ScenarioSpec`
(which rebuilds the database, policies and user grants deterministically),
the minimized :class:`FuzzCase`, and the failure messages observed when the
file was written.  ``python -m repro.fuzz --replay <file>`` — or
:func:`replay` programmatically — reconstructs the world and re-runs the
case through every path, reporting whether the disagreement still occurs.
The same format seeds the regression corpus under ``tests/corpus/``.
"""

from __future__ import annotations

import json
from pathlib import Path

from .generator import FuzzCase
from .runner import CaseReport, DifferentialRunner
from .scenario import ScenarioSpec

#: Format tag written into (and required from) every repro file.
FORMAT = "repro.fuzz/1"


def save_repro(
    path: "str | Path",
    spec: ScenarioSpec,
    case: FuzzCase,
    failures: list[str] | None = None,
) -> Path:
    """Write ⟨spec, case, failures⟩ as a repro file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": FORMAT,
        "spec": spec.to_dict(),
        "case": case.to_dict(),
        "failures": list(failures or []),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: "str | Path") -> tuple[ScenarioSpec, FuzzCase, list[str]]:
    """Parse a repro file back into its spec, case and recorded failures."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"{path}: not a {FORMAT} file (format={payload.get('format')!r})"
        )
    spec = ScenarioSpec.from_dict(payload["spec"])
    case = FuzzCase.from_dict(payload["case"])
    return spec, case, list(payload.get("failures", []))


def replay(
    path: "str | Path", use_server: bool = True
) -> tuple[CaseReport, list[str]]:
    """Rebuild the recorded world and re-run the recorded case.

    Returns the fresh :class:`CaseReport` and the failures recorded at
    save time (for comparison).  A report with ``ok=True`` means the
    disagreement no longer reproduces — i.e. the bug is fixed.
    """
    spec, case, recorded = load_repro(path)
    with DifferentialRunner(spec=spec, use_server=use_server) as runner:
        report = runner.run_case(case)
    return report, recorded
