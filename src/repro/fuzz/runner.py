"""The differential runner: every production path against the oracle.

For each :class:`~.generator.FuzzCase` the runner executes the same
⟨query, purpose, user, params⟩ submission through every path a client can
reach enforcement by:

``ad-hoc``
    :meth:`EnforcementMonitor.execute_with_report` on a cold plan cache.
``prepared-cold``
    :meth:`EnforcementMonitor.prepare` (compiles eagerly) followed by one
    execution of the handle.
``cached``
    A second ad-hoc execution, which must hit the plan cache.
``server-query`` / ``server-prepared``
    The same statement over the :mod:`repro.server` wire protocol, ad-hoc
    and via remote prepare/execute.
``sharded-N`` (opt-in via ``sharded_counts``)
    The same statement over the wire against an
    :class:`~repro.server.async_server.AsyncQueryServer` fronting an
    N-shard :class:`~repro.shard.coordinator.ShardCoordinator` whose
    replica worlds are rebuilt from this world's
    :class:`~.scenario.ScenarioSpec`.  Sharded deployments pin
    ``optimizer=off, executor=row, indexes=off`` — in that mode the
    per-row ``complieswith`` count is exactly conserved under row
    partitioning, so check counts must agree *across shard counts* (they
    are compared among the sharded paths, not against the default-mode
    paths, and cache-hit expectations do not apply to the separate
    replica worlds).

All row-returning paths must agree with the oracle on columns and row
multiset, report the same ``complieswith`` invocation count, and match the
expected cache-hit flag; denials must agree across paths (in-process
:class:`UnauthorizedPurposeError` ↔ wire ``unauthorized_purpose``) and with
the Pa grants the scenario recorded; every in-process execution must leave
exactly one audit record with matching outcome, row count and check count.

On top of path agreement the runner checks three metamorphic invariants:

* **subset** — for subquery-free plain selects, enforced rows form a
  sub-multiset of the unenforced rows;
* **broadening** — appending a pass-all rule to every stored policy makes
  the enforced result equal the unenforced result exactly (any query
  shape: every conjunct becomes true);
* **epoch invalidation** — the policy writes of the broadening check bump
  the policy epoch, so the immediately following executions must recompile
  (``cache_hit == False``) and, once policies are restored, reproduce the
  original result.

A case where the oracle and *every* path raise an enforcement-stack error
is treated as consistently-erroring and passes — this keeps the shrinker
sound (candidates that break the query's validity do not masquerade as
failures) without masking real disagreements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..core.admin import POLICY_COLUMN
from ..core.audit import AuditLog
from ..engine.types import BitString
from ..errors import RemoteError, ReproError, UnauthorizedPurposeError
from ..server import Client, QueryServer
from ..sql import parse_statement
from .generator import FuzzCase
from .oracle import EnforcementOracle
from .scenario import FuzzScenario, ScenarioSpec, build_fuzz_scenario

#: Paths that must report ``cache_hit=True`` (the plan was compiled by an
#: earlier path of the same case, under an unchanged policy epoch).
_WARM_PATHS = ("prepared-cold", "cached", "server-query", "server-prepared")


def normalize_value(value):
    """Make a cell comparable across in-process and wire representations.

    The wire protocol degrades non-JSON values (policy-mask
    :class:`BitString`\\ s from ``SELECT *``) to text, so both sides are
    normalized to that; floats survive JSON round-trips exactly, so they
    are kept as-is.
    """
    if isinstance(value, BitString):
        return value.bits()
    return value


def _row_key(row: tuple):
    return tuple((v is None, type(v).__name__, str(v)) for v in row)


def normalize_rows(rows) -> list[tuple]:
    """Type-stable sorted multiset of rows for order-insensitive equality."""
    return sorted(
        (tuple(normalize_value(v) for v in row) for row in rows), key=_row_key
    )


def is_sub_multiset(smaller: list[tuple], larger: list[tuple]) -> bool:
    """Whether ``smaller`` (normalized) is contained in ``larger`` with
    multiplicities."""
    from collections import Counter

    budget = Counter(larger)
    for row in smaller:
        if budget[row] <= 0:
            return False
        budget[row] -= 1
    return True


@dataclass
class PathResult:
    """One execution path's observation for a case."""

    path: str
    outcome: str  # "rows" | "denied" | "error"
    columns: list[str] | None = None
    rows: list[tuple] | None = None
    checks: int | None = None
    cache_hit: bool | None = None
    error: str | None = None


@dataclass
class CaseReport:
    """Everything the runner concluded about one case."""

    case: FuzzCase
    ok: bool
    failures: list[str] = field(default_factory=list)
    paths: list[PathResult] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"case {self.case.replay_token} [{self.case.kind}] "
            f"purpose={self.case.purpose} user={self.case.user}",
            f"  sql: {self.case.sql}",
        ]
        if self.case.params:
            lines.append(f"  params: {self.case.params}")
        for failure in self.failures:
            lines.append(f"  FAIL: {failure}")
        return "\n".join(lines)


class DifferentialRunner:
    """Owns a fuzzing world, its oracle, audit log and query server."""

    def __init__(
        self,
        world: FuzzScenario | None = None,
        spec: ScenarioSpec | None = None,
        use_server: bool = True,
        sharded_counts: "tuple[int, ...]" = (),
    ):
        self.world = world or build_fuzz_scenario(spec)
        self.oracle = EnforcementOracle(self.world.admin)
        self.audit = AuditLog(self.world.database)
        self.world.monitor.attach_audit(self.audit)
        self.use_server = use_server
        self.sharded_counts = tuple(sharded_counts)
        self._server: QueryServer | None = None
        self._sharded: dict = {}  # shard count -> running AsyncQueryServer

    # -- lifecycle -------------------------------------------------------------

    @property
    def server(self) -> QueryServer:
        if self._server is None:
            self._server = QueryServer(self.world.monitor).start()
        return self._server

    def sharded_server(self, count: int):
        """The running async sharded deployment for one shard count (lazy)."""
        if count not in self._sharded:
            from ..server.async_server import AsyncQueryServer
            from ..shard import ShardCoordinator, WorldRecipe

            coordinator = ShardCoordinator(
                WorldRecipe.for_fuzz(self.world.spec),
                count,
                backend="inline",
                # Pinned modes: per-row complieswith counts are conserved
                # exactly under partitioning only when every guard conjunct
                # is evaluated row by row with no bitmap/memo hoisting.
                optimizer="off",
                executor="row",
                indexes="off",
            )
            self._sharded[count] = AsyncQueryServer(coordinator).start()
        return self._sharded[count]

    def close(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None
        for server in self._sharded.values():
            server.stop()
            server.coordinator.close()
        self._sharded.clear()

    def __enter__(self) -> "DifferentialRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- one case --------------------------------------------------------------

    def run_case(self, case: FuzzCase) -> CaseReport:
        """Run one case through every path and the invariants."""
        failures: list[str] = []
        params = case.params or None
        denial_expected = case.user is not None and not self.world.is_authorized(
            case.user, case.purpose
        )

        try:
            expected = self.oracle.expected(case.sql, case.purpose, params)
            expected_rows = normalize_rows(expected.rows)
            expected_columns = [c.lower() for c in expected.columns]
            oracle_error: str | None = None
        except ReproError as exc:
            expected, expected_rows, expected_columns = None, None, None
            oracle_error = f"{type(exc).__name__}: {exc}"

        paths = [
            self._adhoc_path("ad-hoc", case, clear_cache=True),
            self._prepared_path(case),
            self._adhoc_path("cached", case, clear_cache=False),
        ]
        if self.use_server:
            paths.append(self._server_path(case, prepared=False))
            paths.append(self._server_path(case, prepared=True))

        self._check_paths(
            case,
            paths,
            failures,
            denial_expected,
            oracle_error,
            expected_rows,
            expected_columns,
        )

        if self.sharded_counts:
            sharded = [
                self._sharded_path(case, count) for count in self.sharded_counts
            ]
            self._check_sharded(
                case,
                sharded,
                failures,
                denial_expected,
                oracle_error,
                expected_rows,
                expected_columns,
            )
            paths.extend(sharded)

        if (
            not failures
            and not denial_expected
            and oracle_error is None
            and expected_rows is not None
        ):
            self._check_invariants(case, expected_rows, failures)

        return CaseReport(case=case, ok=not failures, failures=failures, paths=paths)

    # -- execution paths -------------------------------------------------------

    def _adhoc_path(self, name: str, case: FuzzCase, clear_cache: bool) -> PathResult:
        monitor = self.world.monitor
        if clear_cache:
            monitor.clear_plan_cache()
        # Paths are compared on their complieswith counts, so each must pay
        # the full guard-evaluation cost: drop bitmaps reused from earlier
        # paths of the same case.
        monitor.clear_policy_bitmaps()
        audit_before = len(self.audit)
        try:
            report = monitor.execute_with_report(
                case.sql, case.purpose, user=case.user, params=case.params or None
            )
        except UnauthorizedPurposeError:
            result = PathResult(name, "denied")
            self._check_audit(name, result, audit_before, None)
            return result
        except ReproError as exc:
            return PathResult(name, "error", error=f"{type(exc).__name__}: {exc}")
        result = PathResult(
            name,
            "rows",
            columns=[c.lower() for c in report.result.columns],
            rows=normalize_rows(report.result.rows),
            checks=report.compliance_checks,
            cache_hit=report.cache_hit,
        )
        self._check_audit(name, result, audit_before, report)
        return result

    def _prepared_path(self, case: FuzzCase) -> PathResult:
        name = "prepared-cold"
        monitor = self.world.monitor
        monitor.clear_plan_cache()
        monitor.clear_policy_bitmaps()
        audit_before = len(self.audit)
        try:
            prepared = monitor.prepare(case.sql, case.purpose)
            report = prepared.execute_with_report(
                params=case.params or None, user=case.user
            )
        except UnauthorizedPurposeError:
            result = PathResult(name, "denied")
            self._check_audit(name, result, audit_before, None)
            return result
        except ReproError as exc:
            return PathResult(name, "error", error=f"{type(exc).__name__}: {exc}")
        result = PathResult(
            name,
            "rows",
            columns=[c.lower() for c in report.result.columns],
            rows=normalize_rows(report.result.rows),
            checks=report.compliance_checks,
            cache_hit=report.cache_hit,
        )
        self._check_audit(name, result, audit_before, report)
        return result

    def _server_path(self, case: FuzzCase, prepared: bool) -> PathResult:
        name = "server-prepared" if prepared else "server-query"
        # The wire protocol has no anonymous sessions; user-less cases ride
        # on u0, which holds every purpose, so the row comparison is
        # unaffected and denials still come from the case's own user.
        user = case.user if case.user is not None else self.world.users[0]
        params = case.params or None
        self.world.monitor.clear_policy_bitmaps()
        try:
            with Client(*self.server.address) as client:
                client.hello(user, case.purpose)
                if prepared:
                    statement = client.prepare(case.sql)
                    answer = client.execute_prepared(statement, params)
                else:
                    answer = client.query(case.sql, params)
        except RemoteError as exc:
            # Only the Pa denial counts as "denied": the in-process paths
            # see other AccessControlErrors (e.g. SignatureError on an
            # invalid column) as plain errors, and ``policy_denied`` is the
            # wire form of exactly those.
            if exc.code == "unauthorized_purpose":
                return PathResult(name, "denied")
            return PathResult(name, "error", error=f"RemoteError[{exc.code}]: {exc.message}")
        return PathResult(
            name,
            "rows",
            columns=[c.lower() for c in answer.columns],
            rows=normalize_rows(answer.rows),
            checks=answer.checks,
            cache_hit=answer.cache_hit,
        )

    def _sharded_path(self, case: FuzzCase, count: int) -> PathResult:
        name = f"sharded-{count}"
        user = case.user if case.user is not None else self.world.users[0]
        params = case.params or None
        try:
            with Client(*self.sharded_server(count).address) as client:
                client.hello(user, case.purpose)
                answer = client.query(case.sql, params)
        except RemoteError as exc:
            if exc.code == "unauthorized_purpose":
                return PathResult(name, "denied")
            return PathResult(
                name, "error", error=f"RemoteError[{exc.code}]: {exc.message}"
            )
        return PathResult(
            name,
            "rows",
            columns=[c.lower() for c in answer.columns],
            rows=normalize_rows(answer.rows),
            checks=answer.checks,
            cache_hit=answer.cache_hit,
        )

    # -- assertions ------------------------------------------------------------

    def _check_audit(
        self, name: str, result: PathResult, audit_before: int, report
    ) -> None:
        """Every in-process execution leaves exactly one matching record."""
        delta = self.audit.records[audit_before:]
        if len(delta) != 1:
            result.error = f"{len(delta)} audit records written (expected 1)"
            result.outcome = "error"
            return
        record = delta[0]
        expected_outcome = "denied" if result.outcome == "denied" else "allowed"
        if record.outcome != expected_outcome:
            result.error = (
                f"audit outcome {record.outcome!r} != {expected_outcome!r}"
            )
            result.outcome = "error"
            return
        if report is not None and (
            record.rows != len(report.result)
            or record.compliance_checks != report.compliance_checks
        ):
            result.error = (
                f"audit rows/checks ({record.rows}/{record.compliance_checks}) "
                f"disagree with report "
                f"({len(report.result)}/{report.compliance_checks})"
            )
            result.outcome = "error"

    def _check_paths(
        self,
        case: FuzzCase,
        paths: list[PathResult],
        failures: list[str],
        denial_expected: bool,
        oracle_error: str | None,
        expected_rows,
        expected_columns,
    ) -> None:
        if denial_expected:
            for path in paths:
                if path.outcome != "denied":
                    failures.append(
                        f"{path.path}: expected denial for user {case.user!r} "
                        f"purpose {case.purpose!r}, got {path.outcome}"
                        + (f" ({path.error})" if path.error else "")
                    )
            return

        if oracle_error is not None:
            # Consistent-error rule: acceptable only if every path errored.
            for path in paths:
                if path.outcome != "error":
                    failures.append(
                        f"{path.path}: oracle raised ({oracle_error}) but the "
                        f"path returned {path.outcome}"
                    )
            return

        baseline_checks: int | None = None
        for path in paths:
            if path.outcome == "denied":
                failures.append(
                    f"{path.path}: unexpected denial (user {case.user!r} holds "
                    f"purpose {case.purpose!r})"
                )
                continue
            if path.outcome == "error":
                failures.append(f"{path.path}: unexpected error: {path.error}")
                continue
            if path.columns != expected_columns:
                failures.append(
                    f"{path.path}: columns {path.columns} != oracle "
                    f"{expected_columns}"
                )
            if path.rows != expected_rows:
                failures.append(
                    f"{path.path}: {len(path.rows)} rows disagree with oracle's "
                    f"{len(expected_rows)} "
                    f"(first diff: {_first_difference(path.rows, expected_rows)})"
                )
            if baseline_checks is None:
                baseline_checks = path.checks
            elif path.checks != baseline_checks:
                failures.append(
                    f"{path.path}: {path.checks} compliance checks != "
                    f"{baseline_checks} on the first path"
                )
            expected_hit = path.path in _WARM_PATHS
            if path.cache_hit is not expected_hit:
                failures.append(
                    f"{path.path}: cache_hit={path.cache_hit}, expected "
                    f"{expected_hit}"
                )

    def _check_sharded(
        self,
        case: FuzzCase,
        paths: list[PathResult],
        failures: list[str],
        denial_expected: bool,
        oracle_error: str | None,
        expected_rows,
        expected_columns,
    ) -> None:
        """Sharded deployments must agree with the oracle and *each other*.

        Row/column/denial agreement is against the oracle like any other
        path; compliance-check counts are compared across shard counts
        (exact conservation under partitioning in off/row mode), and
        cache-hit expectations don't apply — each deployment is a separate
        replica world with its own plan cache.
        """
        if denial_expected:
            for path in paths:
                if path.outcome != "denied":
                    failures.append(
                        f"{path.path}: expected denial for user {case.user!r} "
                        f"purpose {case.purpose!r}, got {path.outcome}"
                        + (f" ({path.error})" if path.error else "")
                    )
            return
        if oracle_error is not None:
            for path in paths:
                if path.outcome != "error":
                    failures.append(
                        f"{path.path}: oracle raised ({oracle_error}) but the "
                        f"path returned {path.outcome}"
                    )
            return
        baseline_checks: int | None = None
        for path in paths:
            if path.outcome == "denied":
                failures.append(
                    f"{path.path}: unexpected denial (user {case.user!r} holds "
                    f"purpose {case.purpose!r})"
                )
                continue
            if path.outcome == "error":
                failures.append(f"{path.path}: unexpected error: {path.error}")
                continue
            if path.columns != expected_columns:
                failures.append(
                    f"{path.path}: columns {path.columns} != oracle "
                    f"{expected_columns}"
                )
            if path.rows != expected_rows:
                failures.append(
                    f"{path.path}: {len(path.rows)} rows disagree with oracle's "
                    f"{len(expected_rows)} "
                    f"(first diff: {_first_difference(path.rows, expected_rows)})"
                )
            if baseline_checks is None:
                baseline_checks = path.checks
            elif path.checks != baseline_checks:
                failures.append(
                    f"{path.path}: {path.checks} compliance checks != "
                    f"{baseline_checks} on the first sharded path"
                )

    # -- metamorphic invariants --------------------------------------------------

    def _unenforced_rows(self, case: FuzzCase) -> list[tuple]:
        statement = parse_statement(case.sql)
        result = self.world.database.prepare(statement).execute(
            case.params or None
        )
        return normalize_rows(result.rows)

    def _check_invariants(
        self, case: FuzzCase, expected_rows: list[tuple], failures: list[str]
    ) -> None:
        monitor = self.world.monitor
        admin = self.world.admin
        unenforced = self._unenforced_rows(case)

        if case.subset_invariant and not is_sub_multiset(expected_rows, unenforced):
            failures.append(
                "subset invariant: enforced rows are not a sub-multiset of "
                "the unenforced rows"
            )

        # Broadening: append a pass-all rule to every stored policy (NULL
        # policies become a single pass-all rule), which makes every
        # compliance conjunct true — the enforced result must then equal
        # the unenforced result exactly, for any query shape.
        snapshots: dict[str, list[tuple]] = {}
        for table_name in admin.target_tables():
            storage = admin.database.table(table_name)
            snapshots[table_name] = list(storage.rows)
            policy_index = storage.schema.column_index(POLICY_COLUMN)
            pass_all = BitString.ones(admin.layout(table_name).rule_length)
            storage.rows = [
                (
                    *row[:policy_index],
                    pass_all if row[policy_index] is None else row[policy_index] + pass_all,
                    *row[policy_index + 1 :],
                )
                for row in storage.rows
            ]
        admin.bump_policy_epoch()
        try:
            report = monitor.execute_with_report(
                case.sql, case.purpose, user=case.user, params=case.params or None
            )
            if report.cache_hit:
                failures.append(
                    "epoch invariant: cache hit right after a policy write "
                    "(the epoch bump did not invalidate the plan)"
                )
            broadened = normalize_rows(report.result.rows)
            # SELECT * projects the policy column, whose cells the
            # broadening just rewrote — so the unenforced reference must be
            # recomputed under the mutated policies, not reused from above.
            broadened_unenforced = self._unenforced_rows(case)
            if broadened != broadened_unenforced:
                failures.append(
                    f"broadening invariant: with pass-all rules appended the "
                    f"enforced result has {len(broadened)} rows, unenforced "
                    f"has {len(broadened_unenforced)}"
                )
            if case.subset_invariant and len(broadened) < len(expected_rows):
                failures.append(
                    f"broadening invariant: broadening the policies shrank "
                    f"the result ({len(expected_rows)} -> {len(broadened)} rows)"
                )
        except ReproError as exc:
            failures.append(
                f"broadening invariant: execution failed: "
                f"{type(exc).__name__}: {exc}"
            )
        finally:
            for table_name, rows in snapshots.items():
                admin.database.table(table_name).rows = rows
            admin.bump_policy_epoch()

        # Epoch invalidation after restore: a fresh compile, and the original
        # result again.
        try:
            report = monitor.execute_with_report(
                case.sql, case.purpose, user=case.user, params=case.params or None
            )
        except ReproError as exc:
            failures.append(
                f"epoch invariant: re-execution after restore failed: "
                f"{type(exc).__name__}: {exc}"
            )
            return
        if report.cache_hit:
            failures.append(
                "epoch invariant: cache hit right after restoring policies"
            )
        if normalize_rows(report.result.rows) != expected_rows:
            failures.append(
                "epoch invariant: result after policy restore differs from "
                "the original enforced result"
            )

    # -- batches ---------------------------------------------------------------

    def run_cases(self, cases, stop_after: int | None = None):
        """Run an iterable of cases, yielding each :class:`CaseReport`."""
        seen_failures = 0
        for case in cases:
            report = self.run_case(case)
            yield report
            if not report.ok:
                seen_failures += 1
                if stop_after is not None and seen_failures >= stop_after:
                    return


def _first_difference(actual: list[tuple], expected: list[tuple]) -> str:
    from collections import Counter

    actual_counts = Counter(actual)
    expected_counts = Counter(expected)
    extra = actual_counts - expected_counts
    missing = expected_counts - actual_counts
    if extra:
        return f"extra row {next(iter(extra))!r}"
    if missing:
        return f"missing row {next(iter(missing))!r}"
    return "multisets equal (ordering artifact?)"
