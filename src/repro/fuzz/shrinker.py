"""Greedy failure minimization for differential-testing cases.

Given a failing :class:`~.generator.FuzzCase`, the shrinker repeatedly
applies structural simplifications to the parsed statement — dropping a
set-operation down to one branch, clearing ORDER BY / HAVING / GROUP BY /
DISTINCT, removing individual top-level AND conjuncts, narrowing the select
list, isolating one side of a join, inlining parameters as literals — and
keeps any variant that *still fails* the differential runner.  The loop
restarts from the first successful reduction until a full pass produces no
smaller failing case (a greedy fixed point).

Soundness relies on the runner's consistent-error rule: a candidate that is
no longer a valid query makes the oracle *and* every path error out, which
the runner reports as ``ok`` — so broken candidates are rejected, never
mistaken for smaller reproductions of the disagreement.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from ..errors import ReproError
from ..sql import ast, parse_statement, to_sql
from .generator import FuzzCase
from .runner import DifferentialRunner


def shrink(
    runner: DifferentialRunner, case: FuzzCase, max_steps: int = 200
) -> FuzzCase:
    """The smallest failing variant of ``case`` the greedy pass finds.

    ``case`` itself must fail under ``runner``; the return value is ``case``
    unchanged if no simplification preserves the failure.  ``max_steps``
    bounds the total number of candidate executions.
    """
    current = case
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in candidates(current):
            steps += 1
            if steps > max_steps:
                break
            if not runner.run_case(candidate).ok:
                current = candidate
                improved = True
                break
    return current


def candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Simplified variants of ``case``, most aggressive first."""
    try:
        statement = parse_statement(case.sql)
    except ReproError:
        return
    seen = {case.sql}

    def emit(variant, params: dict | None = None) -> Iterator[FuzzCase]:
        sql = to_sql(variant)
        if sql not in seen:
            seen.add(sql)
            yield case.with_sql(sql, params=params)

    if isinstance(statement, ast.SetOperation):
        for branch in statement.branches():
            yield from emit(branch)
        return

    if not isinstance(statement, ast.Select):
        return

    for variant in _select_reductions(statement):
        yield from emit(variant)

    if case.params:
        inlined = _inline_parameters(statement, case.params)
        if inlined is not None:
            yield from emit(inlined, params={})


def _select_reductions(select: ast.Select) -> Iterator[ast.Select]:
    """Single-step reductions of one SELECT block, big cuts first."""
    if select.where is not None:
        yield dataclasses.replace(select, where=None)
        conjuncts = _conjuncts(select.where)
        if len(conjuncts) > 1:
            for index in range(len(conjuncts)):
                kept = conjuncts[:index] + conjuncts[index + 1 :]
                yield dataclasses.replace(select, where=_conjoin(kept))

    if select.order_by:
        yield dataclasses.replace(select, order_by=())
    if select.having is not None:
        yield dataclasses.replace(select, having=None)
    if select.group_by:
        yield dataclasses.replace(select, group_by=(), having=None)
    if select.distinct:
        yield dataclasses.replace(select, distinct=False)
    if select.limit is not None or select.offset is not None:
        yield dataclasses.replace(select, limit=None, offset=None)

    if len(select.items) > 1:
        for index in range(len(select.items)):
            kept = select.items[:index] + select.items[index + 1 :]
            yield dataclasses.replace(select, items=kept)

    # A join collapses to each of its base-table leaves alone; column
    # references into the dropped side invalidate the candidate, which the
    # consistent-error rule then rejects.
    if len(select.sources) == 1 and isinstance(select.sources[0], ast.Join):
        for leaf in _join_leaves(select.sources[0]):
            yield dataclasses.replace(select, sources=(leaf,))


def _conjuncts(expression: ast.Expression) -> list[ast.Expression]:
    if isinstance(expression, ast.BinaryOp) and expression.op.lower() == "and":
        return _conjuncts(expression.left) + _conjuncts(expression.right)
    return [expression]


def _conjoin(parts: list[ast.Expression]) -> ast.Expression | None:
    if not parts:
        return None
    combined = parts[0]
    for part in parts[1:]:
        combined = ast.BinaryOp("AND", combined, part)
    return combined


def _join_leaves(source: ast.TableSource) -> Iterator[ast.TableSource]:
    if isinstance(source, ast.Join):
        yield from _join_leaves(source.left)
        yield from _join_leaves(source.right)
    elif isinstance(source, (ast.TableName, ast.SubquerySource)):
        yield source


def _inline_parameters(select: ast.Select, params: dict) -> ast.Select | None:
    """All parameter placeholders replaced with their literal values."""

    lowered = {str(k).lower(): v for k, v in params.items()}

    class _Missing(Exception):
        pass

    def rebuild(value):
        if isinstance(value, ast.Parameter):
            key = (value.name or str(value.index)).lower()
            if key not in lowered:
                raise _Missing()
            return ast.Literal(lowered[key])
        if isinstance(value, ast.Expression):
            changes = {}
            for field_info in dataclasses.fields(value):
                member = getattr(value, field_info.name)
                rebuilt = rebuild(member)
                if rebuilt is not member:
                    changes[field_info.name] = rebuilt
            return dataclasses.replace(value, **changes) if changes else value
        if isinstance(value, tuple):
            rebuilt = tuple(rebuild(item) for item in value)
            return rebuilt if rebuilt != value else value
        if isinstance(value, (ast.Select, ast.SetOperation)):
            changes = {}
            for field_info in dataclasses.fields(value):
                member = getattr(value, field_info.name)
                rebuilt = rebuild(member)
                if rebuilt is not member:
                    changes[field_info.name] = rebuilt
            return dataclasses.replace(value, **changes) if changes else value
        return value

    try:
        inlined = rebuild(select)
    except _Missing:
        return None
    return inlined if inlined is not select else None
