"""Vectorized expression evaluation over :class:`~repro.engine.batch.ColumnBatch`.

A :class:`VectorCompiler` turns an AST expression into a batch evaluator
``fn(batch, env) -> list`` producing one value per row.  The fast path
evaluates column-at-a-time; any node the compiler does not vectorize —
subqueries, CASE, aggregate references — falls back to the row-at-a-time
closure from :class:`~repro.engine.expressions.ExpressionCompiler` applied
over the batch's materialized tuples, so batch mode never changes what an
expression *means*, only how many Python frames it costs.

Short-circuit semantics are preserved by **masked evaluation**: for
``AND``/``OR``, comparisons and arithmetic, the right operand is evaluated
only on the row subset the left operand did not already decide — exactly
the rows the row-at-a-time Kleene closures would have evaluated it on.
That is not a stylistic point: a residual ``complieswith`` conjunct behind
``a > 5 AND complieswith(...)`` must invoke the UDF only for rows passing
``a > 5``, or the Figure-6 check counts (and the differential fuzzer)
would diverge between the two executor modes.
"""

from __future__ import annotations

import operator
from typing import Callable, Sequence

from ..sql import ast
from .batch import ColumnBatch
from .expressions import (
    CompiledExpr,
    Env,
    ExpressionCompiler,
    _ARITHMETIC,
    _COMPARATORS,
    _as_bool,
    _cast_value,
    _comparable,
    _int_div,
    _like_regex,
    _mod,
    _number,
    _text,
)
from .types import BitString, SqlType

#: Unguarded operator implementations for the constant-operand fast path.
#: Applied only after the element's type has been checked against the
#: constant's, so the type guards in ``_COMPARATORS``/``_ARITHMETIC`` are
#: provably redundant on this path.
_RAW_COMPARE: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_RAW_ARITH: dict[str, Callable[[float, float], object]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _int_div,
    "%": _mod,
}

#: Sentinel distinguishing "no constant operand" from a NULL literal.
_NO_CONST = object()


def _constant_operand(expr: ast.Expression) -> object:
    """The Python value of a literal operand, or ``_NO_CONST``."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.BitStringLiteral):
        return BitString.from_bits(expr.bits)
    return _NO_CONST

#: A batch evaluator: one value per row of the input batch.
VectorExpr = Callable[[ColumnBatch, Env], Sequence]


class VectorCompiler:
    """Compiles AST expressions into batch evaluators.

    Wraps a row-at-a-time :class:`ExpressionCompiler` (same scope, same
    registry, same subquery planner) for the fallback path; the two
    compilers therefore agree on name resolution, correlation tracking and
    error reporting.
    """

    def __init__(self, row_compiler: ExpressionCompiler):
        self.rows = row_compiler
        self.registry = row_compiler.registry

    # -- entry points -----------------------------------------------------------

    def compile(self, expr: ast.Expression) -> VectorExpr:
        """Compile ``expr``; vectorized when possible, row fallback otherwise."""
        vector = self._vector(expr)
        if vector is not None:
            return vector
        return self._fallback(expr)

    def vectorizes(self, expr: ast.Expression) -> bool:
        """True when ``expr`` compiles to the columnar fast path."""
        return self._vector(expr) is not None

    def _fallback(self, expr: ast.Expression) -> VectorExpr:
        """Per-row evaluation of the row closure over materialized tuples."""
        closure = self.rows.compile(expr)

        def rowwise(batch: ColumnBatch, env: Env) -> list:
            return [closure(row, env) for row in batch.iter_rows()]

        return rowwise

    # -- dispatch --------------------------------------------------------------

    def _vector(self, expr: ast.Expression) -> VectorExpr | None:
        method = getattr(self, f"_vector_{type(expr).__name__}", None)
        if method is None:
            return None
        return method(expr)

    # -- leaves ----------------------------------------------------------------

    def _vector_Literal(self, expr: ast.Literal) -> VectorExpr:
        value = expr.value
        return lambda batch, env: [value] * batch.length

    def _vector_BitStringLiteral(self, expr: ast.BitStringLiteral) -> VectorExpr:
        value = BitString.from_bits(expr.bits)
        return lambda batch, env: [value] * batch.length

    def _vector_ColumnRef(self, expr: ast.ColumnRef) -> VectorExpr:
        depth, index = self.rows.scope.resolve(expr.name, expr.table)
        if depth == 0:
            return lambda batch, env: batch.columns[index]
        # Outer references are constant within one execution of this block:
        # evaluate the row closure once (it ignores its row argument) and
        # broadcast.
        return self._broadcast(self.rows.compile(expr))

    def _vector_Parameter(self, expr: ast.Parameter) -> VectorExpr:
        return self._broadcast(self.rows.compile(expr))

    @staticmethod
    def _broadcast(closure: CompiledExpr) -> VectorExpr:
        def broadcast(batch: ColumnBatch, env: Env) -> list:
            if batch.length == 0:
                return []
            return [closure((), env)] * batch.length

        return broadcast

    # -- operators --------------------------------------------------------------

    def _vector_UnaryOp(self, expr: ast.UnaryOp) -> VectorExpr | None:
        operand = self._vector(expr.operand)
        if operand is None:
            return None
        if expr.op == "NOT":
            # Predicate operands produce real bools; `not v` short-cuts the
            # _as_bool type check for them without changing its errors.
            return lambda batch, env: [
                None
                if v is None
                else (not v)
                if v.__class__ is bool
                else (not _as_bool(v))
                for v in operand(batch, env)
            ]
        if expr.op == "-":
            return lambda batch, env: [
                None if v is None else -_number(v) for v in operand(batch, env)
            ]
        if expr.op == "+":
            return operand
        return None

    def _vector_BinaryOp(self, expr: ast.BinaryOp) -> VectorExpr | None:
        if expr.op == "AND":
            return self._vector_and(expr)
        if expr.op == "OR":
            return self._vector_or(expr)
        left = self._vector(expr.left)
        right = self._vector(expr.right)
        if left is None or right is None:
            return None
        if expr.op in _COMPARATORS:
            const = _constant_operand(expr.right)
            if const is not _NO_CONST:
                return self._comparison_const(left, expr.op, const)
            compare = _COMPARATORS[expr.op]

            def comparison(batch: ColumnBatch, env: Env) -> list:
                lhs = left(batch, env)
                present = [i for i, v in enumerate(lhs) if v is not None]
                rhs = _masked(right, batch, env, present, len(lhs))
                out: list = [None] * len(lhs)
                for i in present:
                    r = rhs[i]
                    if r is not None:
                        out[i] = compare(_comparable(lhs[i]), _comparable(r))
                return out

            return comparison
        if expr.op in _ARITHMETIC:
            const = _constant_operand(expr.right)
            if const is not _NO_CONST:
                return self._arithmetic_const(left, expr.op, const)
            operate = _ARITHMETIC[expr.op]

            def arithmetic(batch: ColumnBatch, env: Env) -> list:
                lhs = left(batch, env)
                present = [i for i, v in enumerate(lhs) if v is not None]
                rhs = _masked(right, batch, env, present, len(lhs))
                out: list = [None] * len(lhs)
                for i in present:
                    r = rhs[i]
                    if r is not None:
                        out[i] = operate(lhs[i], r)
                return out

            return arithmetic
        if expr.op == "||":

            def concat(batch: ColumnBatch, env: Env) -> list:
                lhs = left(batch, env)
                rhs = right(batch, env)
                out: list = [None] * len(lhs)
                for i, (l, r) in enumerate(zip(lhs, rhs)):
                    if l is None or r is None:
                        continue
                    if isinstance(l, BitString) and isinstance(r, BitString):
                        out[i] = l + r
                    else:
                        out[i] = _text(l) + _text(r)
                return out

            return concat
        return None

    @staticmethod
    def _comparison_const(left: VectorExpr, op: str, const: object) -> VectorExpr:
        """Comparison against a literal: one raw operator call per row.

        The literal is side-effect-free, so skipping masked evaluation of
        the right operand cannot change UDF counts or error order.  Rows
        whose type matches the constant's take the unguarded operator; any
        mismatch drops to the guarded comparator for the exact
        ``TypeMismatchError`` the row closure would raise.
        """
        if const is None:
            # NULL literal: the result is NULL for every row, but the left
            # operand is still evaluated (it may carry counted UDF calls).
            return lambda batch, env: [None] * len(left(batch, env))
        raw = _RAW_COMPARE[op]
        compare = _COMPARATORS[op]
        if const.__class__ is int or const.__class__ is float:

            def compare_numeric(batch: ColumnBatch, env: Env) -> list:
                return [
                    None
                    if v is None
                    else raw(v, const)
                    if v.__class__ is int or v.__class__ is float
                    else compare(_comparable(v), const)
                    for v in left(batch, env)
                ]

            return compare_numeric
        fast_type = const.__class__

        def compare_typed(batch: ColumnBatch, env: Env) -> list:
            return [
                None
                if v is None
                else raw(v, const)
                if v.__class__ is fast_type
                else compare(_comparable(v), const)
                for v in left(batch, env)
            ]

        return compare_typed

    @staticmethod
    def _arithmetic_const(left: VectorExpr, op: str, const: object) -> VectorExpr:
        """Arithmetic with a literal operand, mirroring the comparison path."""
        operate = _ARITHMETIC[op]
        if const is None:
            return lambda batch, env: [None] * len(left(batch, env))
        if const.__class__ is int or const.__class__ is float:
            raw = _RAW_ARITH[op]

            def arith_numeric(batch: ColumnBatch, env: Env) -> list:
                return [
                    None
                    if v is None
                    else raw(v, const)
                    if v.__class__ is int or v.__class__ is float
                    else operate(v, const)
                    for v in left(batch, env)
                ]

            return arith_numeric

        # Non-numeric literal: every present row fails; operate() checks the
        # left value first, preserving the row closure's error order.
        def arith_bad(batch: ColumnBatch, env: Env) -> list:
            return [
                None if v is None else operate(v, const)
                for v in left(batch, env)
            ]

        return arith_bad

    def _vector_and(self, expr: ast.BinaryOp) -> VectorExpr | None:
        left = self._vector(expr.left)
        right = self._vector(expr.right)
        if left is None or right is None:
            return None

        def kleene_and(batch: ColumnBatch, env: Env) -> list:
            lhs = left(batch, env)
            out: list = [None] * len(lhs)
            undecided = []
            for i, v in enumerate(lhs):
                if v is not None and not _as_bool(v):
                    out[i] = False
                else:
                    undecided.append(i)
            rhs = _masked(right, batch, env, undecided, len(lhs))
            for i in undecided:
                r = rhs[i]
                if r is not None and not _as_bool(r):
                    out[i] = False
                elif lhs[i] is None or r is None:
                    out[i] = None
                else:
                    out[i] = True
            return out

        return kleene_and

    def _vector_or(self, expr: ast.BinaryOp) -> VectorExpr | None:
        left = self._vector(expr.left)
        right = self._vector(expr.right)
        if left is None or right is None:
            return None

        def kleene_or(batch: ColumnBatch, env: Env) -> list:
            lhs = left(batch, env)
            out: list = [None] * len(lhs)
            undecided = []
            for i, v in enumerate(lhs):
                if v is not None and _as_bool(v):
                    out[i] = True
                else:
                    undecided.append(i)
            rhs = _masked(right, batch, env, undecided, len(lhs))
            for i in undecided:
                r = rhs[i]
                if r is not None and _as_bool(r):
                    out[i] = True
                elif lhs[i] is None or r is None:
                    out[i] = None
                else:
                    out[i] = False
            return out

        return kleene_or

    # -- predicates --------------------------------------------------------------

    def _vector_IsNull(self, expr: ast.IsNull) -> VectorExpr | None:
        operand = self._vector(expr.operand)
        if operand is None:
            return None
        if expr.negated:
            return lambda batch, env: [
                v is not None for v in operand(batch, env)
            ]
        return lambda batch, env: [v is None for v in operand(batch, env)]

    def _vector_Between(self, expr: ast.Between) -> VectorExpr | None:
        operand = self._vector(expr.operand)
        low = self._vector(expr.low)
        high = self._vector(expr.high)
        if operand is None or low is None or high is None:
            return None
        negated = expr.negated

        def between(batch: ColumnBatch, env: Env) -> list:
            # The row closure evaluates all three operands unconditionally,
            # so full (unmasked) evaluation preserves its semantics.
            values = operand(batch, env)
            lows = low(batch, env)
            highs = high(batch, env)
            out: list = [None] * len(values)
            for i, (v, lo, hi) in enumerate(zip(values, lows, highs)):
                if v is None or lo is None or hi is None:
                    continue
                result = _comparable(lo) <= _comparable(v) <= _comparable(hi)
                out[i] = (not result) if negated else result
            return out

        return between

    def _vector_Like(self, expr: ast.Like) -> VectorExpr | None:
        operand = self._vector(expr.operand)
        if operand is None or not isinstance(expr.pattern, ast.Literal):
            return None
        pattern_value = expr.pattern.value
        negated = expr.negated

        def like(batch: ColumnBatch, env: Env) -> list:
            values = operand(batch, env)
            if pattern_value is None:
                return [None] * len(values)
            out: list = [None] * len(values)
            regex = None
            for i, v in enumerate(values):
                if v is None:
                    continue
                if regex is None:
                    # Compiled on the first present row, not at build time,
                    # so a non-text pattern raises exactly when (and only
                    # when) the row closure would have.
                    regex = _like_regex(_text(pattern_value))
                matched = (
                    regex.match(v if v.__class__ is str else _text(v))
                    is not None
                )
                out[i] = (not matched) if negated else matched
            return out

        return like

    def _vector_InList(self, expr: ast.InList) -> VectorExpr | None:
        operand = self._vector(expr.operand)
        if operand is None or not all(
            isinstance(item, ast.Literal) for item in expr.items
        ):
            return None
        candidates = [item.value for item in expr.items]
        negated = expr.negated

        def in_list(batch: ColumnBatch, env: Env) -> list:
            out: list = [None] * batch.length
            for i, value in enumerate(operand(batch, env)):
                if value is None:
                    continue
                saw_null = False
                matched = False
                for candidate in candidates:
                    if candidate is None:
                        saw_null = True
                    elif candidate == value:
                        matched = True
                        break
                if matched:
                    out[i] = not negated
                elif not saw_null:
                    out[i] = negated
            return out

        return in_list

    def _vector_InSubquery(self, expr: ast.InSubquery) -> VectorExpr | None:
        operand = self._vector(expr.operand)
        if operand is None:
            return None
        prepared = self.rows._plan_subquery(expr.subquery)
        if prepared.correlated:
            return None  # per-row environments: stay on the row path
        negated = expr.negated

        def in_subquery(batch: ColumnBatch, env: Env) -> list:
            values = operand(batch, env)
            out: list = [None] * len(values)
            if all(v is None for v in values):
                # The row closure never executes the subquery when every
                # probe value is NULL; neither do we (same check counts).
                return out
            inner_env = Env(
                outer_env=env, params=env.params,
                subq=env.subq, trace=env.trace,
            )
            candidates = [row[0] for row in prepared.rows(inner_env)]
            saw_null = None in candidates
            members = set(candidates)
            for i, value in enumerate(values):
                if value is None:
                    continue
                if value in members:
                    out[i] = not negated
                elif not saw_null:
                    out[i] = negated
            return out

        return in_subquery

    # -- calls -------------------------------------------------------------------

    def _vector_FunctionCall(self, expr: ast.FunctionCall) -> VectorExpr | None:
        from .aggregates import is_aggregate_name

        if is_aggregate_name(expr.name):
            return None  # aggregate references stay on the row path
        args = [self._vector(arg) for arg in expr.args]
        if any(arg is None for arg in args):
            return None
        registry = self.registry
        name = expr.name

        def call(batch: ColumnBatch, env: Env) -> list:
            # Arguments are evaluated unconditionally (like the row closure);
            # registry.call still applies strictness and counts invocations,
            # so complieswith accounting is identical across executor modes.
            columns = [arg(batch, env) for arg in args]
            if not columns:
                return [registry.call(name, ()) for _ in range(batch.length)]
            return [registry.call(name, row) for row in zip(*columns)]

        return call

    def _vector_Cast(self, expr: ast.Cast) -> VectorExpr | None:
        operand = self._vector(expr.operand)
        if operand is None:
            return None
        target = SqlType.from_name(expr.type_name)
        return lambda batch, env: [
            _cast_value(v, target) for v in operand(batch, env)
        ]


def _masked(
    fn: VectorExpr, batch: ColumnBatch, env: Env, indices: list[int], length: int
) -> list:
    """Evaluate ``fn`` only on ``indices`` rows; other slots stay ``None``.

    This is what keeps vectorized evaluation order-equivalent to the row
    closures: rows the left operand already decided never reach the right
    operand, so data-dependent errors and UDF invocation counts match the
    row executor's short-circuit behaviour.
    """
    if len(indices) == length:
        return fn(batch, env)
    if not indices:
        return [None] * length
    values = fn(batch.take(indices), env)
    out: list = [None] * length
    for slot, value in zip(indices, values):
        out[slot] = value
    return out
