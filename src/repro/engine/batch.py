"""Columnar batches and executor-mode resolution (DESIGN.md §12).

The batch executor moves the hot path from one-Python-frame-per-row to
one-frame-per-*batch*: a :class:`ColumnBatch` stores a page of rows as
per-column value sequences, so scans transpose whole pages with C-level
``zip``, filters keep rows with one list comprehension per column, and the
policy guard answers a whole batch with one slice of the cached bitmap.

Mode resolution mirrors the optimizer's (`repro.engine.plan.optimizer`):
an explicit argument wins, then ``$REPRO_EXECUTOR``, then the default
``"batch"``.  ``"row"`` replays the original tuple-at-a-time operators
exactly and is kept as the differential reference the fuzzer compares
against.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Sequence

from ..errors import ExecutionError

#: Environment variable consulted when no explicit executor mode is given.
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Environment variable consulted when no explicit batch size is given.
BATCH_SIZE_ENV = "REPRO_BATCH_SIZE"

#: Rows per batch when neither an argument nor the env var overrides it.
DEFAULT_BATCH_SIZE = 1024

#: The valid executor modes.
EXECUTOR_MODES = ("batch", "row")


def resolve_executor_mode(mode: str | None = None) -> str:
    """Resolve the physical-execution mode.

    Precedence: explicit argument > ``$REPRO_EXECUTOR`` > ``"batch"`` —
    the same explicit/env/default ladder as
    :func:`~repro.engine.plan.optimizer.resolve_optimizer_mode`.
    """
    if mode is None:
        mode = os.environ.get(EXECUTOR_ENV) or "batch"
    mode = mode.strip().lower()
    if mode not in EXECUTOR_MODES:
        raise ExecutionError(
            f"unknown executor mode {mode!r} (expected one of {EXECUTOR_MODES})"
        )
    return mode


def resolve_batch_size(size: int | None = None) -> int:
    """Resolve the rows-per-batch page size (argument > env > default)."""
    if size is None:
        raw = os.environ.get(BATCH_SIZE_ENV)
        size = int(raw) if raw else DEFAULT_BATCH_SIZE
    size = int(size)
    if size < 1:
        raise ExecutionError(f"batch size must be positive, got {size}")
    return size


class ColumnBatch:
    """A page of rows stored column-wise.

    ``columns[j][i]`` is row *i*'s value for column *j*; ``length`` is the
    row count (kept explicitly so zero-width shapes — ``Values`` — still
    know how many rows they carry).  Columns are never mutated in place:
    operators that drop rows build new column lists via :meth:`take`, so a
    batch may safely share column storage with its producer.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: Sequence[Sequence], length: int):
        self.columns = columns
        self.length = length

    @classmethod
    def from_rows(cls, rows: Sequence[tuple], width: int) -> "ColumnBatch":
        """Transpose a page of row tuples into a batch."""
        if not rows:
            return cls([() for _ in range(width)], 0)
        return cls(list(zip(*rows)), len(rows))

    def __len__(self) -> int:
        return self.length

    def column(self, index: int) -> Sequence:
        """One column's values, in row order."""
        return self.columns[index]

    def row(self, index: int) -> tuple:
        """Materialize a single row tuple (used for group representatives)."""
        return tuple(column[index] for column in self.columns)

    def to_rows(self) -> list[tuple]:
        """Materialize every row as a tuple, in order."""
        if not self.columns:
            return [()] * self.length
        return list(zip(*self.columns))

    def iter_rows(self) -> Iterator[tuple]:
        """Iterate row tuples (the per-row fallback path)."""
        return iter(self.to_rows())

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """A new batch keeping only the given row positions, in order."""
        return ColumnBatch(
            [[column[i] for i in indices] for column in self.columns],
            len(indices),
        )

    def project(self, indices: Sequence[int]) -> "ColumnBatch":
        """A new batch keeping only the given columns (RowShape slicing)."""
        return ColumnBatch([self.columns[i] for i in indices], self.length)


def batches_from_rows(
    rows: Iterable[tuple], width: int, batch_size: int
) -> Iterator[ColumnBatch]:
    """Chunk a row stream into column batches of at most ``batch_size`` rows.

    The adapter every non-batch-native operator (nested loops, derived
    tables) uses to join the columnar pipeline.
    """
    page: list[tuple] = []
    for row in rows:
        page.append(row)
        if len(page) >= batch_size:
            yield ColumnBatch.from_rows(page, width)
            page = []
    if page:
        yield ColumnBatch.from_rows(page, width)
