"""Row storage.

A :class:`Table` stores rows as Python tuples in insertion order.  Schema
evolution (ALTER TABLE) rewrites stored rows, which is what the paper's
framework-configuration step does when it appends the ``policy`` column to
every target-DB table (Section 5.1).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ..errors import CatalogError, ExecutionError
from .schema import Column, TableSchema
from .types import coerce_value


class Table:
    """A heap table: a schema plus a list of row tuples."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: list[tuple] = []
        #: Bumped whenever row storage changes; cached artifacts derived from
        #: the rows (policy bitmaps) key on it to detect staleness.
        self.version: int = 0

    @property
    def rows(self) -> list[tuple]:
        """The stored row tuples, in insertion order."""
        return self._rows

    @rows.setter
    def rows(self, new_rows: list[tuple]) -> None:
        self._rows = new_rows
        self.version += 1

    @property
    def name(self) -> str:
        """The table name."""
        return self.schema.name

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    # -- DML -----------------------------------------------------------------

    def _coerce_insert(
        self, values: Iterable[object], columns: tuple[str, ...] = ()
    ) -> tuple:
        """Align ``values`` with the schema, coerce types, check NOT NULL."""
        values = list(values)
        if columns:
            if len(values) != len(columns):
                raise ExecutionError(
                    f"INSERT into {self.name!r}: {len(columns)} columns but "
                    f"{len(values)} values"
                )
            row = [column.default for column in self.schema.columns]
            for column_name, value in zip(columns, values):
                row[self.schema.column_index(column_name)] = value
        else:
            if len(values) != len(self.schema):
                raise ExecutionError(
                    f"INSERT into {self.name!r}: expected {len(self.schema)} "
                    f"values, got {len(values)}"
                )
            row = values
        coerced = tuple(
            coerce_value(column.sql_type, value)
            for column, value in zip(self.schema.columns, row)
        )
        for column, value in zip(self.schema.columns, coerced):
            if value is None and column.not_null:
                raise ExecutionError(
                    f"NULL value in NOT NULL column {column.name!r} of "
                    f"table {self.name!r}"
                )
        return coerced

    def insert_row(self, values: Iterable[object], columns: tuple[str, ...] = ()) -> None:
        """Insert one row.

        When ``columns`` is given, missing columns get their declared default
        (or NULL); otherwise ``values`` must cover the full schema in order.
        """
        self._rows.append(self._coerce_insert(values, columns))
        self.version += 1

    def append_rows(
        self, rows: Iterable[Iterable[object]], columns: tuple[str, ...] = ()
    ) -> int:
        """Insert many rows with a *single* version bump.

        The bulk-load counterpart of :meth:`insert_row`: every row is
        coerced and NOT NULL-checked up front, then storage and ``version``
        change atomically — either all rows land (one bump, so one bitmap
        rebuild) or, on a bad row, none do.  Returns the inserted count.
        """
        coerced = [self._coerce_insert(row, columns) for row in rows]
        if coerced:
            self._rows.extend(coerced)
            self.version += 1
        return len(coerced)

    def extend(self, rows: Iterable[Iterable[object]]) -> int:
        """Bulk-append full-width rows (see :meth:`append_rows`)."""
        return self.append_rows(rows)

    def update_rows(
        self,
        predicate: Callable[[tuple], bool],
        updater: Callable[[tuple], tuple],
    ) -> int:
        """Apply ``updater`` to every row matching ``predicate``; return count."""
        updated = 0
        new_rows = []
        for row in self.rows:
            if predicate(row):
                new_row = updater(row)
                new_rows.append(
                    tuple(
                        coerce_value(column.sql_type, value)
                        for column, value in zip(self.schema.columns, new_row)
                    )
                )
                updated += 1
            else:
                new_rows.append(row)
        self.rows = new_rows
        return updated

    def delete_rows(self, predicate: Callable[[tuple], bool]) -> int:
        """Delete every row matching ``predicate``; return the count."""
        kept = [row for row in self.rows if not predicate(row)]
        deleted = len(self.rows) - len(kept)
        self.rows = kept
        return deleted

    def truncate(self) -> None:
        """Remove all rows."""
        self._rows.clear()
        self.version += 1

    # -- DDL -----------------------------------------------------------------

    def add_column(self, column: Column) -> None:
        """Append a column, filling existing rows with its default."""
        self.schema = self.schema.with_column(column)
        fill = column.default
        self.rows = [(*row, fill) for row in self.rows]

    def drop_column(self, name: str) -> None:
        """Drop a column and rewrite stored rows."""
        index = self.schema.column_index(name)
        self.schema = self.schema.without_column(name)
        self.rows = [tuple(v for i, v in enumerate(row) if i != index) for row in self.rows]

    # -- column-level access (used by the policy administration layer) --------

    def column_values(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        index = self.schema.column_index(name)
        return [row[index] for row in self.rows]

    def set_column_value(
        self,
        name: str,
        value: object,
        predicate: Callable[[tuple], bool] | None = None,
    ) -> int:
        """Assign ``value`` to a column on all (or predicate-matching) rows."""
        index = self.schema.column_index(name)
        column = self.schema.columns[index]
        coerced = coerce_value(column.sql_type, value)

        def updater(row: tuple) -> tuple:
            return (*row[:index], coerced, *row[index + 1 :])

        if predicate is None:
            self.rows = [updater(row) for row in self.rows]
            return len(self.rows)
        return self.update_rows(predicate, updater)
