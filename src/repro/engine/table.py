"""Row storage with per-tuple version chains (MVCC).

A :class:`Table` stores rows as Python tuples in insertion order.  Schema
evolution (ALTER TABLE) rewrites stored rows, which is what the paper's
framework-configuration step does when it appends the ``policy`` column to
every target-DB table (Section 5.1).

Since the MVCC work (DESIGN.md §15) a table keeps two representations:

* ``_rows`` — the materialized latest-committed row list.  Readers outside
  any transaction hit it directly, so the pre-MVCC hot path is unchanged.
* ``_versions`` — an append-only chain of :class:`TupleVersion` entries
  stamped with ``xmin``/``xmax`` commit timestamps.  A snapshot at ts
  sees exactly the versions with ``xmin <= ts`` and ``xmax`` unset or
  ``> ts``, reconstructed (and cached) on demand.

Since the catalog work (DESIGN.md §16) the *schema* is versioned the same
way: ALTER TABLE commits the rewritten rows and the new schema at one
commit timestamp, ``_schema_log`` keeps ``(ts, schema)`` pairs, and the
:attr:`schema` property resolves the schema as of the reading snapshot —
an old snapshot sees old-width rows *and* the old schema.  Each committed
write also records its primary-key **write set** in ``_write_log`` so the
transaction manager can validate first-committer-wins at row granularity
(:meth:`written_since`).

The :attr:`rows`, :attr:`version` and :attr:`schema` properties consult
the context's active transaction (:mod:`repro.engine.mvcc`): inside a
transaction they serve the staged overlay/schema or the snapshot
reconstruction, and ``version`` returns a value that *identifies the
snapshot state* — an int for committed states, a ``("txn", id, bump)``
tuple for staged ones — so every cache keyed on ``Table.version`` (policy
bitmaps, index builds, table statistics) is snapshot-keyed for free and
can never leak staged or future state into another snapshot's reads.

Writers outside a transaction autocommit through the owning
:class:`~repro.engine.mvcc.TransactionManager` (one commit timestamp per
statement, WAL-logged when durability is attached).  With ``REPRO_TXN=off``
no version bookkeeping happens at all and the table behaves exactly like
the pre-MVCC engine.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable, Iterator

from ..errors import ExecutionError
from .catalog import CatalogOp
from .mvcc import _ACTIVE, Transaction, TransactionManager
from .schema import Column, TableSchema
from .types import coerce_value

#: Bound on the per-table snapshot-reconstruction cache.
_ASOF_CACHE_LIMIT = 8


class TupleVersion:
    """One version of one row: visible to snapshots in ``[xmin, xmax)``."""

    __slots__ = ("row", "xmin", "xmax")

    def __init__(self, row: tuple, xmin: int, xmax: "int | None" = None):
        self.row = row
        self.xmin = xmin
        self.xmax = xmax

    def visible_at(self, ts: int) -> bool:
        return self.xmin <= ts and (self.xmax is None or self.xmax > ts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TupleVersion(xmin={self.xmin}, xmax={self.xmax}, row={self.row!r})"


class Table:
    """A heap table: a schema, a row list and an MVCC version chain."""

    def __init__(self, schema: TableSchema):
        self._schema = schema
        #: ``(commit ts, schema)`` pairs, ascending — the schema history a
        #: pinned snapshot resolves :attr:`schema` against.
        self._schema_log: list[tuple[int, TableSchema]] = [(0, schema)]
        self._last_schema_ts: int = 0
        self._rows: list[tuple] = []
        #: Bumped on every committed change; cached artifacts derived from
        #: the rows (policy bitmaps, index builds, statistics) key on the
        #: :attr:`version` property to detect staleness.
        self._version: int = 0
        self._versions: list[TupleVersion] = []
        #: ``(commit ts, version)`` pairs, ascending; maps a snapshot ts to
        #: the committed ``version`` value it observes.
        self._commit_log: list[tuple[int, int]] = [(0, 0)]
        #: ``(commit ts, write set)`` pairs, ascending.  The write set is a
        #: frozenset of primary-key tuples, or ``None`` for "all rows"
        #: (no primary key, schema change, table-granularity mode).
        self._write_log: list[tuple[int, "frozenset | None"]] = []
        self._last_commit_ts: int = 0
        self._manager: TransactionManager | None = None
        self._asof_cache: dict[int, list[tuple]] = {}
        self._pk_cache: "tuple[TableSchema, tuple[int, ...]] | None" = None

    # -- transaction plumbing ------------------------------------------------

    def attach_manager(self, manager: TransactionManager) -> None:
        """Bind this table to its database's transaction manager."""
        self._manager = manager

    @property
    def manager(self) -> TransactionManager:
        """The owning transaction manager (created lazily when detached)."""
        if self._manager is None:
            self._manager = TransactionManager()
        return self._manager

    def _mvcc_on(self) -> bool:
        return self._manager is not None and self._manager.enabled

    def _active_txn(self) -> "Transaction | None":
        """The context transaction, iff it belongs to this table's manager."""
        txn = _ACTIVE.get()
        if (
            txn is None
            or txn.status != "active"
            or self._manager is None
            or txn.manager is not self._manager
        ):
            return None
        return txn

    def _write_txn(self) -> "Transaction | None":
        txn = self._active_txn()
        if txn is not None:
            txn._check_usable()
        return txn

    @property
    def last_commit_ts(self) -> int:
        """Commit timestamp of the most recent committed change."""
        return self._last_commit_ts

    # -- schema access -------------------------------------------------------

    @property
    def schema(self) -> TableSchema:
        """The visible schema.

        Inside a transaction: the schema staged by this transaction's
        ALTER TABLE if any, otherwise the schema as of the snapshot
        timestamp.  Outside: the latest committed schema.
        """
        txn = self._active_txn()
        if txn is not None:
            staged = txn.staged_schema(self)
            if staged is not None:
                return staged
            if txn.snapshot.ts < self._last_schema_ts:
                return self.schema_as_of(txn.snapshot.ts)
        return self._schema

    def schema_as_of(self, ts: int) -> TableSchema:
        """The committed schema visible to a snapshot at ``ts``."""
        for committed_ts, schema in reversed(self._schema_log):
            if committed_ts <= ts:
                return schema
        return self._schema_log[0][1]

    def apply_committed_schema(self, schema: TableSchema, ts: int) -> None:
        """Install a committed schema change at timestamp ``ts``."""
        self._schema = schema
        self._pk_cache = None
        if self._mvcc_on():
            self._schema_log.append((ts, schema))
            self._last_schema_ts = ts
        else:
            self._schema_log = [(0, schema)]

    def row_key_indexes(self) -> tuple[int, ...]:
        """Column indexes of the primary key in the latest committed schema.

        Empty when the table declares no primary key — write-set tracking
        then falls back to table granularity.
        """
        schema = self._schema
        cached = self._pk_cache
        if cached is not None and cached[0] is schema:
            return cached[1]
        pk = tuple(
            index
            for index, column in enumerate(schema.columns)
            if column.primary_key
        )
        self._pk_cache = (schema, pk)
        return pk

    # -- row access ----------------------------------------------------------

    @property
    def rows(self) -> list[tuple]:
        """The visible row tuples, in insertion order.

        Outside a transaction: the latest committed rows.  Inside one: the
        transaction's staged overlay if it wrote this table, otherwise the
        reconstruction as of the transaction's snapshot timestamp.
        """
        txn = self._active_txn()
        if txn is not None:
            overlay = txn.staged(self)
            if overlay is not None:
                return overlay.rows
            if txn.snapshot.ts < self._last_commit_ts:
                return self.rows_as_of(txn.snapshot.ts)
        return self._rows

    @rows.setter
    def rows(self, new_rows: list[tuple]) -> None:
        txn = self._write_txn()
        if txn is not None:
            overlay = txn.stage(self)
            overlay.rows = list(new_rows)
            overlay.append_only = False
            overlay.bump += 1
            return
        self._autocommit("replace", list(new_rows))

    def latest_rows(self) -> list[tuple]:
        """The latest committed rows, ignoring any ambient transaction.

        Used by the transaction manager (under its lock) for commit-time
        write-set diffs and rebases.
        """
        return self._rows

    @property
    def version(self) -> "int | tuple":
        """Snapshot identity of the visible row state.

        An int for committed states (strictly increasing per commit); a
        ``("txn", txn_id, bump)`` tuple while reading a staged overlay.
        Tuples never compare equal to ints, so version-keyed caches can
        neither serve committed artifacts for staged state nor retain
        staged artifacts after rollback.
        """
        txn = self._active_txn()
        if txn is not None:
            overlay = txn.staged(self)
            if overlay is not None:
                return ("txn", txn.txn_id, overlay.bump)
            if txn.snapshot.ts < self._last_commit_ts:
                return self.version_as_of(txn.snapshot.ts)
        return self._version

    @property
    def name(self) -> str:
        """The table name."""
        return self._schema.name

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    # -- snapshot reconstruction ----------------------------------------------

    def rows_as_of(self, ts: int) -> list[tuple]:
        """The committed rows visible to a snapshot at ``ts``.

        Reconstructed from the version chain and cached per timestamp; the
        reconstruction is safe against concurrent committed appends (their
        versions carry a later ``xmin`` and are filtered out).
        """
        if not self._mvcc_on() or ts >= self._last_commit_ts:
            return self._rows
        cached = self._asof_cache.get(ts)
        if cached is None:
            cached = [v.row for v in self._versions if v.visible_at(ts)]
            if len(self._asof_cache) >= _ASOF_CACHE_LIMIT:
                self._asof_cache.clear()
            self._asof_cache[ts] = cached
        return cached

    def version_as_of(self, ts: int) -> int:
        """The committed ``version`` value a snapshot at ``ts`` observes.

        Snapshots over an unchanged table share the latest committed int,
        so version-keyed caches (bitmaps, indexes, statistics) are shared
        across snapshots whenever sharing is sound.
        """
        if ts >= self._last_commit_ts:
            return self._version
        index = bisect.bisect_right(self._commit_log, (ts, float("inf"))) - 1
        return self._commit_log[max(index, 0)][1]

    def written_since(self, ts: int) -> "frozenset | None":
        """Union of the write sets of commits after ``ts``.

        ``None`` means "potentially every row": at least one of those
        commits had no row-level write set (no primary key, a schema
        change, table-granularity mode), so a concurrent writer must
        conflict regardless of which rows it touched.
        """
        written: set = set()
        for committed_ts, keys in reversed(self._write_log):
            if committed_ts <= ts:
                break
            if keys is None:
                return None
            written |= keys
        return frozenset(written)

    def prune_versions(self, horizon: int) -> None:
        """Drop versions invisible to every snapshot at or after ``horizon``."""
        if self._write_log and self._write_log[0][0] <= horizon:
            self._write_log = [
                entry for entry in self._write_log if entry[0] > horizon
            ]
        if len(self._schema_log) > 1 and self._schema_log[1][0] <= horizon:
            keep = 0
            for index, (committed_ts, _schema) in enumerate(self._schema_log):
                if committed_ts <= horizon:
                    keep = index
            if keep > 0:
                self._schema_log = self._schema_log[keep:]
        if not self._versions:
            return
        live = [
            v for v in self._versions if v.xmax is None or v.xmax > horizon
        ]
        if len(live) != len(self._versions):
            self._versions = live
            self._asof_cache.clear()
        if len(self._commit_log) > 1:
            cut = bisect.bisect_right(self._commit_log, (horizon, float("inf"))) - 1
            if cut > 0:
                self._commit_log = self._commit_log[cut:]

    # -- commit application (called by the transaction manager) ---------------

    def apply_committed_append(
        self, rows: list[tuple], ts: int, written: "frozenset | None" = None
    ) -> None:
        """Apply an append-only commit at timestamp ``ts``."""
        self._rows.extend(rows)
        self._version += 1
        if self._mvcc_on():
            self._versions.extend(TupleVersion(row, ts) for row in rows)
            self._commit_log.append((ts, self._version))
            self._write_log.append((ts, written))
        self._last_commit_ts = ts

    def apply_committed_replace(
        self, rows: list[tuple], ts: int, written: "frozenset | None" = None
    ) -> None:
        """Apply a whole-list replacement commit at timestamp ``ts``."""
        if self._mvcc_on():
            for version in self._versions:
                if version.xmax is None:
                    version.xmax = ts
            self._versions.extend(TupleVersion(row, ts) for row in rows)
        self._rows = list(rows)
        self._version += 1
        if self._mvcc_on():
            self._commit_log.append((ts, self._version))
            self._write_log.append((ts, written))
        self._last_commit_ts = ts

    def _autocommit(self, op: str, rows: list[tuple]) -> None:
        """Commit a single-statement write with its own timestamp."""
        manager = self.manager
        if not manager.enabled:
            self._apply_plain(op, rows)
            return
        manager.commit_single(self, op, rows)

    def _apply_plain(self, op: str, rows: list[tuple]) -> None:
        if op == "append":
            self._rows.extend(rows)
        else:
            self._rows = rows
        self._version += 1

    # -- DML -----------------------------------------------------------------

    def _coerce_insert(
        self, values: Iterable[object], columns: tuple[str, ...] = ()
    ) -> tuple:
        """Align ``values`` with the schema, coerce types, check NOT NULL."""
        values = list(values)
        schema = self.schema
        if columns:
            if len(values) != len(columns):
                raise ExecutionError(
                    f"INSERT into {self.name!r}: {len(columns)} columns but "
                    f"{len(values)} values"
                )
            row = [column.default for column in schema.columns]
            for column_name, value in zip(columns, values):
                row[schema.column_index(column_name)] = value
        else:
            if len(values) != len(schema):
                raise ExecutionError(
                    f"INSERT into {self.name!r}: expected {len(schema)} "
                    f"values, got {len(values)}"
                )
            row = values
        coerced = tuple(
            coerce_value(column.sql_type, value)
            for column, value in zip(schema.columns, row)
        )
        for column, value in zip(schema.columns, coerced):
            if value is None and column.not_null:
                raise ExecutionError(
                    f"NULL value in NOT NULL column {column.name!r} of "
                    f"table {self.name!r}"
                )
        return coerced

    def insert_row(self, values: Iterable[object], columns: tuple[str, ...] = ()) -> None:
        """Insert one row.

        When ``columns`` is given, missing columns get their declared default
        (or NULL); otherwise ``values`` must cover the full schema in order.
        """
        coerced = self._coerce_insert(values, columns)
        txn = self._write_txn()
        if txn is not None:
            overlay = txn.stage(self)
            overlay.rows.append(coerced)
            overlay.bump += 1
            return
        self._autocommit("append", [coerced])

    def append_rows(
        self, rows: Iterable[Iterable[object]], columns: tuple[str, ...] = ()
    ) -> int:
        """Insert many rows with a *single* version bump.

        The bulk-load counterpart of :meth:`insert_row`: every row is
        coerced and NOT NULL-checked up front, then storage and ``version``
        change atomically — either all rows land (one bump, so one bitmap
        rebuild) or, on a bad row, none do.  Returns the inserted count.
        """
        coerced = [self._coerce_insert(row, columns) for row in rows]
        if coerced:
            txn = self._write_txn()
            if txn is not None:
                overlay = txn.stage(self)
                overlay.rows.extend(coerced)
                overlay.bump += 1
            else:
                self._autocommit("append", coerced)
        return len(coerced)

    def extend(self, rows: Iterable[Iterable[object]]) -> int:
        """Bulk-append full-width rows (see :meth:`append_rows`)."""
        return self.append_rows(rows)

    def update_rows(
        self,
        predicate: Callable[[tuple], bool],
        updater: Callable[[tuple], tuple],
    ) -> int:
        """Apply ``updater`` to every row matching ``predicate``; return count."""
        updated = 0
        new_rows = []
        schema = self.schema
        for row in self.rows:
            if predicate(row):
                new_row = updater(row)
                new_rows.append(
                    tuple(
                        coerce_value(column.sql_type, value)
                        for column, value in zip(schema.columns, new_row)
                    )
                )
                updated += 1
            else:
                new_rows.append(row)
        self.rows = new_rows
        return updated

    def delete_rows(self, predicate: Callable[[tuple], bool]) -> int:
        """Delete every row matching ``predicate``; return the count."""
        kept = [row for row in self.rows if not predicate(row)]
        deleted = len(self.rows) - len(kept)
        self.rows = kept
        return deleted

    def truncate(self) -> None:
        """Remove all rows."""
        self.rows = []

    # -- DDL -----------------------------------------------------------------

    def add_column(self, column: Column) -> None:
        """Append a column, filling existing rows with its default.

        Since the catalog work (DESIGN.md §16) ALTER TABLE is a versioned
        commit, not a barrier: inside a transaction it stages the new
        schema and the widened rows in the transaction's overlay (visible
        only to that transaction until commit, first-committer-wins on the
        table's ``schema`` catalog entry); outside one it autocommits rows
        and schema at a single timestamp, so pinned snapshots keep seeing
        the old rows under the old schema.
        """
        new_schema = self.schema.with_column(column)
        fill = column.default
        txn = self._write_txn()
        if txn is not None:
            self._stage_schema_change(
                txn,
                new_schema,
                lambda row: (*row, fill),
                wal={"op": "add_column", "table": self.name, "column": column},
                describe=f"ALTER TABLE {self.name} ADD COLUMN {column.name}",
            )
            return
        new_rows = [(*row, fill) for row in self._rows]
        self._autocommit_schema_change(
            new_schema,
            new_rows,
            wal={"op": "add_column", "table": self.name, "column": column},
        )

    def drop_column(self, name: str) -> None:
        """Drop a column and rewrite stored rows."""
        index = self.schema.column_index(name)
        new_schema = self.schema.without_column(name)

        def narrow(row: tuple) -> tuple:
            return tuple(v for i, v in enumerate(row) if i != index)

        txn = self._write_txn()
        if txn is not None:
            self._stage_schema_change(
                txn,
                new_schema,
                narrow,
                wal={"op": "drop_column", "table": self.name, "column": name},
                describe=f"ALTER TABLE {self.name} DROP COLUMN {name}",
            )
            return
        new_rows = [narrow(row) for row in self._rows]
        self._autocommit_schema_change(
            new_schema,
            new_rows,
            wal={"op": "drop_column", "table": self.name, "column": name},
        )

    def _stage_schema_change(
        self,
        txn: Transaction,
        new_schema: TableSchema,
        rewrite: Callable[[tuple], tuple],
        wal: dict,
        describe: str,
    ) -> None:
        """Stage an ALTER in the transaction: rewrite the overlay rows and
        record the schema as a catalog op (conflicting first-committer-wins
        on the table's ``schema`` entry)."""
        overlay = txn.stage(self)
        overlay.rows = [rewrite(row) for row in overlay.rows]
        overlay.append_only = False
        overlay.bump += 1
        txn._staged_schemas[self.name.lower()] = new_schema
        txn.add_catalog_op(
            CatalogOp(
                "schema",
                self.name.lower(),
                new_schema,
                wal=wal,
                apply=lambda ts: self.apply_committed_schema(new_schema, ts),
                describe=describe,
            )
        )

    def _autocommit_schema_change(
        self, new_schema: TableSchema, new_rows: list[tuple], wal: dict
    ) -> None:
        """Commit an ALTER outside any transaction: schema + rewritten rows
        land at one timestamp (WAL DDL record when durability is attached)."""
        manager = self.manager
        if not manager.enabled:
            self.apply_committed_schema(new_schema, 0)
            self._apply_plain("replace", new_rows)
            return
        key = self.name.lower()
        op = CatalogOp(
            "schema",
            key,
            new_schema,
            wal=wal,
            apply=lambda ts: self.apply_committed_schema(new_schema, ts),
        )
        manager.commit_ddl([op], {key: (self, "replace", new_rows, None)})

    # -- column-level access (used by the policy administration layer) --------

    def column_values(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        index = self.schema.column_index(name)
        return [row[index] for row in self.rows]

    def set_column_value(
        self,
        name: str,
        value: object,
        predicate: Callable[[tuple], bool] | None = None,
    ) -> int:
        """Assign ``value`` to a column on all (or predicate-matching) rows."""
        index = self.schema.column_index(name)
        column = self.schema.columns[index]
        coerced = coerce_value(column.sql_type, value)

        def updater(row: tuple) -> tuple:
            return (*row[:index], coerced, *row[index + 1 :])

        if predicate is None:
            updated = self.rows
            self.rows = [updater(row) for row in updated]
            return len(updated)
        return self.update_rows(predicate, updater)
