"""Write-ahead logging, checkpointing and crash recovery.

The durability half of the MVCC work (DESIGN.md §15).  The protocol is
redo-only physical logging of *committed* effects:

* Every commit — transactional or autocommit — appends one
  :data:`commit record <COMMIT>` describing its per-table effects
  (``append`` of new rows, or a whole-list ``replace``) *before* the
  in-memory apply.  A commit is durable exactly when its record is
  fsynced; there is nothing to undo at recovery because uncommitted
  staged state never reaches the log.
* Records are framed as ``crc32 length json\\n``; recovery replays the
  longest valid prefix and stops at the first torn or corrupt record, so
  a crash mid-append can never resurrect half a commit.
* ``fsync`` is group-committed: concurrent committers coalesce on a
  single flush (the first one in syncs everything written so far, the
  rest observe their LSN already durable and return without touching the
  disk).  ``REPRO_WAL_SYNC=off`` trades durability for speed in tests.
* A checkpoint writes a full database snapshot (via
  :mod:`repro.engine.persist`) with an atomic rename, then truncates the
  log; recovery = load newest checkpoint + replay the WAL suffix.
* DDL commits — transactional or autocommit — append a :data:`DDL`
  record carrying the logical catalog ops (create/drop table or index,
  add/drop column) *plus* the per-table row effects, all at one commit
  timestamp.  Recovery replays them in order like any other commit, so
  DDL no longer forces a checkpoint (DESIGN.md §16).

Failpoints (:attr:`WriteAheadLog.failpoints`) simulate crashes at the
exact moments that distinguish a correct recovery protocol from a lucky
one: before the append, after a *partial* append (torn write), before the
fsync, and after the fsync but before the in-memory apply.  The crash
harness in ``tests/engine/test_wal_recovery.py`` drives them.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path

from ..errors import InjectedFailure, WalError
from .database import Database

#: Environment variable gating fsync on commit (``"on"``/``"off"``).
WAL_SYNC_ENV = "REPRO_WAL_SYNC"

#: Commit-record type tag.
COMMIT = "commit"

#: DDL-commit record type tag: catalog ops + row effects at one timestamp.
DDL = "ddl"

#: Checkpoint-marker record type tag (first record of a fresh log).
CHECKPOINT = "checkpoint"

_SNAPSHOT_NAME = "snapshot.json"
_WAL_NAME = "wal.log"


def resolve_wal_sync(mode: str | None = None) -> bool:
    """Whether commits fsync (explicit argument > ``$REPRO_WAL_SYNC`` > on)."""
    if mode is None:
        mode = os.environ.get(WAL_SYNC_ENV) or "on"
    return mode.strip().lower() != "off"


def _frame(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x %08x %s\n" % (crc, len(payload), payload)


class WriteAheadLog:
    """An append-only, CRC-framed record log with group-committed fsync."""

    def __init__(self, path: "str | Path", sync: bool | None = None):
        self.path = Path(path)
        self.sync_enabled = resolve_wal_sync() if sync is None else sync
        self._write_lock = threading.Lock()
        self._sync_lock = threading.Lock()
        self._written_lsn = 0
        self._synced_lsn = 0
        self.appends = 0
        self.syncs = 0
        #: Active failpoint names; see module docstring.
        self.failpoints: set[str] = set()
        self._file = open(self.path, "ab")

    # -- failpoints --------------------------------------------------------

    def _hit(self, point: str) -> None:
        if point in self.failpoints:
            raise InjectedFailure(point)

    # -- appending ---------------------------------------------------------

    def append(self, record: dict, sync: bool = True) -> int:
        """Append one record; returns its LSN (1-based record ordinal).

        With ``sync`` the record is group-committed durable before the
        call returns (subject to :attr:`sync_enabled`).
        """
        frame = _frame(record)
        with self._write_lock:
            self._hit("wal.before_append")
            if "wal.partial_append" in self.failpoints:
                # A torn write: half the frame reaches the disk, then the
                # process dies.  Recovery must discard it.
                self._file.write(frame[: max(1, len(frame) // 2)])
                self._file.flush()
                os.fsync(self._file.fileno())
                raise InjectedFailure("wal.partial_append")
            self._file.write(frame)
            self._file.flush()
            self._written_lsn += 1
            lsn = self._written_lsn
            self.appends += 1
        if sync:
            self.sync_to(lsn)
        return lsn

    def sync_to(self, lsn: int) -> None:
        """Make every record up to ``lsn`` durable (group commit).

        Committers racing here coalesce: whoever takes the sync lock first
        fsyncs *everything written so far*; the rest find their LSN
        already covered and return without a second flush.
        """
        self._hit("wal.before_sync")
        if not self.sync_enabled:
            self._synced_lsn = max(self._synced_lsn, lsn)
            self._hit("wal.after_sync")
            return
        if self._synced_lsn >= lsn:
            self._hit("wal.after_sync")
            return
        with self._sync_lock:
            if self._synced_lsn < lsn:
                with self._write_lock:
                    target = self._written_lsn
                    os.fsync(self._file.fileno())
                self._synced_lsn = target
                self.syncs += 1
        self._hit("wal.after_sync")

    # -- reading -----------------------------------------------------------

    def replay(self) -> "tuple[list[dict], int]":
        """Decode the longest valid record prefix.

        Returns ``(records, torn_bytes)`` where ``torn_bytes`` counts
        trailing bytes discarded because the final frame was truncated or
        failed its CRC.  Never raises on a damaged tail — that is the
        normal shape of a crash — but a damaged *middle* cannot be told
        apart from a damaged tail and also stops the replay there.
        """
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return [], 0
        records: list[dict] = []
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                break
            line = data[offset : newline + 1]
            record = _decode_frame(line)
            if record is None:
                break
            records.append(record)
            offset = newline + 1
        return records, len(data) - offset

    def truncate(self) -> None:
        """Start a fresh, empty log (post-checkpoint)."""
        with self._write_lock:
            self._file.close()
            self._file = open(self.path, "wb")
            self._file.flush()
            os.fsync(self._file.fileno())
            self._written_lsn = 0
            self._synced_lsn = 0

    def close(self) -> None:
        with self._write_lock:
            if not self._file.closed:
                self._file.close()

    def stats(self) -> dict[str, int]:
        return {
            "appends": self.appends,
            "syncs": self.syncs,
            "written_lsn": self._written_lsn,
            "synced_lsn": self._synced_lsn,
        }


def _decode_frame(line: bytes) -> "dict | None":
    """Decode one framed record; ``None`` when torn or corrupt."""
    if not line.endswith(b"\n") or len(line) < 19:
        return None
    head, sep, payload = line[:-1].partition(b" ")
    if not sep:
        return None
    length_hex, sep, payload = payload.partition(b" ")
    if not sep:
        return None
    try:
        crc = int(head, 16)
        length = int(length_hex, 16)
    except ValueError:
        return None
    if len(payload) != length:
        return None
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None


def _encode_ddl_op(op: dict) -> dict:
    """Make a CatalogOp WAL descriptor JSON-serializable.

    Embedded engine objects — a :class:`~repro.engine.schema.Column`, a
    :class:`~repro.engine.schema.TableSchema`, an
    :class:`~repro.engine.index.IndexDefinition` — are flattened here so
    the staging code can hand over live objects.
    """
    from .persist import _encode_column
    from .schema import Column, TableSchema

    encoded = {}
    for key, value in op.items():
        if isinstance(value, Column):
            encoded[key] = _encode_column(value)
        elif isinstance(value, TableSchema):
            encoded[key] = {
                "name": value.name,
                "columns": [_encode_column(column) for column in value.columns],
            }
        elif hasattr(value, "to_dict"):
            encoded[key] = value.to_dict()
        else:
            encoded[key] = value
    return encoded


def _replay_ddl(database: Database, record: dict, ts: int) -> None:
    """Reapply one DDL record: catalog ops first, then the row effects."""
    from . import persist
    from .index import IndexDefinition
    from .schema import TableSchema

    entries = []
    for op in record.get("ops", ()):
        kind = op["op"]
        if kind == "create_table":
            schema = TableSchema(
                op["schema"]["name"],
                [persist._decode_column(c) for c in op["schema"]["columns"]],
            )
            database.create_table(schema, record_catalog=False)
            entries.append(("table", schema.name.lower(), schema))
        elif kind == "drop_table":
            database.drop_table(op["table"], record_catalog=False)
            entries.append(("table", op["table"].lower(), None))
        elif kind == "add_column":
            table = database.table(op["table"])
            schema = table.schema.with_column(persist._decode_column(op["column"]))
            table.apply_committed_schema(schema, ts)
            entries.append(("schema", op["table"].lower(), schema))
        elif kind == "drop_column":
            table = database.table(op["table"])
            schema = table.schema.without_column(op["column"])
            table.apply_committed_schema(schema, ts)
            entries.append(("schema", op["table"].lower(), schema))
        elif kind == "create_index":
            definition = IndexDefinition.from_dict(op["definition"])
            database.indexes.create(definition)
            entries.append(("index", definition.name.lower(), definition))
        elif kind == "drop_index":
            database.indexes.drop(op["name"])
            entries.append(("index", op["name"].lower(), None))
        else:  # pragma: no cover - forward compatibility guard
            raise WalError(f"unknown DDL op {kind!r} in WAL record")
    for table_name, effect in record.get("tables", {}).items():
        table = database.table(table_name)
        rows = [
            tuple(persist._decode_value(value) for value in row)
            for row in effect["rows"]
        ]
        if effect["op"] == "append":
            table.apply_committed_append(rows, ts)
        else:
            table.apply_committed_replace(rows, ts)
    if entries:
        database.catalog.commit(entries, ts)


class DurabilityManager:
    """Glue between a database, its transaction manager and the disk.

    Owns a directory with two files: ``snapshot.json`` (the newest
    checkpoint, written atomically) and ``wal.log`` (commits since).  Once
    attached, every commit flowing through the transaction manager is
    logged before it applies; :func:`open_database` reverses the process.
    """

    def __init__(
        self,
        database: Database,
        directory: "str | Path",
        sync: bool | None = None,
    ):
        self.database = database
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(self.directory / _WAL_NAME, sync=sync)
        self.checkpoints = 0
        self.recovered_commits = 0
        self.torn_bytes = 0
        manager = database.transactions
        if not manager.enabled:
            raise WalError(
                "durability requires MVCC (REPRO_TXN=on); the WAL logs "
                "commit timestamps"
            )
        manager.wal = self
        database.durability = self

    # -- logging (called by the transaction manager, under its lock) --------

    def log_commit(self, ts: int, ops: "dict[str, tuple[str, list[tuple]]]") -> int:
        """Log one commit's per-table effects; returns the record's LSN.

        Called under the transaction-manager lock, *before* the in-memory
        apply.  The fsync is deliberately not here: the committer calls
        :meth:`sync` after releasing the manager lock, so concurrent
        commits coalesce on one flush (group commit) instead of
        serializing their fsyncs behind the lock.
        """
        from .persist import _encode_value

        record = {
            "type": COMMIT,
            "ts": ts,
            "tables": {
                name: {
                    "op": op,
                    "rows": [[_encode_value(v) for v in row] for row in rows],
                }
                for name, (op, rows) in ops.items()
            },
        }
        return self.wal.append(record, sync=False)

    def log_ddl(
        self,
        ts: int,
        ops: "list[dict]",
        table_ops: "dict[str, tuple[str, list[tuple]]]",
    ) -> int:
        """Log one DDL commit: logical catalog ops + row effects.

        ``ops`` are the :attr:`~repro.engine.catalog.CatalogOp.wal`
        descriptors of the statement's catalog mutations; ``table_ops``
        carries any row rewrites committing at the same timestamp (the
        widened rows of an ALTER TABLE).  Called under the
        transaction-manager lock like :meth:`log_commit`.
        """
        from .persist import _encode_value

        record = {
            "type": DDL,
            "ts": ts,
            "ops": [_encode_ddl_op(op) for op in ops],
            "tables": {
                name: {
                    "op": op,
                    "rows": [[_encode_value(v) for v in row] for row in rows],
                }
                for name, (op, rows) in table_ops.items()
            },
        }
        return self.wal.append(record, sync=False)

    def sync(self, lsn: int) -> None:
        """Group-commit: return once the record at ``lsn`` is durable."""
        self.wal.sync_to(lsn)

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self) -> None:
        """Write an atomic full snapshot and truncate the log."""
        from . import persist

        document = persist.to_document(self.database)
        document["wal_clock"] = self.database.transactions.clock
        snapshot_path = self.directory / _SNAPSHOT_NAME
        temp_path = snapshot_path.with_suffix(".json.tmp")
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, snapshot_path)
        self.wal.truncate()
        self.wal.append({"type": CHECKPOINT, "ts": self.database.transactions.clock})
        self.checkpoints += 1

    def close(self) -> None:
        self.wal.close()

    def stats(self) -> dict[str, int]:
        stats = dict(self.wal.stats())
        stats["checkpoints"] = self.checkpoints
        stats["recovered_commits"] = self.recovered_commits
        stats["torn_bytes"] = self.torn_bytes
        return stats


def open_database(
    directory: "str | Path",
    name: str = "db",
    sync: bool | None = None,
) -> "tuple[Database, DurabilityManager]":
    """Open (or create) a durable database rooted at ``directory``.

    Recovery protocol: load the newest checkpoint snapshot if present,
    fast-forward the commit clock to its ``wal_clock``, then replay every
    valid WAL commit record with a later timestamp in order.  The result
    is exactly the committed prefix: commits whose record survived are
    reapplied, torn tails are discarded.
    """
    from . import persist

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    snapshot_path = directory / _SNAPSHOT_NAME
    checkpoint_clock = 0
    if snapshot_path.exists():
        document = json.loads(snapshot_path.read_text(encoding="utf-8"))
        database = persist.from_document(document)
        checkpoint_clock = int(document.get("wal_clock", 0))
        if name != "db":
            database.name = name
    else:
        database = Database(name)
    manager = database.transactions
    manager.advance_clock_to(checkpoint_clock)
    # Replay before attaching the WAL: recovered commits must not be
    # re-logged (they are already durable).
    wal = WriteAheadLog(directory / _WAL_NAME, sync=sync)
    records, torn = wal.replay()
    recovered = 0
    for record in records:
        record_type = record.get("type")
        if record_type not in (COMMIT, DDL):
            continue
        ts = int(record["ts"])
        if ts <= checkpoint_clock:
            continue
        if record_type == DDL:
            _replay_ddl(database, record, ts)
        else:
            for table_name, effect in record["tables"].items():
                table = database.table(table_name)
                rows = [
                    tuple(persist._decode_value(value) for value in row)
                    for row in effect["rows"]
                ]
                if effect["op"] == "append":
                    table.apply_committed_append(rows, ts)
                else:
                    table.apply_committed_replace(rows, ts)
        manager.advance_clock_to(ts)
        recovered += 1
    wal.close()
    if torn:
        # Heal the log: drop the torn tail so post-recovery commits append
        # after the valid prefix — otherwise the next replay would stop at
        # the garbage and discard every commit logged after it.
        wal_path = directory / _WAL_NAME
        os.truncate(wal_path, wal_path.stat().st_size - torn)
    durability = DurabilityManager(database, directory, sync=sync)
    durability.recovered_commits = recovered
    durability.torn_bytes = torn
    return database, durability
