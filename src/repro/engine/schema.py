"""Table schemas and the catalog-facing column model.

Column order matters throughout the access-control core: the paper's column
masks (Def. 10) assign bit *i* to the *i*-th attribute of the table, so
:class:`TableSchema` exposes a stable, insertion-ordered column list and an
:meth:`TableSchema.column_index` lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError
from .types import SqlType


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    sql_type: SqlType
    primary_key: bool = False
    not_null: bool = False
    default: object = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("column name must be non-empty")


class TableSchema:
    """An ordered collection of :class:`Column` definitions.

    Names are matched case-insensitively (like PostgreSQL's lower-case
    folding) but the original spelling is preserved for display.
    """

    def __init__(self, name: str, columns: list[Column] | tuple[Column, ...]):
        if not name:
            raise CatalogError("table name must be non-empty")
        self.name = name
        self._columns: list[Column] = []
        self._index: dict[str, int] = {}
        for column in columns:
            self._add(column)

    def _add(self, column: Column) -> None:
        key = column.name.lower()
        if key in self._index:
            raise CatalogError(
                f"duplicate column {column.name!r} in table {self.name!r}"
            )
        self._index[key] = len(self._columns)
        self._columns.append(column)

    # -- read access -----------------------------------------------------------

    @property
    def columns(self) -> tuple[Column, ...]:
        """The columns in definition order."""
        return tuple(self._columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        """The column names in definition order."""
        return tuple(column.name for column in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def column_index(self, name: str) -> int:
        """0-based position of a column; raises :class:`CatalogError` if absent."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        return self._columns[self.column_index(name)]

    # -- schema evolution --------------------------------------------------------

    def with_column(self, column: Column) -> "TableSchema":
        """Return a new schema with ``column`` appended."""
        return TableSchema(self.name, [*self._columns, column])

    def without_column(self, name: str) -> "TableSchema":
        """Return a new schema with the named column removed."""
        index = self.column_index(name)
        remaining = [c for i, c in enumerate(self._columns) if i != index]
        if not remaining:
            raise CatalogError(f"cannot drop the last column of {self.name!r}")
        return TableSchema(self.name, remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.sql_type.value}" for c in self._columns)
        return f"TableSchema({self.name}: {cols})"


@dataclass(frozen=True)
class ColumnBinding:
    """A column as visible inside a query: source binding name + position.

    ``source`` is the FROM-clause binding (alias or table name, lower-cased),
    ``name`` the column name (lower-cased), ``index`` the slot in the joined
    row tuple, and ``base_table``/``base_column`` the provenance used by the
    access-control layer (None for computed derived-table columns).
    """

    source: str
    name: str
    index: int
    sql_type: SqlType | None = None
    base_table: str | None = None
    base_column: str | None = None


@dataclass
class RowShape:
    """Describes the tuple layout produced by a FROM-clause plan node."""

    bindings: list[ColumnBinding] = field(default_factory=list)

    def width(self) -> int:
        """Number of slots in the row tuple."""
        return len(self.bindings)

    def resolve(self, name: str, table: str | None) -> ColumnBinding:
        """Resolve a (possibly qualified) column reference.

        Raises :class:`CatalogError` when the reference is unknown or
        ambiguous, mirroring a real SQL engine's binder.
        """
        name_key = name.lower()
        table_key = table.lower() if table else None
        matches = [
            binding
            for binding in self.bindings
            if binding.name == name_key
            and (table_key is None or binding.source == table_key)
        ]
        if not matches:
            qualified = f"{table}.{name}" if table else name
            raise CatalogError(f"unknown column {qualified!r}")
        if len(matches) > 1:
            from ..errors import AmbiguousColumnError

            qualified = f"{table}.{name}" if table else name
            raise AmbiguousColumnError(f"ambiguous column reference {qualified!r}")
        return matches[0]

    def merged_with(self, other: "RowShape") -> "RowShape":
        """Concatenate two shapes (used when joining two sources)."""
        offset = self.width()
        shifted = [
            ColumnBinding(
                b.source, b.name, b.index + offset, b.sql_type,
                b.base_table, b.base_column,
            )
            for b in other.bindings
        ]
        return RowShape([*self.bindings, *shifted])
