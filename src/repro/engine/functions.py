"""Scalar function registry.

The engine ships with a small set of builtins and lets callers register
user-defined functions — the enforcement framework registers
``complieswith`` here, mirroring the paper's PostgreSQL C UDF (Section 6.3).

Every registered function carries an invocation counter; Figure 6 of the
paper measures exactly "the number of times function compliesWith is invoked
to check the compliance of a query action signature with a policy", so the
benchmark harness reads :meth:`FunctionRegistry.call_count`.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ExpressionError, TypeMismatchError


@dataclass
class RegisteredFunction:
    """A scalar function plus its bookkeeping.

    Attributes:
        func: The Python callable.  It receives already-evaluated argument
            values.  SQL NULL is passed through as ``None``; ``strict``
            functions short-circuit to NULL instead of being called.
        strict: When True (the default, like PostgreSQL STRICT functions),
            the function is not invoked if any argument is NULL — the result
            is NULL and the invocation is *not* counted.
        calls: Number of times ``func`` was actually invoked.  Incremented
            under ``lock``: ``calls += 1`` is a read-modify-write that loses
            counts when concurrent query threads interleave, and Figure 6's
            metric (and the server's stats) are built on this counter.
    """

    name: str
    func: Callable[..., object]
    strict: bool = True
    calls: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class MemoizedFunction:
    """A pure scalar function wrapped with a bounded argument→result memo.

    Register the *wrapper* instead of swapping registry entries on every
    change: :meth:`FunctionRegistry.call` increments the invocation counter
    before delegating here, so memo hits are still counted — the Figure-6
    metric measures how often the rewritten query *invokes* ``complieswith``,
    not how often the underlying bit arithmetic actually runs.  (Re-calling
    :meth:`FunctionRegistry.register` would also zero the counter, losing
    the measurement.)  Arguments must be hashable; unhashable calls fall
    through to the wrapped function uncached.

    The memo is guarded by a lock so concurrent query threads can share it:
    lookups, the clear-on-overflow sequence and epoch-driven :meth:`clear`
    calls would otherwise interleave (a reader could observe a cache that a
    policy change is mid-way through invalidating).  The wrapped function
    itself runs outside the lock — it is pure, so a racing duplicate
    computation is harmless while holding the lock across it would serialize
    every policy check.
    """

    __slots__ = ("func", "maxsize", "_cache", "_lock", "_hits", "_misses")

    def __init__(self, func: Callable[..., object], maxsize: int = 4096):
        self.func = func
        self.maxsize = maxsize
        self._cache: dict[tuple, object] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def __call__(self, *args: object) -> object:
        try:
            with self._lock:
                result = self._cache[args]
                self._hits += 1
                return result
        except KeyError:
            pass
        except TypeError:
            return self.func(*args)
        result = self.func(*args)
        with self._lock:
            self._misses += 1
            if len(self._cache) >= self.maxsize:
                self._cache.clear()
            self._cache[args] = result
        return result

    def clear(self) -> None:
        """Drop every memoized result (call when the inputs' meaning shifts).

        Hit/miss counters survive the clear — they account invocations, not
        cache contents, and the observability layer reads them as monotonic.
        """
        with self._lock:
            self._cache.clear()

    def cached_results(self) -> int:
        """Number of argument tuples currently memoized."""
        with self._lock:
            return len(self._cache)

    def hit_count(self) -> int:
        """Invocations answered from the memo (monotonic, survives clears)."""
        with self._lock:
            return self._hits

    def miss_count(self) -> int:
        """Invocations that ran the wrapped function and stored the result."""
        with self._lock:
            return self._misses


class FunctionRegistry:
    """Name → scalar function mapping with per-function call counters."""

    def __init__(self) -> None:
        self._functions: dict[str, RegisteredFunction] = {}
        _install_builtins(self)

    def register(
        self, name: str, func: Callable[..., object], strict: bool = True
    ) -> None:
        """Register (or replace) a scalar function under ``name``."""
        key = name.lower()
        self._functions[key] = RegisteredFunction(key, func, strict)

    def unregister(self, name: str) -> None:
        """Remove a function; unknown names are ignored."""
        self._functions.pop(name.lower(), None)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    def get(self, name: str) -> RegisteredFunction:
        """Look up a function, raising :class:`ExpressionError` when missing."""
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise ExpressionError(f"unknown function {name!r}") from None

    def call(self, name: str, args: tuple) -> object:
        """Invoke a registered function on evaluated arguments."""
        registered = self.get(name)
        if registered.strict and any(arg is None for arg in args):
            return None
        with registered.lock:
            registered.calls += 1
        return registered.func(*args)

    # -- instrumentation ---------------------------------------------------------

    def call_count(self, name: str) -> int:
        """How many times ``name`` was invoked since the last reset."""
        key = name.lower()
        if key not in self._functions:
            return 0
        return self._functions[key].calls

    def reset_counters(self) -> None:
        """Zero every function's invocation counter."""
        for registered in self._functions.values():
            with registered.lock:
                registered.calls = 0


# ---------------------------------------------------------------------------
# Builtins
# ---------------------------------------------------------------------------


def _as_number(value: object, context: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeMismatchError(f"{context} requires a numeric argument, got {value!r}")
    return value


def _install_builtins(registry: FunctionRegistry) -> None:
    registry.register("abs", lambda v: abs(_as_number(v, "abs")))
    registry.register("round", _round)
    registry.register("floor", lambda v: math.floor(_as_number(v, "floor")))
    registry.register("ceil", lambda v: math.ceil(_as_number(v, "ceil")))
    registry.register("sqrt", lambda v: math.sqrt(_as_number(v, "sqrt")))
    registry.register("power", lambda b, e: _as_number(b, "power") ** _as_number(e, "power"))
    registry.register("mod", lambda a, b: int(_as_number(a, "mod")) % int(_as_number(b, "mod")))
    registry.register("length", _length)
    registry.register("lower", lambda v: _as_text(v, "lower").lower())
    registry.register("upper", lambda v: _as_text(v, "upper").upper())
    registry.register("trim", lambda v: _as_text(v, "trim").strip())
    registry.register("substr", _substr)
    registry.register("substring", _substr)
    registry.register("replace", _replace)
    registry.register("concat", _concat, strict=False)
    registry.register("coalesce", _coalesce, strict=False)
    registry.register("nullif", lambda a, b: None if a == b else a, strict=False)
    registry.register("greatest", lambda *vs: max(vs))
    registry.register("least", lambda *vs: min(vs))
    registry.register("sign", lambda v: (v > 0) - (v < 0))


def _as_text(value: object, context: str) -> str:
    if not isinstance(value, str):
        raise TypeMismatchError(f"{context} requires a text argument, got {value!r}")
    return value


def _round(value: object, digits: object = 0) -> float:
    return round(_as_number(value, "round"), int(_as_number(digits, "round")))


def _length(value: object) -> int:
    if isinstance(value, str):
        return len(value)
    if hasattr(value, "__len__"):
        return len(value)  # BitString supports len()
    raise TypeMismatchError(f"length() requires text or bits, got {value!r}")


def _substr(value: object, start: object, count: object = None) -> str:
    text = _as_text(value, "substr")
    begin = int(_as_number(start, "substr")) - 1  # SQL substr is 1-based
    if count is None:
        return text[max(begin, 0) :]
    return text[max(begin, 0) : max(begin, 0) + int(_as_number(count, "substr"))]


def _replace(value: object, old: object, new: object) -> str:
    return _as_text(value, "replace").replace(
        _as_text(old, "replace"), _as_text(new, "replace")
    )


def _concat(*values: object) -> str:
    return "".join(str(v) for v in values if v is not None)


def _coalesce(*values: object) -> object:
    for value in values:
        if value is not None:
            return value
    return None
