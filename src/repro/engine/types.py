"""Value types of the relational engine.

The only non-standard type is :class:`BitString`, the engine's ``BIT
VARYING`` value.  The paper stores policy masks in a ``policy`` column of
"binary attribute of variable length" (Section 5.1) and manipulates them with
bitwise AND plus substring extraction (Listing 1); ``BitString`` provides
exactly those operations, backed by a Python int for speed.

Bit order convention: index 0 is the *leftmost* bit of the written form, so
``BitString.from_bits("10")[0] == 1``.  This matches the paper's examples,
where masks are written left-to-right (column mask, purpose mask, action type
mask).
"""

from __future__ import annotations

import enum
from typing import Iterator

from ..errors import MaskError, TypeMismatchError


class SqlType(enum.Enum):
    """Engine column types."""

    INTEGER = "integer"
    DOUBLE = "double precision"
    TEXT = "text"
    BOOLEAN = "boolean"
    TIMESTAMP = "timestamp"
    BIT_VARYING = "bit varying"

    @classmethod
    def from_name(cls, name: str) -> "SqlType":
        """Map a SQL type name (as produced by the parser) to an engine type."""
        normalized = name.strip().upper()
        mapping = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "DOUBLE": cls.DOUBLE,
            "DOUBLE PRECISION": cls.DOUBLE,
            "FLOAT": cls.DOUBLE,
            "REAL": cls.DOUBLE,
            "NUMERIC": cls.DOUBLE,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
            "TIMESTAMP": cls.TIMESTAMP,
            "BIT": cls.BIT_VARYING,
            "BIT VARYING": cls.BIT_VARYING,
        }
        try:
            return mapping[normalized]
        except KeyError:
            raise TypeMismatchError(f"unknown SQL type {name!r}") from None


class BitString:
    """An immutable fixed-length bit string backed by an int.

    Supports the operations the enforcement framework needs: bitwise
    ``& | ^ ~`` between equal-length strings, concatenation with ``+``,
    substring extraction, and parsing/printing of ``'0101'`` literals.
    """

    __slots__ = ("_value", "_length")

    def __init__(self, value: int, length: int):
        if length < 0:
            raise MaskError("bit-string length must be non-negative")
        if value < 0 or value >> length:
            raise MaskError(f"value {value:#x} does not fit in {length} bits")
        self._value = value
        self._length = length

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_bits(cls, bits: str) -> "BitString":
        """Parse a textual bit string such as ``"0101"``."""
        if bits and set(bits) - {"0", "1"}:
            raise MaskError(f"invalid bit string {bits!r}")
        return cls(int(bits, 2) if bits else 0, len(bits))

    @classmethod
    def zeros(cls, length: int) -> "BitString":
        """An all-zero string of the given length (a *pass-none* pattern)."""
        return cls(0, length)

    @classmethod
    def ones(cls, length: int) -> "BitString":
        """An all-one string of the given length (a *pass-all* pattern)."""
        return cls((1 << length) - 1, length)

    @classmethod
    def from_positions(cls, positions: Iterator[int] | list[int], length: int) -> "BitString":
        """Set bit ``i`` (0-based from the left) for every ``i`` in positions."""
        value = 0
        for position in positions:
            if not 0 <= position < length:
                raise MaskError(f"bit position {position} out of range 0..{length - 1}")
            value |= 1 << (length - 1 - position)
        return cls(value, length)

    # -- accessors -------------------------------------------------------------

    @property
    def value(self) -> int:
        """The underlying integer (leftmost bit is most significant)."""
        return self._value

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < self._length:
            raise IndexError(index)
        return (self._value >> (self._length - 1 - index)) & 1

    def bits(self) -> str:
        """The textual form, e.g. ``"0101"``."""
        if self._length == 0:
            return ""
        return format(self._value, f"0{self._length}b")

    def positions(self) -> list[int]:
        """0-based (from the left) indexes of the set bits."""
        return [i for i in range(self._length) if self[i]]

    def substring(self, start: int, length: int) -> "BitString":
        """Extract ``length`` bits starting at 0-based index ``start``."""
        if start < 0 or length < 0 or start + length > self._length:
            raise MaskError(
                f"substring({start}, {length}) out of range for length {self._length}"
            )
        shifted = self._value >> (self._length - start - length)
        return BitString(shifted & ((1 << length) - 1), length)

    # -- operators -------------------------------------------------------------

    def _check_compatible(self, other: object) -> "BitString":
        if not isinstance(other, BitString):
            raise TypeMismatchError(
                f"bitwise operation requires BitString, got {type(other).__name__}"
            )
        if other._length != self._length:
            raise MaskError(
                f"length mismatch: {self._length} vs {other._length} bits"
            )
        return other

    def __and__(self, other: object) -> "BitString":
        other = self._check_compatible(other)
        return BitString(self._value & other._value, self._length)

    def __or__(self, other: object) -> "BitString":
        other = self._check_compatible(other)
        return BitString(self._value | other._value, self._length)

    def __xor__(self, other: object) -> "BitString":
        other = self._check_compatible(other)
        return BitString(self._value ^ other._value, self._length)

    def __invert__(self) -> "BitString":
        return BitString(self._value ^ ((1 << self._length) - 1), self._length)

    def __add__(self, other: object) -> "BitString":
        if not isinstance(other, BitString):
            raise TypeMismatchError(
                f"cannot concatenate BitString with {type(other).__name__}"
            )
        return BitString(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitString):
            return NotImplemented
        return self._length == other._length and self._value == other._value

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __repr__(self) -> str:
        return f"BitString('{self.bits()}')"

    def __str__(self) -> str:
        return self.bits()


def python_type_matches(sql_type: SqlType, value: object) -> bool:
    """Check whether a Python value is storable in a column of ``sql_type``.

    ``None`` (SQL NULL) is storable in any column.
    """
    if value is None:
        return True
    if sql_type is SqlType.INTEGER or sql_type is SqlType.TIMESTAMP:
        return isinstance(value, int) and not isinstance(value, bool)
    if sql_type is SqlType.DOUBLE:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if sql_type is SqlType.TEXT:
        return isinstance(value, str)
    if sql_type is SqlType.BOOLEAN:
        return isinstance(value, bool)
    if sql_type is SqlType.BIT_VARYING:
        return isinstance(value, BitString)
    return False


def coerce_value(sql_type: SqlType, value: object) -> object:
    """Coerce a Python value for storage, raising on impossible conversions."""
    if value is None:
        return None
    if sql_type is SqlType.DOUBLE and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if python_type_matches(sql_type, value):
        return value
    raise TypeMismatchError(
        f"cannot store {type(value).__name__} value {value!r} in a "
        f"{sql_type.value} column"
    )
