"""Query result container."""

from __future__ import annotations

from typing import Iterator

from ..errors import ExecutionError


class ResultSet:
    """An ordered bag of result rows with column names.

    Rows are plain tuples; ``columns`` gives the display names in select-list
    order.  Helper accessors cover the common test/bench patterns.
    """

    def __init__(self, columns: list[str], rows: list[tuple]):
        self.columns = list(columns)
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def first(self) -> tuple | None:
        """The first row, or None when empty."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> object:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() requires a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[object]:
        """All values of the named output column."""
        try:
            index = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def sorted(self) -> "ResultSet":
        """A copy with rows sorted (useful for order-insensitive comparison)."""
        key = lambda row: tuple((v is None, str(type(v)), v) for v in row)
        return ResultSet(self.columns, sorted(self.rows, key=key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"


def combine_set_operation(
    left: "ResultSet", right: "ResultSet", op: str, all_rows: bool
) -> "ResultSet":
    """SQL set-operation semantics over two result sets.

    Column names come from the left operand; arities must match.  NULLs
    compare equal for set-operation purposes (standard SQL), which Python
    tuple equality provides directly.
    """
    if len(left.columns) != len(right.columns):
        raise ExecutionError(
            f"{op} operands have different arities: "
            f"{len(left.columns)} vs {len(right.columns)}"
        )
    if op == "UNION":
        combined = left.rows + right.rows
        rows = combined if all_rows else _dedupe(combined)
    elif op == "INTERSECT":
        if all_rows:
            rows = _multiset_intersect(left.rows, right.rows)
        else:
            right_set = set(right.rows)
            rows = [row for row in _dedupe(left.rows) if row in right_set]
    elif op == "EXCEPT":
        if all_rows:
            rows = _multiset_except(left.rows, right.rows)
        else:
            right_set = set(right.rows)
            rows = [row for row in _dedupe(left.rows) if row not in right_set]
    else:
        raise ExecutionError(f"unknown set operation {op!r}")
    return ResultSet(left.columns, rows)


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen: set = set()
    unique = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return unique


def _multiset_intersect(left: list[tuple], right: list[tuple]) -> list[tuple]:
    from collections import Counter

    budget = Counter(right)
    rows = []
    for row in left:
        if budget[row] > 0:
            budget[row] -= 1
            rows.append(row)
    return rows


def _multiset_except(left: list[tuple], right: list[tuple]) -> list[tuple]:
    from collections import Counter

    budget = Counter(right)
    rows = []
    for row in left:
        if budget[row] > 0:
            budget[row] -= 1
        else:
            rows.append(row)
    return rows
