"""In-memory relational engine.

This package is the substrate standing in for PostgreSQL in the paper's
evaluation: a catalog of heap tables, a SQL executor with hash joins,
grouping/aggregation, subqueries and three-valued logic, a ``BIT VARYING``
value type for policy masks, and a UDF registry with invocation counters
(used to measure the number of ``compliesWith`` calls, Figure 6).
"""

from . import persist
from .batch import (
    BATCH_SIZE_ENV,
    DEFAULT_BATCH_SIZE,
    EXECUTOR_ENV,
    EXECUTOR_MODES,
    ColumnBatch,
    resolve_batch_size,
    resolve_executor_mode,
)
from .catalog import Catalog, CatalogEntry, CatalogOp
from .database import Database, PreparedQuery, bind_parameters
from .functions import FunctionRegistry, MemoizedFunction
from .mvcc import (
    CONFLICT_ENV,
    CONFLICT_MODES,
    TXN_ENV,
    TXN_MODES,
    Snapshot,
    Transaction,
    TransactionManager,
    current_transaction,
    resolve_conflict_mode,
    resolve_txn_mode,
    txn_scope,
)
from .index import (
    INDEX_KINDS,
    INDEX_MODES,
    INDEXES_ENV,
    BTreeIndex,
    HashIndex,
    IndexDefinition,
    IndexManager,
    StatisticsCollector,
    TableStatistics,
    collect_table_statistics,
    resolve_index_mode,
)
from .plan import (
    BASELINE_PASSES,
    FULL_PASSES,
    OPTIMIZER_ENV,
    PolicyBitmapCache,
    resolve_optimizer_mode,
)
from .result import ResultSet
from .schema import Column, TableSchema
from .table import Table
from .types import BitString, SqlType

__all__ = [
    "BATCH_SIZE_ENV",
    "DEFAULT_BATCH_SIZE",
    "EXECUTOR_ENV",
    "EXECUTOR_MODES",
    "ColumnBatch",
    "resolve_batch_size",
    "resolve_executor_mode",
    "Database",
    "PreparedQuery",
    "bind_parameters",
    "persist",
    "FunctionRegistry",
    "MemoizedFunction",
    "INDEX_KINDS",
    "INDEX_MODES",
    "INDEXES_ENV",
    "BTreeIndex",
    "HashIndex",
    "IndexDefinition",
    "IndexManager",
    "StatisticsCollector",
    "TableStatistics",
    "collect_table_statistics",
    "resolve_index_mode",
    "BASELINE_PASSES",
    "FULL_PASSES",
    "OPTIMIZER_ENV",
    "PolicyBitmapCache",
    "resolve_optimizer_mode",
    "ResultSet",
    "Column",
    "TableSchema",
    "Table",
    "BitString",
    "SqlType",
    "TXN_ENV",
    "TXN_MODES",
    "CONFLICT_ENV",
    "CONFLICT_MODES",
    "Catalog",
    "CatalogEntry",
    "CatalogOp",
    "Snapshot",
    "Transaction",
    "TransactionManager",
    "current_transaction",
    "resolve_conflict_mode",
    "resolve_txn_mode",
    "txn_scope",
]
