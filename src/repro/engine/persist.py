"""Database persistence: JSON snapshots.

``dump``/``load`` serialize the whole catalog — schemas, rows, the
``BIT VARYING`` policy masks and secondary-index *definitions* — to a JSON
document or file.  Index entries themselves are not serialized: they are
derived state, rebuilt lazily (version-keyed) on first use after the load.
Registered functions are *not* serialized (code doesn't round-trip through
JSON); reattach UDFs after loading, e.g. by rebuilding the access-control
manager with :meth:`repro.core.admin.AccessControlManager.from_existing`.

Format history: version 1 had no ``indexes`` list; version 2 added it
together with the ``policy`` marker object (the enforcement framework's
policy function/column names, needed to re-validate partitioned index
definitions at load time); version 3 added ``catalog_version`` (the
versioned-catalog counter, DESIGN.md §16) so a reloaded database's catalog
version never moves backwards across a checkpoint.  Older documents still
load (no indexes / catalog version 0).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import EngineError
from .database import Database
from .index import IndexDefinition
from .schema import Column, TableSchema
from .types import BitString, SqlType

FORMAT_VERSION = 3

#: Snapshot versions :func:`from_document` accepts.
SUPPORTED_VERSIONS = (1, 2, 3)

_BITS_KEY = "$bits"


def _encode_value(value: object) -> object:
    if isinstance(value, BitString):
        return {_BITS_KEY: value.bits()}
    return value


def _decode_value(value: object) -> object:
    if isinstance(value, dict) and set(value) == {_BITS_KEY}:
        return BitString.from_bits(value[_BITS_KEY])
    return value


def _encode_column(column: Column) -> dict:
    """Serialize one column definition (shared with the WAL's DDL records)."""
    return {
        "name": column.name,
        "type": column.sql_type.value,
        "primary_key": column.primary_key,
        "not_null": column.not_null,
        "default": _encode_value(column.default),
    }


def _decode_column(entry: dict) -> Column:
    return Column(
        entry["name"],
        SqlType(entry["type"]),
        primary_key=entry.get("primary_key", False),
        not_null=entry.get("not_null", False),
        default=_decode_value(entry.get("default")),
    )


def to_document(database: Database) -> dict:
    """Serialize a database to a JSON-compatible dict."""
    tables = []
    for table in database.tables.values():
        tables.append(
            {
                "name": table.schema.name,
                "columns": [
                    _encode_column(column) for column in table.schema.columns
                ],
                "rows": [
                    [_encode_value(value) for value in row] for row in table.rows
                ],
            }
        )
    return {
        "version": FORMAT_VERSION,
        "name": database.name,
        "catalog_version": database.catalog.version,
        "tables": tables,
        "policy": {
            "function": database.policy_function,
            "column": database.policy_column,
        },
        "indexes": [
            definition.to_dict() for definition in database.indexes.definitions()
        ],
    }


def from_document(document: dict) -> Database:
    """Rebuild a database from :func:`to_document` output."""
    version = document.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise EngineError(f"unsupported snapshot version {version!r}")
    database = Database(document.get("name", "db"))
    for entry in document["tables"]:
        columns = [_decode_column(column) for column in entry["columns"]]
        table = database.create_table(TableSchema(entry["name"], columns))
        table.rows = [
            tuple(_decode_value(value) for value in row) for row in entry["rows"]
        ]
    # Restore the policy markers before the index catalog: creating a
    # partitioned definition re-validates its column against them.  Both
    # keys are absent in version-1 snapshots.
    policy = document.get("policy") or {}
    database.policy_function = policy.get("function")
    database.policy_column = policy.get("column")
    for entry in document.get("indexes", ()):
        database.indexes.create(IndexDefinition.from_dict(entry))
    # Restore the catalog-version floor last: registrations above already
    # advanced the counter from zero, and the stored value (stamped after
    # the same registrations pre-checkpoint) must win ties.
    database.catalog.advance_to(int(document.get("catalog_version", 0)))
    return database


def dumps(database: Database) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_document(database))


def loads(text: str) -> Database:
    """Deserialize from a JSON string."""
    return from_document(json.loads(text))


def dump(database: Database, path: "str | Path") -> None:
    """Write a snapshot file."""
    Path(path).write_text(dumps(database), encoding="utf-8")


def load(path: "str | Path") -> Database:
    """Read a snapshot file."""
    return loads(Path(path).read_text(encoding="utf-8"))
