"""The versioned catalog: commit-stamped metadata entries (DESIGN.md §16).

Until PR 10 the engine's metadata lived in mutable singletons — each
:class:`~repro.engine.table.Table` held *the* schema, the
:class:`~repro.engine.index.IndexManager` held *the* index definitions, and
the access-control manager held *the* purpose taxonomy plus a side-channel
``policy epoch`` counter that doomed every open snapshot whenever the
taxonomy changed.  :class:`Catalog` replaces all of that with one versioned
store: every metadata mutation commits a ``(kind, key) -> value`` entry
stamped with a monotonically increasing **catalog version** (and, when the
MVCC clock is attached, the commit timestamp), so

* a :class:`~repro.engine.mvcc.Snapshot` pins ``(commit ts, catalog
  version)`` and metadata reads resolve *as of* that version — taxonomy
  edits and DDL become ordinary versioned commits visible only to later
  snapshots;
* the old policy epoch collapses into :attr:`Catalog.version` (every
  consumer that keyed on the epoch — plan caches, ``compliesWith`` memos,
  shard broadcasts — now keys on the catalog version, which advances on
  policy churn *and* DDL);
* transactional DDL validates **first-committer-wins on the catalog
  entry**: two transactions staging a change to the same ``(kind, key)``
  conflict, independent writers to different entries commit freely.

Entry kinds used by the engine:

``"schema"``
    key = table name, value = :class:`~repro.engine.schema.TableSchema`
    (committed by ALTER TABLE).
``"table"``
    key = table name, value = the schema on CREATE, ``None`` on DROP.
``"index"``
    key = index name, value = the
    :class:`~repro.engine.index.IndexDefinition` on CREATE, ``None`` on
    DROP.
``"acm"``
    key = ``"state"``, value = the access-control manager's immutable
    taxonomy snapshot (purposes + categorization) committed on every
    policy write.

The catalog is deliberately independent of the MVCC machinery so the
``REPRO_TXN=off`` engine keeps working: versions advance without a clock
(``ts=0``) and nothing here requires a transaction manager.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable


class CatalogEntry:
    """One committed value of one ``(kind, key)`` catalog slot."""

    __slots__ = ("version", "ts", "value")

    def __init__(self, version: int, ts: int, value: object):
        self.version = version
        self.ts = ts
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CatalogEntry(version={self.version}, ts={self.ts})"


@dataclass
class CatalogOp:
    """A staged catalog mutation carried by a transaction (or autocommit DDL).

    ``wal`` is the WAL-serializable op descriptor (the durability layer
    encodes embedded :class:`Column`/:class:`IndexDefinition` objects);
    ``apply`` performs the in-memory side effect at commit time (set the
    table's schema, register the index, ...), receiving the commit
    timestamp; ``validate`` runs during commit validation, *before* the
    WAL append, and may raise to abort the commit cleanly.
    """

    kind: str
    key: str
    value: object
    wal: dict | None = None
    apply: Callable[[int], None] | None = None
    validate: Callable[[], None] | None = None
    #: Human-readable description for conflict errors ("CREATE INDEX i_x").
    describe: str = field(default="")


class Catalog:
    """Versioned ``(kind, key) -> value`` store under one monotonic version.

    Histories are kept per slot so reads can resolve *as of* any still
    pinned catalog version; :meth:`prune` trims history below the oldest
    pinned version (the metadata counterpart of tuple-version pruning).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._version = 0
        self._entries: dict[tuple[str, str], list[CatalogEntry]] = {}
        self.commits = 0

    @property
    def version(self) -> int:
        """The current catalog version (the old "policy epoch", grown up)."""
        return self._version

    # -- committing -------------------------------------------------------

    def commit(
        self, ops: Iterable[tuple[str, str, object]], ts: int = 0
    ) -> int:
        """Commit entries at one new catalog version; returns that version.

        ``ops`` is an iterable of ``(kind, key, value)``; all entries of
        one call share the new version (one DDL statement = one version).
        """
        with self._lock:
            self._version += 1
            for kind, key, value in ops:
                history = self._entries.setdefault((kind, key.lower()), [])
                history.append(CatalogEntry(self._version, ts, value))
            self.commits += 1
            return self._version

    def advance_to(self, version: int) -> None:
        """Fast-forward the version counter (checkpoint reload / recovery)."""
        with self._lock:
            if version > self._version:
                self._version = version

    # -- reading ----------------------------------------------------------

    def last_commit_version(self, kind: str, key: str) -> int:
        """The version of the newest commit to ``(kind, key)`` (0 if none).

        This is what transactional DDL validates first-committer-wins
        against: a commit after the transaction's pinned catalog version
        means a concurrent writer got there first.
        """
        with self._lock:
            history = self._entries.get((kind, key.lower()))
            return history[-1].version if history else 0

    def value_at(
        self, kind: str, key: str, version: int | None = None
    ) -> object:
        """The newest value committed at or before ``version`` (or latest).

        Returns ``None`` when the slot has no entry at or before the
        version — callers fall back to their live (pre-catalog) state.
        """
        with self._lock:
            history = self._entries.get((kind, key.lower()))
            if not history:
                return None
            if version is None:
                return history[-1].value
            for entry in reversed(history):
                if entry.version <= version:
                    return entry.value
            return None

    def has_entry(self, kind: str, key: str) -> bool:
        with self._lock:
            return bool(self._entries.get((kind, key.lower())))

    def keys(self, kind: str) -> list[str]:
        """Every key with history under ``kind`` (dropped entries included).

        Snapshot-pinned readers use this to resurrect metadata that was
        dropped from the live state after their snapshot began (e.g. an
        index definition a pinned plan still probes).
        """
        with self._lock:
            return [key for (k, key) in self._entries if k == kind]

    # -- pruning ----------------------------------------------------------

    def prune(self, horizon_version: int) -> None:
        """Drop history invisible to every snapshot at/after the horizon.

        For each slot, the newest entry at or before the horizon stays (it
        is what a snapshot pinned exactly at the horizon resolves to); all
        older entries go.  Called alongside tuple-version pruning.
        """
        with self._lock:
            for slot, history in self._entries.items():
                if len(history) <= 1:
                    continue
                cut = 0
                for index, entry in enumerate(history):
                    if entry.version <= horizon_version:
                        cut = index
                if cut > 0:
                    self._entries[slot] = history[cut:]

    # -- observability -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "version": self._version,
                "commits": self.commits,
                "slots": len(self._entries),
                "entries": sum(len(h) for h in self._entries.values()),
            }
