"""Expression compilation: AST → Python closures.

Expressions are compiled once per statement execution into closures of shape
``fn(row, env) -> value`` where ``row`` is the current joined-row tuple and
``env`` carries aggregate results and outer rows (for correlated
subqueries).  SQL three-valued logic is implemented with ``None`` as the
UNKNOWN/NULL marker; ``AND``/``OR`` use Kleene semantics with left-to-right
short-circuit evaluation, which is what makes the paper's rewritten queries
cheap: the original filter predicate is evaluated before the appended
``compliesWith`` conjuncts, so filtered-out tuples never pay a policy check
(Section 6.3's analysis of Figure 6 depends on this behaviour).
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Callable, Protocol

from ..errors import ExecutionError, ExpressionError, TypeMismatchError
from ..sql import ast
from .schema import RowShape
from .types import BitString, SqlType


class Env:
    """Per-evaluation environment: aggregate slots, outer rows, parameters.

    ``params`` maps parameter keys (1-based ints for positional/numbered
    placeholders, lower-cased strings for named ones) to bound values; it is
    threaded unchanged into subquery environments so one prepared plan can be
    executed under many bindings.

    ``subq`` is the per-execution cache of uncorrelated-subquery results,
    keyed by plan identity.  It lives on the environment — not on the plan —
    so a single prepared plan can run on many threads at once without the
    executions seeing (or clobbering) each other's cached results.

    ``trace`` is the execution's :class:`~repro.obs.tracing.Trace` (or
    ``None``, the default and the fast path): when present, plan nodes
    report per-node row counts into it for EXPLAIN ANALYZE.  Like ``params``
    it is owned by one execution on one thread, so threading it into
    subquery environments shares no state across executions.
    """

    __slots__ = ("agg", "outer_row", "outer_env", "params", "subq", "trace")

    def __init__(
        self,
        agg: tuple | None = None,
        outer_row: tuple | None = None,
        outer_env: "Env | None" = None,
        params: "dict[int | str, object] | None" = None,
        subq: "dict[int, list[tuple]] | None" = None,
        trace=None,
    ):
        self.agg = agg
        self.outer_row = outer_row
        self.outer_env = outer_env
        self.params = params
        self.subq = subq
        self.trace = trace


EMPTY_ENV = Env()

CompiledExpr = Callable[[tuple, Env], object]


class SubqueryPlanner(Protocol):
    """What the compiler needs from the executor to plan nested SELECTs."""

    def prepare_subquery(self, select: ast.Select, scope: "Scope") -> "PreparedSubquery":
        """Prepare a nested SELECT for evaluation inside an expression."""


class PreparedSubquery(Protocol):
    """A planned nested SELECT."""

    correlated: bool

    def rows(self, env: Env) -> list[tuple]:
        """Execute and return the result rows (cached when uncorrelated)."""


class Scope:
    """A lexical scope: the row shape of a query block plus its parent.

    ``depth`` 0 is the innermost block.  Column resolution walks outward,
    which is how correlated subqueries see their enclosing query's columns.
    """

    def __init__(self, shape: RowShape, parent: "Scope | None" = None):
        self.shape = shape
        self.parent = parent

    def resolve(self, name: str, table: str | None) -> tuple[int, int]:
        """Return ``(depth, index)`` for a column reference.

        Depth 0 means the current block's row; depth *k* means the row of the
        *k*-th enclosing block (reached through ``env.outer_*``).  An
        *ambiguous* reference in an inner block must not silently bind to an
        enclosing block, so only unknown-column failures walk outward.
        """
        from ..errors import AmbiguousColumnError, CatalogError

        scope: Scope | None = self
        depth = 0
        while scope is not None:
            try:
                binding = scope.shape.resolve(name, table)
            except AmbiguousColumnError:
                raise
            except CatalogError:
                scope = scope.parent
                depth += 1
                continue
            return depth, binding.index
        qualified = f"{table}.{name}" if table else name
        raise ExpressionError(f"unknown column {qualified!r}")


class ExpressionCompiler:
    """Compiles AST expressions against a scope.

    Args:
        scope: Lexical scope used to resolve column references.
        registry: Scalar-function registry (for :class:`ast.FunctionCall`).
        planner: Executor callback used to plan nested SELECTs.
        aggregate_slots: When compiling post-grouping expressions (select
            list, HAVING, ORDER BY of an aggregate query), maps the printed
            form of each aggregate call to its slot in ``env.agg``.
    """

    def __init__(
        self,
        scope: Scope,
        registry,
        planner: SubqueryPlanner | None = None,
        aggregate_slots: dict[str, int] | None = None,
    ):
        self.scope = scope
        self.registry = registry
        self.planner = planner
        self.aggregate_slots = aggregate_slots

    # -- entry point -------------------------------------------------------------

    def compile(self, expr: ast.Expression) -> CompiledExpr:
        """Compile ``expr`` to a closure ``fn(row, env)``."""
        method = getattr(self, f"_compile_{type(expr).__name__}", None)
        if method is None:
            raise ExpressionError(f"cannot compile {type(expr).__name__}")
        return method(expr)

    # -- leaves ----------------------------------------------------------------

    def _compile_Literal(self, expr: ast.Literal) -> CompiledExpr:
        value = expr.value
        return lambda row, env: value

    def _compile_BitStringLiteral(self, expr: ast.BitStringLiteral) -> CompiledExpr:
        value = BitString.from_bits(expr.bits)
        return lambda row, env: value

    def _compile_ColumnRef(self, expr: ast.ColumnRef) -> CompiledExpr:
        depth, index = self.scope.resolve(expr.name, expr.table)
        if depth == 0:
            return lambda row, env: row[index]

        def outer_ref(row: tuple, env: Env) -> object:
            current = env
            for _ in range(depth - 1):
                if current.outer_env is None:
                    raise ExecutionError("correlated reference without outer row")
                current = current.outer_env
            if current.outer_row is None:
                raise ExecutionError("correlated reference without outer row")
            return current.outer_row[index]

        return outer_ref

    def _compile_Parameter(self, expr: ast.Parameter) -> CompiledExpr:
        key = expr.key
        placeholder = expr.placeholder

        def parameter(row: tuple, env: Env) -> object:
            params = env.params
            if params is None:
                raise ExecutionError(
                    f"no parameters bound (placeholder {placeholder})"
                )
            try:
                return params[key]
            except KeyError:
                raise ExecutionError(
                    f"no value bound for parameter {placeholder}"
                ) from None

        return parameter

    def _compile_Star(self, expr: ast.Star) -> CompiledExpr:
        raise ExpressionError("'*' is only valid in a select list or count(*)")

    # -- operators ----------------------------------------------------------------

    def _compile_UnaryOp(self, expr: ast.UnaryOp) -> CompiledExpr:
        operand = self.compile(expr.operand)
        if expr.op == "NOT":
            def negate(row: tuple, env: Env) -> object:
                value = operand(row, env)
                if value is None:
                    return None
                return not _as_bool(value)
            return negate
        if expr.op == "-":
            def minus(row: tuple, env: Env) -> object:
                value = operand(row, env)
                if value is None:
                    return None
                return -_number(value)
            return minus
        if expr.op == "+":
            return operand
        raise ExpressionError(f"unknown unary operator {expr.op!r}")

    def _compile_BinaryOp(self, expr: ast.BinaryOp) -> CompiledExpr:
        if expr.op == "AND":
            return self._compile_and(expr)
        if expr.op == "OR":
            return self._compile_or(expr)
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if expr.op in _COMPARATORS:
            compare = _COMPARATORS[expr.op]

            def comparison(row: tuple, env: Env) -> object:
                lhs = left(row, env)
                if lhs is None:
                    return None
                rhs = right(row, env)
                if rhs is None:
                    return None
                return compare(_comparable(lhs), _comparable(rhs))

            return comparison
        if expr.op in _ARITHMETIC:
            operate = _ARITHMETIC[expr.op]

            def arithmetic(row: tuple, env: Env) -> object:
                lhs = left(row, env)
                if lhs is None:
                    return None
                rhs = right(row, env)
                if rhs is None:
                    return None
                return operate(lhs, rhs)

            return arithmetic
        if expr.op == "||":
            def concat(row: tuple, env: Env) -> object:
                lhs = left(row, env)
                rhs = right(row, env)
                if lhs is None or rhs is None:
                    return None
                if isinstance(lhs, BitString) and isinstance(rhs, BitString):
                    return lhs + rhs
                return _text(lhs) + _text(rhs)
            return concat
        raise ExpressionError(f"unknown binary operator {expr.op!r}")

    def _compile_and(self, expr: ast.BinaryOp) -> CompiledExpr:
        left = self.compile(expr.left)
        right = self.compile(expr.right)

        def kleene_and(row: tuple, env: Env) -> object:
            lhs = left(row, env)
            if lhs is not None and not _as_bool(lhs):
                return False
            rhs = right(row, env)
            if rhs is not None and not _as_bool(rhs):
                return False
            if lhs is None or rhs is None:
                return None
            return True

        return kleene_and

    def _compile_or(self, expr: ast.BinaryOp) -> CompiledExpr:
        left = self.compile(expr.left)
        right = self.compile(expr.right)

        def kleene_or(row: tuple, env: Env) -> object:
            lhs = left(row, env)
            if lhs is not None and _as_bool(lhs):
                return True
            rhs = right(row, env)
            if rhs is not None and _as_bool(rhs):
                return True
            if lhs is None or rhs is None:
                return None
            return False

        return kleene_or

    # -- predicates ------------------------------------------------------------------

    def _compile_Like(self, expr: ast.Like) -> CompiledExpr:
        operand = self.compile(expr.operand)
        pattern = self.compile(expr.pattern)
        negated = expr.negated

        def like(row: tuple, env: Env) -> object:
            value = operand(row, env)
            if value is None:
                return None
            pattern_value = pattern(row, env)
            if pattern_value is None:
                return None
            matched = bool(
                _like_regex(_text(pattern_value)).match(_text(value))
            )
            return (not matched) if negated else matched

        return like

    def _compile_Between(self, expr: ast.Between) -> CompiledExpr:
        operand = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        negated = expr.negated

        def between(row: tuple, env: Env) -> object:
            value = operand(row, env)
            low_value = low(row, env)
            high_value = high(row, env)
            if value is None or low_value is None or high_value is None:
                return None
            result = (
                _comparable(low_value) <= _comparable(value) <= _comparable(high_value)
            )
            return (not result) if negated else result

        return between

    def _compile_IsNull(self, expr: ast.IsNull) -> CompiledExpr:
        operand = self.compile(expr.operand)
        negated = expr.negated

        def is_null(row: tuple, env: Env) -> bool:
            value = operand(row, env)
            return (value is not None) if negated else (value is None)

        return is_null

    def _compile_InList(self, expr: ast.InList) -> CompiledExpr:
        operand = self.compile(expr.operand)
        items = [self.compile(item) for item in expr.items]
        negated = expr.negated

        def in_list(row: tuple, env: Env) -> object:
            value = operand(row, env)
            if value is None:
                return None
            saw_null = False
            matched = False
            for item in items:
                candidate = item(row, env)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    matched = True
                    break
            if matched:
                return not negated
            if saw_null:
                return None
            return negated

        return in_list

    def _compile_InSubquery(self, expr: ast.InSubquery) -> CompiledExpr:
        operand = self.compile(expr.operand)
        prepared = self._plan_subquery(expr.subquery)
        negated = expr.negated

        def in_subquery(row: tuple, env: Env) -> object:
            value = operand(row, env)
            if value is None:
                return None
            inner_env = Env(
                outer_row=row,
                outer_env=env,
                params=env.params,
                subq=env.subq,
                trace=env.trace,
            )
            saw_null = False
            matched = False
            for result_row in prepared.rows(inner_env):
                candidate = result_row[0]
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    matched = True
                    break
            if matched:
                return not negated
            if saw_null:
                return None
            return negated

        return in_subquery

    def _compile_Exists(self, expr: ast.Exists) -> CompiledExpr:
        prepared = self._plan_subquery(expr.subquery)
        negated = expr.negated

        def exists(row: tuple, env: Env) -> bool:
            inner_env = Env(
                outer_row=row,
                outer_env=env,
                params=env.params,
                subq=env.subq,
                trace=env.trace,
            )
            found = bool(prepared.rows(inner_env))
            return (not found) if negated else found

        return exists

    def _compile_ScalarSubquery(self, expr: ast.ScalarSubquery) -> CompiledExpr:
        prepared = self._plan_subquery(expr.subquery)

        def scalar(row: tuple, env: Env) -> object:
            inner_env = Env(
                outer_row=row,
                outer_env=env,
                params=env.params,
                subq=env.subq,
                trace=env.trace,
            )
            result = prepared.rows(inner_env)
            if not result:
                return None
            if len(result) > 1:
                raise ExecutionError("scalar subquery returned more than one row")
            return result[0][0]

        return scalar

    def _plan_subquery(self, select: ast.Select) -> PreparedSubquery:
        if self.planner is None:
            raise ExpressionError("subqueries are not allowed in this context")
        return self.planner.prepare_subquery(select, self.scope)

    # -- calls ------------------------------------------------------------------------

    def _compile_FunctionCall(self, expr: ast.FunctionCall) -> CompiledExpr:
        from .aggregates import is_aggregate_name

        if is_aggregate_name(expr.name):
            return self._compile_aggregate_ref(expr)
        registry = self.registry
        name = expr.name
        args = [self.compile(arg) for arg in expr.args]

        def call(row: tuple, env: Env) -> object:
            return registry.call(name, tuple(arg(row, env) for arg in args))

        return call

    def _compile_aggregate_ref(self, expr: ast.FunctionCall) -> CompiledExpr:
        if self.aggregate_slots is None:
            raise ExpressionError(
                f"aggregate {expr.name}() is not allowed in this clause"
            )
        key = aggregate_key(expr)
        try:
            slot = self.aggregate_slots[key]
        except KeyError:
            raise ExpressionError(
                f"aggregate {key} was not collected for this query"
            ) from None
        return lambda row, env: env.agg[slot]

    def _compile_Cast(self, expr: ast.Cast) -> CompiledExpr:
        operand = self.compile(expr.operand)
        target = SqlType.from_name(expr.type_name)

        def cast(row: tuple, env: Env) -> object:
            return _cast_value(operand(row, env), target)

        return cast

    def _compile_CaseWhen(self, expr: ast.CaseWhen) -> CompiledExpr:
        whens = [
            (self.compile(condition), self.compile(result))
            for condition, result in expr.whens
        ]
        else_result = (
            self.compile(expr.else_result) if expr.else_result is not None else None
        )
        if expr.operand is None:
            def searched_case(row: tuple, env: Env) -> object:
                for condition, result in whens:
                    value = condition(row, env)
                    if value is not None and _as_bool(value):
                        return result(row, env)
                if else_result is not None:
                    return else_result(row, env)
                return None
            return searched_case

        operand = self.compile(expr.operand)

        def simple_case(row: tuple, env: Env) -> object:
            subject = operand(row, env)
            for condition, result in whens:
                if condition(row, env) == subject:
                    return result(row, env)
            if else_result is not None:
                return else_result(row, env)
            return None

        return simple_case


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def aggregate_key(call: ast.FunctionCall) -> str:
    """Canonical text key used to deduplicate aggregate calls within a query."""
    from ..sql.printer import print_expression

    return print_expression(call)


def _as_bool(value: object) -> bool:
    if isinstance(value, bool):
        return value
    raise TypeMismatchError(f"expected a boolean, got {value!r}")


def _number(value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeMismatchError(f"expected a number, got {value!r}")
    return value


def _text(value: object) -> str:
    if not isinstance(value, str):
        raise TypeMismatchError(f"expected text, got {value!r}")
    return value


def _comparable(value: object) -> object:
    """Validate that a value participates in ordering comparisons."""
    if isinstance(value, (int, float, str, bool, BitString)):
        return value
    raise TypeMismatchError(f"value {value!r} is not comparable")


def _compare_guard(left: object, right: object) -> None:
    left_numeric = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_numeric = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_numeric != right_numeric or (
        not left_numeric and type(left) is not type(right)
    ):
        raise TypeMismatchError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )


def _cmp(op: Callable[[object, object], bool]) -> Callable[[object, object], bool]:
    def compare(left: object, right: object) -> bool:
        _compare_guard(left, right)
        return op(left, right)

    return compare


_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "=": _cmp(lambda a, b: a == b),
    "<>": _cmp(lambda a, b: a != b),
    "<": _cmp(lambda a, b: a < b),
    "<=": _cmp(lambda a, b: a <= b),
    ">": _cmp(lambda a, b: a > b),
    ">=": _cmp(lambda a, b: a >= b),
}


def _int_div(a: float, b: float) -> float | int:
    if b == 0:
        raise ExecutionError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        # SQL integer division truncates toward zero.
        quotient = abs(a) // abs(b)
        return quotient if (a >= 0) == (b >= 0) else -quotient
    return a / b


def _mod(a: float, b: float) -> float | int:
    if b == 0:
        raise ExecutionError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        remainder = abs(a) % abs(b)
        return remainder if a >= 0 else -remainder
    return a % b


def _arith(op: Callable[[float, float], object]) -> Callable[[object, object], object]:
    def operate(left: object, right: object) -> object:
        return op(_number(left), _number(right))

    return operate


_ARITHMETIC: dict[str, Callable[[object, object], object]] = {
    "+": _arith(lambda a, b: a + b),
    "-": _arith(lambda a, b: a - b),
    "*": _arith(lambda a, b: a * b),
    "/": _arith(_int_div),
    "%": _arith(_mod),
}


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern to an anchored regex."""
    parts: list[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts) + r"\Z", re.DOTALL)


def _cast_value(value: object, target: SqlType) -> object:
    if value is None:
        return None
    try:
        if target is SqlType.INTEGER or target is SqlType.TIMESTAMP:
            if isinstance(value, str):
                return int(value.strip())
            if isinstance(value, bool):
                return int(value)
            return int(value)
        if target is SqlType.DOUBLE:
            if isinstance(value, str):
                return float(value.strip())
            return float(value)
        if target is SqlType.TEXT:
            if isinstance(value, BitString):
                return value.bits()
            if isinstance(value, bool):
                return "true" if value else "false"
            return str(value)
        if target is SqlType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("t", "true", "1", "yes"):
                    return True
                if lowered in ("f", "false", "0", "no"):
                    return False
            raise ValueError(value)
        if target is SqlType.BIT_VARYING:
            if isinstance(value, BitString):
                return value
            if isinstance(value, str):
                return BitString.from_bits(value)
            raise ValueError(value)
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(
            f"cannot cast {value!r} to {target.value}"
        ) from exc
    raise TypeMismatchError(f"unsupported cast target {target.value}")
