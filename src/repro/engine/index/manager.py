"""Index lifecycles, lazy maintenance and policy-partitioned layouts.

:class:`IndexManager` owns every secondary index of one database.  An
index *definition* (name, table, key columns, structure kind, optional
policy partitioning) is durable catalog state — it survives DML, is
persisted by :mod:`repro.engine.persist` and round-trips through ``CREATE
INDEX`` / ``DROP INDEX``.  The built *entry* (the B+-tree / hash structure
plus the partition layout) is a cache keyed on ``Table.version``:

* DML maintenance is transparent — every write path bumps the version, so
  the next lookup rebuilds the entry from current rows (the PolicyBitmap-
  Cache protocol, extended to indexes);
* a dropped-and-recreated index or table never serves stale row ids.

**Policy-partitioned indexes** additionally group the table's row ids by
the exact value of the policy-mask column.  Because a hoisted
``complieswith`` guard passes or fails *per distinct policy value* — never
per row — a partition either qualifies wholesale or can be skipped without
touching any of its rows.  The executor asks :meth:`IndexManager
.partition_rows` with the bitmap cache's passing-row set; the manager
checks one representative row id per partition, counts the skipped
partitions, and returns the qualifying row ids merged back into ascending
storage order so emission matches a sequential scan exactly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from heapq import merge
from typing import TYPE_CHECKING

from ...errors import CatalogError, ExecutionError
from ..mvcc import current_transaction
from .btree import BTreeIndex
from .hash import HashIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..database import Database
    from ..table import Table

#: The supported index structure kinds.
INDEX_KINDS = ("btree", "hash")


@dataclass(frozen=True)
class IndexDefinition:
    """Catalog state of one secondary index (all identifiers lower-cased)."""

    name: str
    table: str
    columns: tuple[str, ...]
    kind: str = "btree"
    #: The policy column when the index is policy-partitioned, else ``None``.
    partitioned_by: str | None = None

    @property
    def partitioned(self) -> bool:
        return self.partitioned_by is not None

    def to_dict(self) -> dict:
        """JSON-ready form (what snapshots persist)."""
        return {
            "name": self.name,
            "table": self.table,
            "columns": list(self.columns),
            "kind": self.kind,
            "partitioned_by": self.partitioned_by,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IndexDefinition":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload["name"]),
            table=str(payload["table"]),
            columns=tuple(str(c) for c in payload["columns"]),
            kind=str(payload.get("kind") or "btree"),
            partitioned_by=payload.get("partitioned_by"),
        )


class _IndexEntry:
    """A built index structure plus (optionally) its policy partitions."""

    __slots__ = ("structure", "partitions")

    def __init__(self, structure, partitions: dict | None):
        self.structure = structure
        self.partitions = partitions


class IndexManager:
    """Per-database index catalog, build cache and lookup counters."""

    def __init__(self, database: "Database"):
        self._database = database
        self._lock = threading.RLock()
        self._definitions: dict[str, IndexDefinition] = {}
        self._entries: dict[
            str, tuple[object, IndexDefinition, _IndexEntry]
        ] = {}
        # Monotonic counters, reported like the bitmap cache's stats() so
        # the monitor and metrics layer can take per-execution deltas.
        self._hits = 0
        self._rebuilds = 0
        self._partition_hits = 0
        self._partition_skips = 0

    # -- catalog ---------------------------------------------------------------

    def create(self, definition: IndexDefinition) -> IndexDefinition:
        """Validate and register ``definition`` (build happens lazily)."""
        return self.register(self.normalize(definition))

    def normalize(self, definition: IndexDefinition) -> IndexDefinition:
        """Lower-case and validate ``definition`` without registering it.

        Transactional CREATE INDEX validates at statement time with this,
        then registers via :meth:`register` only when the transaction
        commits (first-committer-wins on the catalog entry).
        """
        normalized = IndexDefinition(
            name=definition.name.lower(),
            table=definition.table.lower(),
            columns=tuple(c.lower() for c in definition.columns),
            kind=definition.kind.lower(),
            partitioned_by=(
                definition.partitioned_by.lower()
                if definition.partitioned_by is not None
                else None
            ),
        )
        if normalized.kind not in INDEX_KINDS:
            raise CatalogError(
                f"unknown index kind {normalized.kind!r} "
                f"(expected one of {INDEX_KINDS})"
            )
        if not normalized.columns:
            raise CatalogError(f"index {normalized.name!r} has no key columns")
        table = self._database.table(normalized.table)
        for column in normalized.columns:
            table.schema.column_index(column)  # raises on unknown columns
        if normalized.partitioned_by is not None:
            policy_column = getattr(self._database, "policy_column", None)
            if normalized.partitioned_by != (policy_column or "").lower():
                raise CatalogError(
                    f"index {normalized.name!r}: partitioning column "
                    f"{normalized.partitioned_by!r} is not the policy column"
                )
            table.schema.column_index(normalized.partitioned_by)
        return normalized

    def register(self, normalized: IndexDefinition) -> IndexDefinition:
        """Register an already-normalized definition (duplicate names raise)."""
        with self._lock:
            if normalized.name in self._definitions:
                raise CatalogError(f"index {normalized.name!r} already exists")
            self._definitions[normalized.name] = normalized
        return normalized

    def drop(self, name: str) -> IndexDefinition:
        """Drop one index; unknown names raise :class:`CatalogError`."""
        key = name.lower()
        with self._lock:
            if key not in self._definitions:
                raise CatalogError(f"unknown index {name!r}")
            self._entries.pop(key, None)
            return self._definitions.pop(key)

    def drop_for_table(self, table_name: str) -> list[IndexDefinition]:
        """Drop every index of one table (DROP TABLE cleanup)."""
        key = table_name.lower()
        with self._lock:
            doomed = [d for d in self._definitions.values() if d.table == key]
            for definition in doomed:
                self._definitions.pop(definition.name, None)
                self._entries.pop(definition.name, None)
        return doomed

    def get(self, name: str) -> IndexDefinition:
        """The definition named ``name``; unknown names raise.

        Resolved *as of* the ambient transaction's pinned catalog version:
        an index created after a snapshot began is invisible to it, and one
        dropped after it began is resurrected from catalog history — pinned
        plans keep their access path no matter what DDL commits around
        them.
        """
        definition = self._resolve(name, self._ambient_version())
        if definition is None:
            raise CatalogError(f"unknown index {name!r}")
        return definition

    def find(self, name: str) -> IndexDefinition | None:
        return self._resolve(name, self._ambient_version())

    def definitions(self) -> list[IndexDefinition]:
        """Every definition visible at the ambient version, sorted by name."""
        version = self._ambient_version()
        with self._lock:
            names = set(self._definitions)
        if version is not None:
            catalog = getattr(self._database, "catalog", None)
            if catalog is not None:
                names.update(catalog.keys("index"))
        resolved = (self._resolve(name, version) for name in sorted(names))
        return [definition for definition in resolved if definition is not None]

    def _ambient_version(self) -> "int | None":
        """The pinned catalog version, or ``None`` outside a transaction."""
        transactions = getattr(self._database, "transactions", None)
        if transactions is None:
            return None
        txn = current_transaction(transactions)
        if txn is None:
            return None
        return txn.snapshot.catalog_version

    def _resolve(
        self, name: str, version: "int | None"
    ) -> IndexDefinition | None:
        """``name``'s definition as of ``version`` (``None`` = latest live).

        Slots with no catalog history (definitions seeded before the first
        catalog commit, e.g. checkpoint reloads) fall back to the live
        state, matching :meth:`Catalog.value_at` semantics.
        """
        key = name.lower()
        with self._lock:
            live = self._definitions.get(key)
        if version is None:
            return live
        catalog = getattr(self._database, "catalog", None)
        if catalog is None or not catalog.has_entry("index", key):
            return live
        value = catalog.value_at("index", key, version)
        return value if isinstance(value, IndexDefinition) else None

    def for_table(self, table_name: str) -> list[IndexDefinition]:
        """Every definition on one table, sorted by name."""
        key = table_name.lower()
        return [d for d in self.definitions() if d.table == key]

    def partitioned_for(self, table_name: str) -> IndexDefinition | None:
        """The first policy-partitioned index on ``table_name``, if any."""
        for definition in self.for_table(table_name):
            if definition.partitioned:
                return definition
        return None

    # -- build cache -----------------------------------------------------------

    def _entry(self, definition: IndexDefinition) -> _IndexEntry:
        table = self._database.table(definition.table)
        with self._lock:
            cached = self._entries.get(definition.name)
            if (
                cached is not None
                and cached[0] == table.version
                and cached[1] == definition
            ):
                return cached[2]
            entry = self._build(definition, table)
            self._entries[definition.name] = (table.version, definition, entry)
            self._rebuilds += 1
            return entry

    def _build(self, definition: IndexDefinition, table: "Table") -> _IndexEntry:
        schema = table.schema
        positions = [schema.column_index(c) for c in definition.columns]
        structure = BTreeIndex() if definition.kind == "btree" else HashIndex()
        partitions: dict | None = None
        partition_position = None
        if definition.partitioned_by is not None:
            partitions = {}
            partition_position = schema.column_index(definition.partitioned_by)
        for row_id, row in enumerate(table.rows):
            key_values = [row[p] for p in positions]
            if all(value is not None for value in key_values):
                key = key_values[0] if len(key_values) == 1 else tuple(key_values)
                structure.insert(key, row_id)
            if partitions is not None:
                partitions.setdefault(row[partition_position], []).append(row_id)
        return _IndexEntry(structure, partitions)

    # -- lookups ---------------------------------------------------------------

    def lookup_equal(self, name: str, key) -> list[int]:
        """Row ids (ascending) matching ``key`` on index ``name``."""
        entry = self._entry(self.get(name))
        with self._lock:
            self._hits += 1
        return entry.structure.search(key)

    def lookup_range(
        self,
        name: str,
        lower=None,
        upper=None,
        lower_inclusive: bool = True,
        upper_inclusive: bool = True,
    ) -> list[int]:
        """Row ids (ascending) inside the bound pair on B-tree index ``name``."""
        definition = self.get(name)
        if definition.kind != "btree":
            raise ExecutionError(
                f"index {definition.name!r} ({definition.kind}) does not "
                f"support range lookups"
            )
        entry = self._entry(definition)
        with self._lock:
            self._hits += 1
        return entry.structure.range(
            lower, upper, lower_inclusive, upper_inclusive
        )

    def partition_rows(self, name: str, passing) -> list[int]:
        """Row ids of every partition whose policy value passes the guards.

        ``passing`` is the bitmap cache's (already guard-intersected) set of
        passing row ids.  A ``complieswith`` verdict is uniform across a
        partition — all of its rows share one policy value — so membership
        of one representative row id decides the whole run.  Qualifying
        partitions are merged back into ascending storage order; skipped
        ones (NULL-policy partitions included) are counted without touching
        their rows.
        """
        definition = self.get(name)
        if not definition.partitioned:
            raise ExecutionError(f"index {definition.name!r} is not partitioned")
        entry = self._entry(definition)
        qualifying = []
        skipped = 0
        for rows in entry.partitions.values():
            if rows and rows[0] in passing:
                qualifying.append(rows)
            else:
                skipped += 1
        with self._lock:
            self._hits += 1
            self._partition_hits += len(qualifying)
            self._partition_skips += skipped
        if len(qualifying) == 1:
            return list(qualifying[0])
        return list(merge(*qualifying))

    def partition_count(self, name: str) -> int:
        """Number of distinct policy values in a partitioned index."""
        definition = self.get(name)
        if not definition.partitioned:
            return 0
        return len(self._entry(definition).partitions)

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        """Monotonic lookup/rebuild/partition counters plus catalog sizes."""
        with self._lock:
            return {
                "definitions": len(self._definitions),
                "built": len(self._entries),
                "hits": self._hits,
                "rebuilds": self._rebuilds,
                "partition_hits": self._partition_hits,
                "partition_skips": self._partition_skips,
            }

    def describe(self) -> list[dict]:
        """Catalog listing for the server's stats endpoint."""
        out = []
        for definition in self.definitions():
            with self._lock:
                built = self._entries.get(definition.name)
            info = definition.to_dict()
            info["built"] = built is not None
            if built is not None:
                info["version"] = built[0]
                info["distinct_keys"] = len(built[2].structure)
                if built[2].partitions is not None:
                    info["partitions"] = len(built[2].partitions)
            out.append(info)
        return out

    def clear_entries(self) -> None:
        """Drop every built structure (definitions survive)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._definitions)
