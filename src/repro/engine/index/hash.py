"""An equality-only hash index.

One dict from key to its ascending row-id posting list.  Like the B+-tree
this structure is insert-only: staleness after DML is handled by the
manager's version-keyed lazy rebuild, not by in-place maintenance.
"""

from __future__ import annotations

from typing import Iterator


class HashIndex:
    """Key → ascending row-id posting list, equality lookups only."""

    def __init__(self) -> None:
        self._buckets: dict = {}
        self._entries = 0

    def insert(self, key, row_id: int) -> None:
        """Add one ``(key, row id)`` pair (row ids arrive in row order)."""
        self._buckets.setdefault(key, []).append(row_id)
        self._entries += 1

    def search(self, key) -> list[int]:
        """Row ids (ascending) whose key equals ``key``."""
        try:
            return list(self._buckets.get(key, ()))
        except TypeError:  # unhashable probe value never matches
            return []

    def items(self) -> Iterator[tuple[object, list[int]]]:
        """``(key, posting list)`` pairs in insertion order."""
        return iter(self._buckets.items())

    def __len__(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)

    @property
    def entries(self) -> int:
        """Number of ``(key, row id)`` pairs inserted."""
        return self._entries
