"""Secondary indexes, table statistics and access-path mode resolution.

The subsystem mirrors the layering of the rest of the engine:

* :mod:`~repro.engine.index.btree` — an order-preserving B+-tree over one
  key (point and range lookups);
* :mod:`~repro.engine.index.hash` — an equality-only hash index;
* :mod:`~repro.engine.index.statistics` — per-table/column statistics
  (row counts, NDV, min/max, equi-depth histograms) collected by
  ``ANALYZE`` and consumed by the optimizer's cost model;
* :mod:`~repro.engine.index.manager` — the :class:`IndexManager` owning
  index lifecycles, lazy version-keyed maintenance and the
  policy-partitioned row layout.

Mode resolution follows the optimizer's and executor's explicit/env/default
ladder: an explicit argument wins, then ``$REPRO_INDEXES``, then the
default ``"on"``.  ``"off"`` compiles every query exactly as before this
subsystem existed and is the differential reference the fuzzer compares
against.
"""

from __future__ import annotations

import os

from ...errors import ExecutionError
from .btree import BTreeIndex
from .hash import HashIndex
from .manager import INDEX_KINDS, IndexDefinition, IndexManager
from .statistics import (
    ColumnStatistics,
    StatisticsCollector,
    TableStatistics,
    collect_table_statistics,
)

#: Environment variable consulted when no explicit index mode is given.
INDEXES_ENV = "REPRO_INDEXES"

#: The valid index modes.
INDEX_MODES = ("on", "off")


def resolve_index_mode(mode: str | None = None) -> str:
    """Resolve the access-path mode.

    Precedence: explicit argument > ``$REPRO_INDEXES`` > ``"on"`` — the
    same ladder as :func:`~repro.engine.batch.resolve_executor_mode`.
    """
    if mode is None:
        mode = os.environ.get(INDEXES_ENV) or "on"
    mode = mode.strip().lower()
    if mode not in INDEX_MODES:
        raise ExecutionError(
            f"unknown index mode {mode!r} (expected one of {INDEX_MODES})"
        )
    return mode


__all__ = [
    "BTreeIndex",
    "ColumnStatistics",
    "HashIndex",
    "INDEXES_ENV",
    "INDEX_KINDS",
    "INDEX_MODES",
    "IndexDefinition",
    "IndexManager",
    "StatisticsCollector",
    "TableStatistics",
    "collect_table_statistics",
    "resolve_index_mode",
]
