"""Table and column statistics for the cost-based optimizer.

``ANALYZE`` routes here: :class:`StatisticsCollector` snapshots per-table
row counts and per-column NDV / null counts / min-max / equi-depth
histograms, stamped with the ``Table.version`` they were computed against.
The optimizer only trusts *fresh* statistics (version still matching); a
DML statement bumps the version and silently invalidates the snapshot
until the next ``ANALYZE`` — the same staleness protocol the policy
bitmap cache and the index manager use.

The policy-mask column is collected like any other: its distinct-value
count is exactly the PolicyBitmapCache's per-mask UDF budget, so the
server's stats endpoint surfaces it as ``policy_distinct``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ...errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..database import Database
    from ..table import Table

#: Buckets per equi-depth histogram.
HISTOGRAM_BUCKETS = 16


@dataclass(frozen=True)
class ColumnStatistics:
    """One column's statistics snapshot.

    ``minimum``/``maximum``/``histogram`` stay ``None``/empty when the
    column's values do not form a total order (e.g. policy bit strings) —
    NDV and null counts are still collected for them.
    """

    column: str
    null_count: int
    distinct: int
    minimum: object | None = None
    maximum: object | None = None
    #: Equi-depth bucket upper bounds over the non-NULL values; each bucket
    #: holds ``non_null / len(histogram)`` rows.
    histogram: tuple = ()


@dataclass(frozen=True)
class TableStatistics:
    """One table's statistics snapshot, version-stamped for staleness."""

    table: str
    version: int
    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics | None:
        return self.columns.get(name.lower())

    def is_fresh(self, table: "Table") -> bool:
        """Whether the snapshot still describes the table's row storage."""
        return self.version == table.version

    # -- cardinality estimates ------------------------------------------------

    def estimate_equal(self, column: str, value=None) -> int | None:
        """Estimated rows matching ``column = value`` (uniform over NDV)."""
        stats = self.column(column)
        if stats is None:
            return None
        non_null = self.row_count - stats.null_count
        if non_null <= 0 or stats.distinct == 0:
            return 0
        if value is not None and stats.minimum is not None:
            try:
                if value < stats.minimum or value > stats.maximum:
                    return 0
            except TypeError:
                pass
        return max(1, non_null // stats.distinct)

    def estimate_range(
        self,
        column: str,
        lower=None,
        upper=None,
        lower_inclusive: bool = True,
        upper_inclusive: bool = True,
    ) -> int | None:
        """Estimated rows in the bound pair, from the equi-depth histogram."""
        stats = self.column(column)
        if stats is None or not stats.histogram:
            return None
        non_null = self.row_count - stats.null_count
        try:
            above = (
                _fraction_at_most(stats.histogram, lower, not lower_inclusive)
                if lower is not None
                else 0.0
            )
            below = (
                _fraction_at_most(stats.histogram, upper, upper_inclusive)
                if upper is not None
                else 1.0
            )
        except TypeError:
            return None
        fraction = max(0.0, below - above)
        return max(1, round(non_null * fraction)) if fraction > 0 else 0


def _fraction_at_most(bounds: tuple, value, inclusive: bool) -> float:
    """Fraction of rows with key ``<=`` (or ``<``) ``value``.

    ``bounds`` are equi-depth bucket upper bounds, so each bound accounts
    for an equal ``1/len(bounds)`` slice of the non-NULL rows.
    """
    if inclusive:
        position = bisect_right(bounds, value)
    else:
        position = bisect_left(bounds, value)
    return position / len(bounds)


def collect_table_statistics(
    table: "Table", buckets: int = HISTOGRAM_BUCKETS
) -> TableStatistics:
    """Compute a fresh :class:`TableStatistics` snapshot of ``table``."""
    columns: dict[str, ColumnStatistics] = {}
    rows = table.rows
    for position, column in enumerate(table.schema.columns):
        values = [row[position] for row in rows]
        non_null = [value for value in values if value is not None]
        null_count = len(values) - len(non_null)
        distinct = len(set(non_null))
        minimum = maximum = None
        histogram: tuple = ()
        if non_null:
            try:
                ordered = sorted(non_null)
            except TypeError:
                ordered = None  # unorderable domain (policy bit strings)
            if ordered is not None:
                minimum, maximum = ordered[0], ordered[-1]
                if distinct > 1:
                    histogram = _equi_depth_bounds(ordered, buckets)
        columns[column.name.lower()] = ColumnStatistics(
            column=column.name.lower(),
            null_count=null_count,
            distinct=distinct,
            minimum=minimum,
            maximum=maximum,
            histogram=histogram,
        )
    return TableStatistics(
        table=table.name.lower(),
        version=table.version,
        row_count=len(rows),
        columns=columns,
    )


def _equi_depth_bounds(ordered: list, buckets: int) -> tuple:
    """Bucket upper bounds splitting ``ordered`` into equal-count runs."""
    count = len(ordered)
    buckets = min(buckets, count)
    return tuple(
        ordered[((index + 1) * count) // buckets - 1] for index in range(buckets)
    )


class StatisticsCollector:
    """Owns every table's statistics snapshot for one database.

    Snapshots are only written by :meth:`collect` (``ANALYZE``); readers
    use :meth:`fresh` and get ``None`` for stale or absent snapshots, so
    the optimizer degrades to its heuristic defaults instead of trusting
    numbers that no longer describe the data.
    """

    def __init__(self, database: "Database"):
        self._database = database
        self._lock = threading.RLock()
        self._snapshots: dict[str, TableStatistics] = {}
        self._collections = 0

    # -- collection ------------------------------------------------------------

    def collect(self, table_name: str | None = None) -> list[TableStatistics]:
        """ANALYZE one table (or, with ``None``, every table)."""
        if table_name is None:
            names = sorted(self._database.tables)
        else:
            names = [table_name]
        collected = []
        for name in names:
            table = self._database.table(name)
            snapshot = collect_table_statistics(table)
            with self._lock:
                self._snapshots[snapshot.table] = snapshot
                self._collections += 1
            collected.append(snapshot)
        return collected

    # -- reads -----------------------------------------------------------------

    def get(self, table_name: str) -> TableStatistics | None:
        """The last snapshot for ``table_name``, fresh or not."""
        with self._lock:
            return self._snapshots.get(table_name.lower())

    def fresh(self, table: "Table") -> TableStatistics | None:
        """The snapshot for ``table`` iff it is still version-consistent."""
        snapshot = self.get(table.name)
        if snapshot is not None and snapshot.is_fresh(table):
            return snapshot
        return None

    def is_stale(self, table: "Table") -> bool:
        """Whether ``table`` has no usable snapshot (absent counts as stale)."""
        return self.fresh(table) is None

    # -- lifecycle -------------------------------------------------------------

    def forget(self, table_name: str) -> None:
        """Drop the snapshot for one table (DROP TABLE)."""
        with self._lock:
            self._snapshots.pop(table_name.lower(), None)

    def clear(self) -> None:
        """Drop every snapshot."""
        with self._lock:
            self._snapshots.clear()

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        """Monotonic collection count plus the live snapshot count."""
        with self._lock:
            return {
                "tables": len(self._snapshots),
                "collections": self._collections,
            }

    def summary(self) -> dict:
        """Per-table snapshot summary for the server's stats endpoint."""
        policy_column = getattr(self._database, "policy_column", None)
        out: dict[str, dict] = {}
        with self._lock:
            snapshots = dict(self._snapshots)
        for name, snapshot in sorted(snapshots.items()):
            entry = {
                "rows": snapshot.row_count,
                "version": snapshot.version,
                "columns": len(snapshot.columns),
            }
            try:
                entry["fresh"] = snapshot.is_fresh(self._database.table(name))
            except CatalogError:
                entry["fresh"] = False
            if policy_column:
                policy = snapshot.column(policy_column)
                if policy is not None:
                    entry["policy_distinct"] = policy.distinct
            out[name] = entry
        return out
