"""A B+-tree secondary index.

Keys live in the leaves; inner nodes hold separator copies only, and the
leaves are chained left-to-right so a range lookup descends once and then
walks siblings.  Duplicate keys are collapsed into one leaf slot holding
the list of matching row ids (appended in row order, so per-key posting
lists are ascending).

The tree is insert-only: the :class:`~repro.engine.index.manager
.IndexManager` never mutates a built tree after a DML statement — row
storage changes bump ``Table.version`` and the whole entry is lazily
rebuilt on next use, the same staleness protocol the policy bitmap cache
uses.  That keeps the structure tiny (no rebalancing deletes) without
giving up transparent maintenance.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator

#: Maximum keys per node before a split.
DEFAULT_ORDER = 32


class _Leaf:
    __slots__ = ("keys", "postings", "next")

    def __init__(self) -> None:
        self.keys: list = []
        self.postings: list[list[int]] = []
        self.next: "_Leaf | None" = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list = []
        self.children: list = []


class BTreeIndex:
    """An order-preserving index from key to ascending row-id posting list."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise ValueError(f"B-tree order must be at least 4, got {order}")
        self._order = order
        self._root: _Leaf | _Inner = _Leaf()
        self._first: _Leaf = self._root
        self._distinct = 0
        self._entries = 0

    # -- construction ----------------------------------------------------------

    def insert(self, key, row_id: int) -> None:
        """Add one ``(key, row id)`` pair (row ids arrive in row order)."""
        split = self._insert(self._root, key, row_id)
        self._entries += 1
        if split is not None:
            separator, right = split
            root = _Inner()
            root.keys = [separator]
            root.children = [self._root, right]
            self._root = root

    def _insert(self, node, key, row_id: int):
        if isinstance(node, _Leaf):
            slot = bisect_left(node.keys, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                node.postings[slot].append(row_id)
                return None
            node.keys.insert(slot, key)
            node.postings.insert(slot, [row_id])
            self._distinct += 1
            if len(node.keys) <= self._order:
                return None
            mid = len(node.keys) // 2
            right = _Leaf()
            right.keys = node.keys[mid:]
            right.postings = node.postings[mid:]
            del node.keys[mid:]
            del node.postings[mid:]
            right.next = node.next
            node.next = right
            return right.keys[0], right
        slot = bisect_right(node.keys, key)
        split = self._insert(node.children[slot], key, row_id)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(slot, separator)
        node.children.insert(slot + 1, right)
        if len(node.keys) <= self._order:
            return None
        mid = len(node.keys) // 2
        promoted = node.keys[mid]
        sibling = _Inner()
        sibling.keys = node.keys[mid + 1 :]
        sibling.children = node.children[mid + 1 :]
        del node.keys[mid:]
        del node.children[mid + 1 :]
        return promoted, sibling

    # -- lookups ---------------------------------------------------------------

    def _leaf_for(self, key) -> _Leaf:
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[bisect_right(node.keys, key)]
        return node

    def search(self, key) -> list[int]:
        """Row ids (ascending) whose key equals ``key``."""
        leaf = self._leaf_for(key)
        slot = bisect_left(leaf.keys, key)
        if slot < len(leaf.keys) and leaf.keys[slot] == key:
            return list(leaf.postings[slot])
        return []

    def range(
        self,
        lower=None,
        upper=None,
        lower_inclusive: bool = True,
        upper_inclusive: bool = True,
    ) -> list[int]:
        """Row ids (ascending) whose key falls inside the bound pair.

        ``None`` bounds are open; the result is sorted by *row id*, not key,
        so an index-range scan emits rows in the same storage order a
        sequential scan plus filter would.
        """
        matches: list[int] = []
        if lower is None:
            leaf, slot = self._first, 0
        else:
            leaf = self._leaf_for(lower)
            if lower_inclusive:
                slot = bisect_left(leaf.keys, lower)
            else:
                slot = bisect_right(leaf.keys, lower)
        while leaf is not None:
            while slot < len(leaf.keys):
                key = leaf.keys[slot]
                if upper is not None and (
                    key > upper or (not upper_inclusive and key == upper)
                ):
                    matches.sort()
                    return matches
                matches.extend(leaf.postings[slot])
                slot += 1
            leaf = leaf.next
            slot = 0
        matches.sort()
        return matches

    # -- introspection ---------------------------------------------------------

    def items(self) -> Iterator[tuple[object, list[int]]]:
        """``(key, posting list)`` pairs in ascending key order."""
        leaf: _Leaf | None = self._first
        while leaf is not None:
            yield from zip(leaf.keys, leaf.postings)
            leaf = leaf.next

    @property
    def height(self) -> int:
        """Levels from root to leaf (a one-leaf tree has height 1)."""
        levels, node = 1, self._root
        while isinstance(node, _Inner):
            levels += 1
            node = node.children[0]
        return levels

    def __len__(self) -> int:
        """Number of distinct keys."""
        return self._distinct

    @property
    def entries(self) -> int:
        """Number of ``(key, row id)`` pairs inserted."""
        return self._entries
