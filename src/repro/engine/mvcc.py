"""Snapshot-isolation MVCC: snapshots, transactions, the commit clock.

This module gives the engine the concurrency model the ROADMAP asks for —
*policy writes never stall readers*.  The design in one paragraph:

* Every committed change to a table is stamped with a **commit timestamp**
  drawn from a single monotonic clock (:class:`TransactionManager`).
* A :class:`Snapshot` is the pair ``(commit ts, catalog version)``: which
  data versions are visible *and* which metadata state — schemas, index
  definitions, the purpose taxonomy — the query is planned and enforced
  under.  The catalog version (DESIGN.md §16) subsumes the old policy
  epoch: a reader that began before a policy update or a DDL commit keeps
  being enforced under its snapshot's metadata state.
* Tables keep per-tuple version chains (``xmin``/``xmax`` commit
  timestamps, :class:`TupleVersion` in :mod:`repro.engine.table`); a
  snapshot sees exactly the versions with ``xmin <= ts < xmax``.
* A :class:`Transaction` stages its writes in per-table overlays and
  validates **first-committer-wins** at commit.  Since PR 10 the conflict
  granularity is the *row*: each commit records the set of primary keys it
  wrote, and a transaction aborts with
  :class:`~repro.errors.WriteConflictError` only when its own write set
  intersects a concurrent commit's.  Disjoint-row writers to the same
  table rebase onto the latest committed rows and commit.  Tables without
  a primary key (and whole-schema changes) fall back to table granularity;
  ``REPRO_CONFLICT=table`` restores the PR 9 behavior everywhere.
* DDL stages in the transaction's **catalog overlay**
  (:class:`~repro.engine.catalog.CatalogOp`) and conflicts
  first-committer-wins on the catalog entry
  (:class:`~repro.errors.CatalogConflictError`).

The active transaction travels in a :class:`contextvars.ContextVar`, so it
is inherited by the asyncio tasks of the sharded front end and can be
activated per-statement on server worker threads via :func:`txn_scope` —
every existing read path (executor scans, columnar batches, index builds,
bitmap probes, statistics) becomes snapshot-consistent through the
``Table.rows`` / ``Table.version`` / ``Table.schema`` properties without
touching a single operator.
"""

from __future__ import annotations

import contextlib
import os
import threading
from contextvars import ContextVar
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from ..errors import (
    CatalogConflictError,
    ExecutionError,
    TransactionError,
    WriteConflictError,
)
from .catalog import Catalog, CatalogOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .schema import TableSchema
    from .table import Table

#: Environment variable gating the MVCC machinery (``"on"``/``"off"``).
TXN_ENV = "REPRO_TXN"

#: The valid transaction modes.
TXN_MODES = ("on", "off")

#: Environment variable selecting the write-write conflict granularity.
CONFLICT_ENV = "REPRO_CONFLICT"

#: The valid conflict granularities.
CONFLICT_MODES = ("row", "table")

_MISSING = object()


def resolve_txn_mode(mode: str | None = None) -> str:
    """Resolve the transaction mode.

    Precedence: explicit argument > ``$REPRO_TXN`` > ``"on"`` — the same
    explicit/env/default ladder as
    :func:`~repro.engine.batch.resolve_executor_mode`.  ``"off"`` restores
    the pre-MVCC engine: no version chains are kept, ``BEGIN`` raises, and
    the server falls back to its reader/writer lock.
    """
    if mode is None:
        mode = os.environ.get(TXN_ENV) or "on"
    mode = mode.strip().lower()
    if mode not in TXN_MODES:
        raise ExecutionError(
            f"unknown transaction mode {mode!r} (expected one of {TXN_MODES})"
        )
    return mode


def resolve_conflict_mode(mode: str | None = None) -> str:
    """Resolve the write-write conflict granularity.

    Precedence: explicit argument > ``$REPRO_CONFLICT`` > ``"row"``.
    ``"table"`` restores PR 9's coarse first-committer-wins (any concurrent
    commit to a written table aborts); ``"row"`` validates primary-key
    write sets and rebases disjoint writers.
    """
    if mode is None:
        mode = os.environ.get(CONFLICT_ENV) or "row"
    mode = mode.strip().lower()
    if mode not in CONFLICT_MODES:
        raise ExecutionError(
            f"unknown conflict mode {mode!r} (expected one of {CONFLICT_MODES})"
        )
    return mode


@dataclass(frozen=True)
class Snapshot:
    """Snapshot identity: data visibility horizon × catalog version.

    ``ts`` is the highest commit timestamp visible to the snapshot;
    ``catalog_version`` is the metadata version — schemas, indexes, purpose
    taxonomy — the snapshot's queries are planned and enforced under (plan
    cache + ``compliesWith`` memo keying, DESIGN.md §16).
    """

    ts: int
    catalog_version: int

    @property
    def epoch(self) -> int:
        """Backward-compatible alias: the old policy epoch *is* the
        catalog version now."""
        return self.catalog_version


class _StagedTable:
    """A transaction's private overlay over one table.

    Created on the transaction's first write to the table by cloning the
    snapshot-visible rows; all further statements in the transaction read
    and write this list.  ``bump`` makes the staged ``Table.version``
    change on every staged write so version-keyed caches (bitmaps,
    indexes, statistics) never serve one staged state for another.
    ``base_rows`` keeps the snapshot-time rows for the commit-time
    write-set diff (which rows did this transaction actually change?).
    """

    __slots__ = ("rows", "base_rows", "bump", "append_only")

    def __init__(self, rows: list[tuple]):
        self.rows = rows
        self.base_rows: list[tuple] = list(rows)
        self.bump = 0
        #: True while the overlay only ever appended rows; such a table
        #: commits as a cheap append (no version-chain closure, compact
        #: WAL record) instead of a full replace.
        self.append_only = True


class Transaction:
    """One snapshot-isolation transaction: a snapshot plus staged writes."""

    def __init__(self, manager: "TransactionManager", txn_id: int, snapshot: Snapshot):
        self.manager = manager
        self.txn_id = txn_id
        self.snapshot = snapshot
        self.status = "active"
        #: Set when policy *metadata* changed under this snapshot in
        #: fail-fast revocation mode (see
        #: :meth:`TransactionManager.invalidate_active_snapshots`).
        self.invalidated_by: str | None = None
        #: True for per-statement read snapshots (the server's snapshot
        #: handoff), False for explicit BEGIN transactions.  Observability
        #: only — EXPLAIN renders ephemeral snapshots as "latest".
        self.ephemeral = False
        self._staged: dict[str, _StagedTable] = {}
        #: Row count of each staged table at staging time, to split the
        #: append-only suffix out of the overlay at commit.
        self._staged_base: dict[str, int] = {}
        self._tables: dict[str, "Table"] = {}
        #: Staged catalog mutations (transactional DDL), in statement order.
        self._catalog_ops: list[CatalogOp] = []
        #: Schemas staged by ALTER TABLE, visible only to this transaction
        #: through the ``Table.schema`` property.
        self._staged_schemas: dict[str, "TableSchema"] = {}

    # -- staging -----------------------------------------------------------

    def staged(self, table: "Table") -> "_StagedTable | None":
        """The overlay for ``table`` if this transaction wrote it."""
        return self._staged.get(table.name.lower())

    def stage(self, table: "Table") -> _StagedTable:
        """Get-or-create the write overlay for ``table``."""
        key = table.name.lower()
        overlay = self._staged.get(key)
        if overlay is None:
            base = table.rows_as_of(self.snapshot.ts)
            overlay = _StagedTable(list(base))
            self._staged[key] = overlay
            self._staged_base[key] = len(overlay.rows)
            self._tables[key] = table
        return overlay

    def staged_schema(self, table: "Table") -> "TableSchema | None":
        """The schema staged by this transaction's ALTER TABLE, if any."""
        return self._staged_schemas.get(table.name.lower())

    def add_catalog_op(self, op: CatalogOp) -> None:
        """Stage a catalog mutation (transactional DDL)."""
        self._catalog_ops.append(op)

    def staged_catalog_value(self, kind: str, key: str) -> object:
        """The newest value this transaction staged for a catalog slot
        (``_MISSING`` sentinel is not used: returns ``None`` when absent,
        callers that need presence use :meth:`has_staged_catalog`)."""
        for op in reversed(self._catalog_ops):
            if op.kind == kind and op.key == key.lower():
                return op.value
        return None

    def has_staged_catalog(self, kind: str, key: str) -> bool:
        return any(
            op.kind == kind and op.key == key.lower()
            for op in self._catalog_ops
        )

    def written_tables(self) -> list[str]:
        """Lower-cased names of tables this transaction wrote."""
        return list(self._staged)

    def commit(self) -> int:
        """Commit via the owning manager; returns the commit timestamp."""
        return self.manager.commit(self)

    def rollback(self) -> None:
        """Abort: discard the staged overlays."""
        self.manager.rollback(self)

    def _check_usable(self) -> None:
        if self.status != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status}, not active"
            )
        if self.invalidated_by is not None:
            from ..errors import SnapshotInvalidatedError

            raise SnapshotInvalidatedError(
                f"transaction {self.txn_id}: snapshot invalidated by "
                f"{self.invalidated_by}; roll back and retry"
            )


#: The transaction active in the current thread/task context, if any.
#: ``ContextVar`` (not a thread-local) so asyncio tasks inherit it.
_ACTIVE: ContextVar["Transaction | None"] = ContextVar("repro_txn", default=None)


def current_transaction(manager: "TransactionManager | None" = None) -> "Transaction | None":
    """The context's active transaction, filtered to ``manager`` if given.

    The manager filter keeps two databases in one process (e.g. the fuzz
    oracle next to the enforced world, or per-shard replicas) from seeing
    each other's transactions.
    """
    txn = _ACTIVE.get()
    if txn is None or txn.status != "active":
        return None
    if manager is not None and txn.manager is not manager:
        return None
    return txn


@contextlib.contextmanager
def txn_scope(txn: "Transaction | None") -> Iterator[None]:
    """Activate ``txn`` for the dynamic extent of the ``with`` block.

    ``txn_scope(None)`` masks any ambient transaction — the audit log uses
    it so audit rows are never staged (and hence never rolled back) with
    the transaction they record.
    """
    token = _ACTIVE.set(txn)
    try:
        yield
    finally:
        _ACTIVE.reset(token)


@dataclass
class TxnStats:
    """Counters for the server stats verb and the txn benchmark."""

    begun: int = 0
    committed: int = 0
    rolled_back: int = 0
    conflicts: int = 0
    catalog_conflicts: int = 0
    invalidated: int = 0
    rebased: int = 0
    active: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "begun": self.begun,
            "committed": self.committed,
            "rolled_back": self.rolled_back,
            "conflicts": self.conflicts,
            "catalog_conflicts": self.catalog_conflicts,
            "invalidated": self.invalidated,
            "rebased": self.rebased,
            "active": self.active,
        }


class _WritePlan:
    """One staged table's validated commit effect."""

    __slots__ = ("table", "op", "rows", "written", "rebased")

    def __init__(self, table, op, rows, written, rebased=False):
        self.table = table
        self.op = op
        self.rows = rows
        self.written = written
        self.rebased = rebased


def _key_map(rows: list[tuple], pk: tuple[int, ...]) -> "dict | None":
    """Map primary key -> row; ``None`` when a duplicate key appears
    (the diff cannot attribute writes, so fall back to table granularity)."""
    mapping: dict = {}
    for row in rows:
        key = tuple(row[index] for index in pk)
        if key in mapping:
            return None
        mapping[key] = row
    return mapping


class TransactionManager:
    """The commit clock, the active-snapshot registry and commit validation.

    One manager per :class:`~repro.engine.database.Database`; standalone
    :class:`~repro.engine.table.Table` objects lazily create a private one.
    ``enabled`` mirrors :func:`resolve_txn_mode` at construction: when off,
    tables skip version-chain bookkeeping entirely and :meth:`begin`
    raises, restoring the pre-MVCC engine byte for byte.
    """

    def __init__(self, enabled: bool | None = None, conflict: str | None = None):
        self.enabled = (
            resolve_txn_mode(None) == "on" if enabled is None else enabled
        )
        self.conflict_mode = resolve_conflict_mode(conflict)
        self._lock = threading.Lock()
        self._clock = 0
        self._txn_counter = 0
        self._active: dict[int, Transaction] = {}
        self.stats = TxnStats()
        #: The owning database's versioned catalog; wired by
        #: :class:`~repro.engine.database.Database`.  ``None`` for
        #: standalone tables (catalog versions then stay 0).
        self.catalog: Catalog | None = None
        #: Legacy callback returning a policy epoch; only consulted when no
        #: catalog is attached (kept for embedders of bare managers).
        self.epoch_provider: Callable[[], int] | None = None
        #: Durability hook (:class:`~repro.engine.wal.DurabilityManager`);
        #: ``None`` for purely in-memory databases.
        self.wal = None

    # -- clock -------------------------------------------------------------

    @property
    def clock(self) -> int:
        """The timestamp of the most recent commit."""
        return self._clock

    def advance_clock_to(self, ts: int) -> None:
        """Fast-forward the clock (WAL replay stamps recovered commits)."""
        with self._lock:
            if ts > self._clock:
                self._clock = ts

    def current_catalog_version(self) -> int:
        """The catalog version new snapshots pin (0 when detached)."""
        if self.catalog is not None:
            return self.catalog.version
        if self.epoch_provider is not None:
            return self.epoch_provider()
        return 0

    # Backward-compatible alias (pre-catalog name).
    current_epoch = current_catalog_version

    # -- snapshot lifecycle ------------------------------------------------

    def snapshot(self) -> Snapshot:
        """A snapshot of the present: latest commit ts × catalog version."""
        return Snapshot(
            ts=self._clock, catalog_version=self.current_catalog_version()
        )

    def begin(self) -> Transaction:
        """Open a transaction pinned to a fresh snapshot."""
        if not self.enabled:
            raise TransactionError(
                f"transactions are disabled (${TXN_ENV}=off)"
            )
        with self._lock:
            self._txn_counter += 1
            txn = Transaction(self, self._txn_counter, self.snapshot())
            self._active[txn.txn_id] = txn
            self.stats.begun += 1
            self.stats.active = len(self._active)
        return txn

    @contextlib.contextmanager
    def read_snapshot(self) -> Iterator["Transaction"]:
        """A registered read-only snapshot for the extent of a statement.

        This is the server's *snapshot handoff*: instead of holding the
        read side of the RW lock for the duration of a SELECT, the worker
        pins a snapshot (protecting its versions from pruning) and reads
        lock-free.  Exiting the scope unregisters without commit
        validation — a read-only transaction has nothing to validate.
        """
        txn = self.begin()
        txn.ephemeral = True
        try:
            with txn_scope(txn):
                yield txn
        finally:
            self.rollback(txn)

    def rollback(self, txn: Transaction) -> None:
        if txn.status != "active":
            return
        with self._lock:
            txn.status = "aborted"
            self._active.pop(txn.txn_id, None)
            self.stats.rolled_back += 1
            self.stats.active = len(self._active)
        self._prune_tables(txn)

    # -- commit ------------------------------------------------------------

    def next_commit_ts(self) -> int:
        """Allocate the next commit timestamp (autocommit writes)."""
        with self._lock:
            self._clock += 1
            return self._clock

    def commit_single(self, table: "Table", op: str, rows: list[tuple]) -> int:
        """Commit one autocommit statement's write to one table.

        Timestamp allocation, WAL logging and the in-memory apply happen
        under the manager lock so autocommit writes serialize with
        transactional commits and the apply order is the timestamp order.
        The commit's row-level write set is recorded so concurrent
        transactions validate against it at *their* commit.
        """
        lsn = None
        with self._lock:
            ts = self._clock + 1
            written = self._autocommit_write_set(table, op, rows)
            if self.wal is not None:
                lsn = self.wal.log_commit(ts, {table.name.lower(): (op, rows)})
            if op == "append":
                table.apply_committed_append(rows, ts, written=written)
            else:
                table.apply_committed_replace(rows, ts, written=written)
            self._clock = ts
            table.prune_versions(self._oldest_locked())
        if lsn is not None:
            # Fsync outside the lock: concurrent committers group-commit.
            self.wal.sync(lsn)
        return ts

    def _autocommit_write_set(
        self, table: "Table", op: str, rows: list[tuple]
    ) -> "frozenset | None":
        """The primary-key write set of an autocommit statement.

        ``None`` (= "all rows") for tables without a primary key, on
        duplicate keys, and in ``REPRO_CONFLICT=table`` mode.
        """
        if self.conflict_mode != "row":
            return None
        pk = table.row_key_indexes()
        if not pk:
            return None
        if op == "append":
            return frozenset(
                tuple(row[index] for index in pk) for row in rows
            )
        base_map = _key_map(table.latest_rows(), pk)
        over_map = _key_map(rows, pk)
        if base_map is None or over_map is None:
            return None
        written = {
            key
            for key, row in over_map.items()
            if base_map.get(key, _MISSING) != row
        }
        written.update(key for key in base_map if key not in over_map)
        return frozenset(written)

    def commit_ddl(
        self,
        catalog_ops: list[CatalogOp],
        table_effects: "dict[str, tuple] | None" = None,
    ) -> int:
        """Commit an autocommit DDL statement: catalog entries + row effects.

        ``table_effects`` maps table key to ``(table, op, rows, written)``
        (e.g. the rewritten rows of an ALTER TABLE).  The whole statement
        lands at one commit timestamp: WAL DDL record, schema/index apply,
        row apply, catalog commit.
        """
        table_effects = table_effects or {}
        lsn = None
        with self._lock:
            ts = self._clock + 1
            if self.wal is not None:
                lsn = self.wal.log_ddl(
                    ts,
                    [op.wal for op in catalog_ops if op.wal is not None],
                    {
                        key: (op, rows)
                        for key, (_t, op, rows, _w) in table_effects.items()
                    },
                )
            for op in catalog_ops:
                if op.apply is not None:
                    op.apply(ts)
            for key, (table, op, rows, written) in table_effects.items():
                if op == "append":
                    table.apply_committed_append(rows, ts, written=written)
                else:
                    table.apply_committed_replace(rows, ts, written=written)
            self._clock = ts
            if self.catalog is not None:
                self.catalog.commit(
                    [(op.kind, op.key, op.value) for op in catalog_ops], ts
                )
        if lsn is not None:
            self.wal.sync(lsn)
        return ts

    def commit(self, txn: Transaction) -> int:
        """Validate first-committer-wins, log, apply; returns the commit ts.

        Validation, WAL append and in-memory apply happen under the
        manager lock, so the apply order *is* the timestamp order and a
        concurrent snapshot can never observe half a commit (a table's
        rows swap atomically per table; the clock only advances once every
        staged table has been applied).

        Validation is two-layered: staged catalog ops (DDL) conflict on
        their catalog entry; staged row writes conflict on intersecting
        primary-key write sets (row mode) or on any concurrent commit to
        the table (table mode / no primary key).  Disjoint-row writers to
        a concurrently-changed table *rebase*: their changes are replayed
        over the latest committed rows so the loser-free commit does not
        clobber the winner's rows.
        """
        txn._check_usable()
        if not txn._staged and not txn._catalog_ops:
            # Read-only commit: nothing to validate or log.
            with self._lock:
                txn.status = "committed"
                self._active.pop(txn.txn_id, None)
                self.stats.committed += 1
                self.stats.active = len(self._active)
            self._prune_tables(txn)
            return self._clock
        with self._lock:
            try:
                self._validate_catalog_locked(txn)
                plans = self._validate_tables_locked(txn)
            except TransactionError:
                txn.status = "aborted"
                self._active.pop(txn.txn_id, None)
                self.stats.rolled_back += 1
                self.stats.active = len(self._active)
                self._prune_tables_locked(txn)
                raise
            ts = self._clock + 1
            ops = {key: (plan.op, plan.rows) for key, plan in plans.items()}
            lsn = None
            if self.wal is not None:
                if txn._catalog_ops:
                    lsn = self.wal.log_ddl(
                        ts,
                        [
                            op.wal
                            for op in txn._catalog_ops
                            if op.wal is not None
                        ],
                        ops,
                    )
                elif ops:
                    lsn = self.wal.log_commit(ts, ops)
            for op in txn._catalog_ops:
                if op.apply is not None:
                    op.apply(ts)
            for key, plan in plans.items():
                if plan.op == "append":
                    plan.table.apply_committed_append(
                        plan.rows, ts, written=plan.written
                    )
                else:
                    plan.table.apply_committed_replace(
                        plan.rows, ts, written=plan.written
                    )
                if plan.rebased:
                    self.stats.rebased += 1
            self._clock = ts
            if self.catalog is not None and txn._catalog_ops:
                self.catalog.commit(
                    [(op.kind, op.key, op.value) for op in txn._catalog_ops],
                    ts,
                )
            txn.status = "committed"
            self._active.pop(txn.txn_id, None)
            self.stats.committed += 1
            self.stats.active = len(self._active)
            self._prune_tables_locked(txn)
        if lsn is not None:
            # Fsync outside the lock: concurrent committers group-commit.
            self.wal.sync(lsn)
        return ts

    def _validate_catalog_locked(self, txn: Transaction) -> None:
        """First-committer-wins on catalog entries (DDL conflicts)."""
        for op in txn._catalog_ops:
            if self.catalog is not None:
                committed = self.catalog.last_commit_version(op.kind, op.key)
                if committed > txn.snapshot.catalog_version:
                    self.stats.catalog_conflicts += 1
                    self.stats.conflicts += 1
                    raise CatalogConflictError(
                        op.kind,
                        op.key,
                        txn.snapshot.catalog_version,
                        committed,
                    )
            if op.validate is not None:
                op.validate()

    def _validate_tables_locked(self, txn: Transaction) -> "dict[str, _WritePlan]":
        """Row-level first-committer-wins + rebase planning for staged DML."""
        plans: dict[str, _WritePlan] = {}
        row_mode = self.conflict_mode == "row"
        for key, overlay in txn._staged.items():
            table = txn._tables[key]
            base = txn._staged_base[key]
            changed = table.last_commit_ts > txn.snapshot.ts
            pk = () if key in txn._staged_schemas else table.row_key_indexes()
            if overlay.append_only:
                rows = overlay.rows[base:]
                written = (
                    frozenset(
                        tuple(row[index] for index in pk) for row in rows
                    )
                    if pk
                    else None
                )
                if changed and not self._compatible_locked(
                    table, txn, written, row_mode
                ):
                    raise self._conflict_locked(txn, table)
                plans[key] = _WritePlan(table, "append", rows, written)
                continue
            written, rebase = self._replace_plan(overlay, pk)
            if changed:
                if not self._compatible_locked(table, txn, written, row_mode):
                    raise self._conflict_locked(txn, table)
                # Rebase: replay this transaction's changes over the
                # latest committed rows so the concurrent winner's
                # disjoint rows survive.
                updates, deletes, inserts, keyfn = rebase
                merged = []
                for row in table.latest_rows():
                    row_key = keyfn(row)
                    if row_key in deletes:
                        continue
                    merged.append(updates.get(row_key, row))
                merged.extend(inserts)
                plans[key] = _WritePlan(
                    table, "replace", merged, written, rebased=True
                )
            else:
                plans[key] = _WritePlan(
                    table, "replace", overlay.rows, written
                )
        return plans

    def _replace_plan(self, overlay: _StagedTable, pk: tuple[int, ...]):
        """The write set and rebase ingredients of a replace overlay."""
        if not pk:
            return None, None
        base_map = _key_map(overlay.base_rows, pk)
        over_map = _key_map(overlay.rows, pk)
        if base_map is None or over_map is None:
            return None, None

        def keyfn(row: tuple) -> tuple:
            return tuple(row[index] for index in pk)

        updates = {
            key: row
            for key, row in over_map.items()
            if key in base_map and base_map[key] != row
        }
        deletes = {key for key in base_map if key not in over_map}
        inserts = [
            row for row in overlay.rows if keyfn(row) not in base_map
        ]
        written = frozenset(
            set(updates) | deletes | {keyfn(row) for row in inserts}
        )
        return written, (updates, deletes, inserts, keyfn)

    def _compatible_locked(
        self, table: "Table", txn: Transaction, written, row_mode: bool
    ) -> bool:
        """Whether a staged write commits over concurrent commits to its
        table: row mode, both write sets known, and disjoint."""
        if not row_mode or written is None:
            return False
        theirs = table.written_since(txn.snapshot.ts)
        if theirs is None:
            return False
        return not (written & theirs)

    def _conflict_locked(self, txn: Transaction, table: "Table") -> WriteConflictError:
        txn.status = "aborted"
        self._active.pop(txn.txn_id, None)
        self.stats.conflicts += 1
        self.stats.rolled_back += 1
        self.stats.active = len(self._active)
        error = WriteConflictError(
            table.name, txn.snapshot.ts, table.last_commit_ts
        )
        self._prune_tables_locked(txn)
        return error

    # -- snapshot horizon / version pruning --------------------------------

    def oldest_snapshot_ts(self) -> int:
        """The pruning horizon: versions dead before this ts are garbage."""
        with self._lock:
            return self._oldest_locked()

    def _oldest_locked(self) -> int:
        if not self._active:
            return self._clock
        return min(
            (t.snapshot.ts for t in self._active.values()), default=self._clock
        )

    def pinned_catalog_versions(self) -> set[int]:
        """Catalog versions still pinned by an active snapshot.

        The enforcement monitor's plan-cache purge keeps entries for these
        versions so a pinned reader's plans survive concurrent policy
        churn and DDL.
        """
        with self._lock:
            return {t.snapshot.catalog_version for t in self._active.values()}

    # Backward-compatible alias (pre-catalog name).
    pinned_epochs = pinned_catalog_versions

    def invalidate_active_snapshots(self, reason: str) -> int:
        """Doom every active transaction (fail-fast revocation mode).

        The default ``versioned`` revocation mode never calls this for
        metadata changes — the taxonomy is resolved as of each snapshot's
        catalog version instead.  ``REPRO_REVOCATION=failfast`` keeps the
        PR 9 semantics for deployments where revocation must bite open
        snapshots immediately: doomed transactions fail fast with
        :class:`~repro.errors.SnapshotInvalidatedError` on next use.
        """
        with self._lock:
            doomed = [t for t in self._active.values() if t.invalidated_by is None]
            for txn in doomed:
                txn.invalidated_by = reason
            self.stats.invalidated += len(doomed)
            return len(doomed)

    def _prune_tables(self, txn: Transaction) -> None:
        with self._lock:
            self._prune_tables_locked(txn)

    def _prune_tables_locked(self, txn: Transaction) -> None:
        horizon = self._oldest_locked()
        for table in txn._tables.values():
            table.prune_versions(horizon)
        if self.catalog is not None:
            if self._active:
                pinned = min(
                    t.snapshot.catalog_version for t in self._active.values()
                )
            else:
                pinned = self.catalog.version
            self.catalog.prune(pinned)

    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def stats_dict(self) -> dict[str, int]:
        with self._lock:
            self.stats.active = len(self._active)
            return self.stats.as_dict()
