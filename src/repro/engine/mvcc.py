"""Snapshot-isolation MVCC: snapshots, transactions, the commit clock.

This module gives the engine the concurrency model the ROADMAP asks for —
*policy writes never stall readers*.  The design in one paragraph:

* Every committed change to a table is stamped with a **commit timestamp**
  drawn from a single monotonic clock (:class:`TransactionManager`).
* A :class:`Snapshot` is the pair ``(commit ts, policy epoch)``: which data
  versions are visible *and* which policy state the query is enforced
  under.  Folding the epoch into snapshot identity is what makes
  enforcement snapshot-scoped (DESIGN.md §15): a reader that began before
  a policy update keeps being enforced under its snapshot's policy state.
* Tables keep per-tuple version chains (``xmin``/``xmax`` commit
  timestamps, :class:`TupleVersion` in :mod:`repro.engine.table`); a
  snapshot sees exactly the versions with ``xmin <= ts < xmax``.
* A :class:`Transaction` stages its writes in per-table overlays and
  validates **first-committer-wins** at commit: if any table it wrote was
  committed to after its snapshot, the commit aborts with
  :class:`~repro.errors.WriteConflictError`.

The active transaction travels in a :class:`contextvars.ContextVar`, so it
is inherited by the asyncio tasks of the sharded front end and can be
activated per-statement on server worker threads via :func:`txn_scope` —
every existing read path (executor scans, columnar batches, index builds,
bitmap probes, statistics) becomes snapshot-consistent through the
``Table.rows`` / ``Table.version`` properties without touching a single
operator.
"""

from __future__ import annotations

import contextlib
import os
import threading
from contextvars import ContextVar
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from ..errors import ExecutionError, TransactionError, WriteConflictError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .table import Table

#: Environment variable gating the MVCC machinery (``"on"``/``"off"``).
TXN_ENV = "REPRO_TXN"

#: The valid transaction modes.
TXN_MODES = ("on", "off")


def resolve_txn_mode(mode: str | None = None) -> str:
    """Resolve the transaction mode.

    Precedence: explicit argument > ``$REPRO_TXN`` > ``"on"`` — the same
    explicit/env/default ladder as
    :func:`~repro.engine.batch.resolve_executor_mode`.  ``"off"`` restores
    the pre-MVCC engine: no version chains are kept, ``BEGIN`` raises, and
    the server falls back to its reader/writer lock.
    """
    if mode is None:
        mode = os.environ.get(TXN_ENV) or "on"
    mode = mode.strip().lower()
    if mode not in TXN_MODES:
        raise ExecutionError(
            f"unknown transaction mode {mode!r} (expected one of {TXN_MODES})"
        )
    return mode


@dataclass(frozen=True)
class Snapshot:
    """Snapshot identity: data visibility horizon × policy epoch.

    ``ts`` is the highest commit timestamp visible to the snapshot;
    ``epoch`` is the policy epoch the snapshot's queries are enforced
    under (plan cache + ``compliesWith`` memo keying, DESIGN.md §15).
    """

    ts: int
    epoch: int


class _StagedTable:
    """A transaction's private overlay over one table.

    Created on the transaction's first write to the table by cloning the
    snapshot-visible rows; all further statements in the transaction read
    and write this list.  ``bump`` makes the staged ``Table.version``
    change on every staged write so version-keyed caches (bitmaps,
    indexes, statistics) never serve one staged state for another.
    """

    __slots__ = ("rows", "bump", "append_only")

    def __init__(self, rows: list[tuple]):
        self.rows = rows
        self.bump = 0
        #: True while the overlay only ever appended rows; such a table
        #: commits as a cheap append (no version-chain closure, compact
        #: WAL record) instead of a full replace.
        self.append_only = True


class Transaction:
    """One snapshot-isolation transaction: a snapshot plus staged writes."""

    def __init__(self, manager: "TransactionManager", txn_id: int, snapshot: Snapshot):
        self.manager = manager
        self.txn_id = txn_id
        self.snapshot = snapshot
        self.status = "active"
        #: Set when policy *metadata* changed under this snapshot (see
        #: :meth:`TransactionManager.invalidate_active_snapshots`).
        self.invalidated_by: str | None = None
        #: True for per-statement read snapshots (the server's snapshot
        #: handoff), False for explicit BEGIN transactions.  Observability
        #: only — EXPLAIN renders ephemeral snapshots as "latest".
        self.ephemeral = False
        self._staged: dict[str, _StagedTable] = {}
        #: Row count of each staged table at staging time, to split the
        #: append-only suffix out of the overlay at commit.
        self._staged_base: dict[str, int] = {}
        self._tables: dict[str, "Table"] = {}

    # -- staging -----------------------------------------------------------

    def staged(self, table: "Table") -> "_StagedTable | None":
        """The overlay for ``table`` if this transaction wrote it."""
        return self._staged.get(table.name.lower())

    def stage(self, table: "Table") -> _StagedTable:
        """Get-or-create the write overlay for ``table``."""
        key = table.name.lower()
        overlay = self._staged.get(key)
        if overlay is None:
            base = table.rows_as_of(self.snapshot.ts)
            overlay = _StagedTable(list(base))
            self._staged[key] = overlay
            self._staged_base[key] = len(overlay.rows)
            self._tables[key] = table
        return overlay

    def written_tables(self) -> list[str]:
        """Lower-cased names of tables this transaction wrote."""
        return list(self._staged)

    def commit(self) -> int:
        """Commit via the owning manager; returns the commit timestamp."""
        return self.manager.commit(self)

    def rollback(self) -> None:
        """Abort: discard the staged overlays."""
        self.manager.rollback(self)

    def _check_usable(self) -> None:
        if self.status != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status}, not active"
            )
        if self.invalidated_by is not None:
            from ..errors import SnapshotInvalidatedError

            raise SnapshotInvalidatedError(
                f"transaction {self.txn_id}: snapshot invalidated by "
                f"{self.invalidated_by}; roll back and retry"
            )


#: The transaction active in the current thread/task context, if any.
#: ``ContextVar`` (not a thread-local) so asyncio tasks inherit it.
_ACTIVE: ContextVar["Transaction | None"] = ContextVar("repro_txn", default=None)


def current_transaction(manager: "TransactionManager | None" = None) -> "Transaction | None":
    """The context's active transaction, filtered to ``manager`` if given.

    The manager filter keeps two databases in one process (e.g. the fuzz
    oracle next to the enforced world, or per-shard replicas) from seeing
    each other's transactions.
    """
    txn = _ACTIVE.get()
    if txn is None or txn.status != "active":
        return None
    if manager is not None and txn.manager is not manager:
        return None
    return txn


@contextlib.contextmanager
def txn_scope(txn: "Transaction | None") -> Iterator[None]:
    """Activate ``txn`` for the dynamic extent of the ``with`` block.

    ``txn_scope(None)`` masks any ambient transaction — the audit log uses
    it so audit rows are never staged (and hence never rolled back) with
    the transaction they record.
    """
    token = _ACTIVE.set(txn)
    try:
        yield
    finally:
        _ACTIVE.reset(token)


@dataclass
class TxnStats:
    """Counters for the server stats verb and the txn benchmark."""

    begun: int = 0
    committed: int = 0
    rolled_back: int = 0
    conflicts: int = 0
    invalidated: int = 0
    active: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "begun": self.begun,
            "committed": self.committed,
            "rolled_back": self.rolled_back,
            "conflicts": self.conflicts,
            "invalidated": self.invalidated,
            "active": self.active,
        }


class TransactionManager:
    """The commit clock, the active-snapshot registry and commit validation.

    One manager per :class:`~repro.engine.database.Database`; standalone
    :class:`~repro.engine.table.Table` objects lazily create a private one.
    ``enabled`` mirrors :func:`resolve_txn_mode` at construction: when off,
    tables skip version-chain bookkeeping entirely and :meth:`begin`
    raises, restoring the pre-MVCC engine byte for byte.
    """

    def __init__(self, enabled: bool | None = None):
        self.enabled = (
            resolve_txn_mode(None) == "on" if enabled is None else enabled
        )
        self._lock = threading.Lock()
        self._clock = 0
        self._txn_counter = 0
        self._active: dict[int, Transaction] = {}
        self.stats = TxnStats()
        #: Callback returning the current policy epoch; wired up by
        #: :class:`~repro.core.admin.AccessControlManager` at configure time.
        self.epoch_provider: Callable[[], int] | None = None
        #: Durability hook (:class:`~repro.engine.wal.DurabilityManager`);
        #: ``None`` for purely in-memory databases.
        self.wal = None

    # -- clock -------------------------------------------------------------

    @property
    def clock(self) -> int:
        """The timestamp of the most recent commit."""
        return self._clock

    def advance_clock_to(self, ts: int) -> None:
        """Fast-forward the clock (WAL replay stamps recovered commits)."""
        with self._lock:
            if ts > self._clock:
                self._clock = ts

    def current_epoch(self) -> int:
        return self.epoch_provider() if self.epoch_provider is not None else 0

    # -- snapshot lifecycle ------------------------------------------------

    def snapshot(self) -> Snapshot:
        """A snapshot of the present: latest commit ts × current epoch."""
        return Snapshot(ts=self._clock, epoch=self.current_epoch())

    def begin(self) -> Transaction:
        """Open a transaction pinned to a fresh snapshot."""
        if not self.enabled:
            raise TransactionError(
                f"transactions are disabled (${TXN_ENV}=off)"
            )
        with self._lock:
            self._txn_counter += 1
            txn = Transaction(self, self._txn_counter, self.snapshot())
            self._active[txn.txn_id] = txn
            self.stats.begun += 1
            self.stats.active = len(self._active)
        return txn

    @contextlib.contextmanager
    def read_snapshot(self) -> Iterator["Transaction"]:
        """A registered read-only snapshot for the extent of a statement.

        This is the server's *snapshot handoff*: instead of holding the
        read side of the RW lock for the duration of a SELECT, the worker
        pins a snapshot (protecting its versions from pruning) and reads
        lock-free.  Exiting the scope unregisters without commit
        validation — a read-only transaction has nothing to validate.
        """
        txn = self.begin()
        txn.ephemeral = True
        try:
            with txn_scope(txn):
                yield txn
        finally:
            self.rollback(txn)

    def rollback(self, txn: Transaction) -> None:
        if txn.status != "active":
            return
        with self._lock:
            txn.status = "aborted"
            self._active.pop(txn.txn_id, None)
            self.stats.rolled_back += 1
            self.stats.active = len(self._active)
        self._prune_tables(txn)

    # -- commit ------------------------------------------------------------

    def next_commit_ts(self) -> int:
        """Allocate the next commit timestamp (autocommit writes)."""
        with self._lock:
            self._clock += 1
            return self._clock

    def commit_single(self, table: "Table", op: str, rows: list[tuple]) -> int:
        """Commit one autocommit statement's write to one table.

        Timestamp allocation, WAL logging and the in-memory apply happen
        under the manager lock so autocommit writes serialize with
        transactional commits and the apply order is the timestamp order.
        """
        lsn = None
        with self._lock:
            ts = self._clock + 1
            if self.wal is not None:
                lsn = self.wal.log_commit(ts, {table.name.lower(): (op, rows)})
            if op == "append":
                table.apply_committed_append(rows, ts)
            else:
                table.apply_committed_replace(rows, ts)
            self._clock = ts
            table.prune_versions(self._oldest_locked())
        if lsn is not None:
            # Fsync outside the lock: concurrent committers group-commit.
            self.wal.sync(lsn)
        return ts

    def commit(self, txn: Transaction) -> int:
        """Validate first-committer-wins, log, apply; returns the commit ts.

        Validation, WAL append and in-memory apply happen under the
        manager lock, so the apply order *is* the timestamp order and a
        concurrent snapshot can never observe half a commit (a table's
        rows swap atomically per table; the clock only advances once every
        staged table has been applied).
        """
        txn._check_usable()
        if not txn._staged:
            # Read-only commit: nothing to validate or log.
            with self._lock:
                txn.status = "committed"
                self._active.pop(txn.txn_id, None)
                self.stats.committed += 1
                self.stats.active = len(self._active)
            self._prune_tables(txn)
            return self._clock
        with self._lock:
            # First committer wins: any commit to a written table after
            # our snapshot aborts us.
            for key, table in txn._tables.items():
                if table.last_commit_ts > txn.snapshot.ts:
                    txn.status = "aborted"
                    self._active.pop(txn.txn_id, None)
                    self.stats.conflicts += 1
                    self.stats.rolled_back += 1
                    self.stats.active = len(self._active)
                    error = WriteConflictError(
                        table.name, txn.snapshot.ts, table.last_commit_ts
                    )
                    self._prune_tables_locked(txn)
                    raise error
            ts = self._clock + 1
            ops = {}
            for key, overlay in txn._staged.items():
                base = txn._staged_base[key]
                if overlay.append_only:
                    ops[key] = ("append", overlay.rows[base:])
                else:
                    ops[key] = ("replace", overlay.rows)
            lsn = self.wal.log_commit(ts, ops) if self.wal is not None else None
            for key, (op, rows) in ops.items():
                table = txn._tables[key]
                if op == "append":
                    table.apply_committed_append(rows, ts)
                else:
                    table.apply_committed_replace(rows, ts)
            self._clock = ts
            txn.status = "committed"
            self._active.pop(txn.txn_id, None)
            self.stats.committed += 1
            self.stats.active = len(self._active)
            self._prune_tables_locked(txn)
        if lsn is not None:
            # Fsync outside the lock: concurrent committers group-commit.
            self.wal.sync(lsn)
        return ts

    # -- snapshot horizon / version pruning --------------------------------

    def oldest_snapshot_ts(self) -> int:
        """The pruning horizon: versions dead before this ts are garbage."""
        with self._lock:
            return self._oldest_locked()

    def _oldest_locked(self) -> int:
        if not self._active:
            return self._clock
        return min(
            (t.snapshot.ts for t in self._active.values()), default=self._clock
        )

    def pinned_epochs(self) -> set[int]:
        """Policy epochs still pinned by an active snapshot.

        The enforcement monitor's plan-cache purge keeps entries for these
        epochs so a pinned reader's plans survive concurrent policy churn.
        """
        with self._lock:
            return {t.snapshot.epoch for t in self._active.values()}

    def invalidate_active_snapshots(self, reason: str) -> int:
        """Doom every active transaction (policy *metadata* changed).

        Mask churn is ordinary row data and is versioned like any other
        write, but the admin's purpose set and schema categorization live
        in in-memory mirrors that are not versioned; when those change we
        cannot reconstruct old enforcement state, so open snapshots are
        marked invalid and fail fast on next use (DESIGN.md §15).
        """
        with self._lock:
            doomed = [t for t in self._active.values() if t.invalidated_by is None]
            for txn in doomed:
                txn.invalidated_by = reason
            self.stats.invalidated += len(doomed)
            return len(doomed)

    def _prune_tables(self, txn: Transaction) -> None:
        with self._lock:
            self._prune_tables_locked(txn)

    def _prune_tables_locked(self, txn: Transaction) -> None:
        horizon = self._oldest_locked()
        for table in txn._tables.values():
            table.prune_versions(horizon)

    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def stats_dict(self) -> dict[str, int]:
        with self._lock:
            self.stats.active = len(self._active)
            return self.stats.as_dict()
