"""Aggregate function implementations.

Each aggregate is an accumulator class with ``add(value)`` / ``result()``.
SQL semantics are followed: NULL inputs are skipped; ``count(*)`` counts
rows; ``sum``/``avg``/``min``/``max`` over an empty (or all-NULL) group
return NULL while ``count`` returns 0.  ``DISTINCT`` variants deduplicate
values before accumulation.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ExpressionError, TypeMismatchError


class Aggregate:
    """Base accumulator."""

    def add(self, value: object) -> None:
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError


class CountAggregate(Aggregate):
    """``count(expr)`` — number of non-NULL inputs."""

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: object) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> int:
        return self.count


class CountStarAggregate(Aggregate):
    """``count(*)`` — number of rows, NULLs included."""

    def __init__(self) -> None:
        self.count = 0

    def add(self, value: object) -> None:
        self.count += 1

    def result(self) -> int:
        return self.count


def _require_number(value: object, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeMismatchError(f"{name}() requires numeric input, got {value!r}")
    return value


class SumAggregate(Aggregate):
    """``sum(expr)``."""

    def __init__(self) -> None:
        self.total: float | int = 0
        self.seen = False

    def add(self, value: object) -> None:
        if value is None:
            return
        self.total += _require_number(value, "sum")
        self.seen = True

    def result(self) -> object:
        return self.total if self.seen else None


class AvgAggregate(Aggregate):
    """``avg(expr)``."""

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: object) -> None:
        if value is None:
            return
        self.total += _require_number(value, "avg")
        self.count += 1

    def result(self) -> object:
        if self.count == 0:
            return None
        return self.total / self.count


class MinAggregate(Aggregate):
    """``min(expr)``."""

    def __init__(self) -> None:
        self.best: object = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def result(self) -> object:
        return self.best


class MaxAggregate(Aggregate):
    """``max(expr)``."""

    def __init__(self) -> None:
        self.best: object = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def result(self) -> object:
        return self.best


class DistinctAggregate(Aggregate):
    """Wraps another aggregate, feeding it each distinct non-NULL value once."""

    def __init__(self, inner: Aggregate):
        self.inner = inner
        self.seen: set = set()
        self.saw_row = False

    def add(self, value: object) -> None:
        self.saw_row = True
        if value is None:
            # count(*) distinct is not valid SQL; NULLs never reach inner
            # aggregates anyway, matching the non-distinct behaviour.
            self.inner.add(None)
            return
        if value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self) -> object:
        return self.inner.result()


_FACTORIES: dict[str, Callable[[], Aggregate]] = {
    "count": CountAggregate,
    "sum": SumAggregate,
    "avg": AvgAggregate,
    "min": MinAggregate,
    "max": MaxAggregate,
}


def make_aggregate(name: str, star: bool = False, distinct: bool = False) -> Aggregate:
    """Build an accumulator for an aggregate call.

    Args:
        name: Aggregate name (case-insensitive).
        star: True for ``count(*)``.
        distinct: True for ``agg(DISTINCT expr)``.
    """
    key = name.lower()
    if key == "count" and star:
        if distinct:
            raise ExpressionError("count(distinct *) is not valid SQL")
        return CountStarAggregate()
    try:
        aggregate = _FACTORIES[key]()
    except KeyError:
        raise ExpressionError(f"unknown aggregate function {name!r}") from None
    if distinct:
        return DistinctAggregate(aggregate)
    return aggregate


def is_aggregate_name(name: str) -> bool:
    """True when ``name`` denotes one of the supported aggregates."""
    return name.lower() in _FACTORIES
