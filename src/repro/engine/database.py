"""The in-memory relational database: catalog + statement execution.

:class:`Database` is the stand-in for PostgreSQL in the paper's evaluation
(Section 6.3).  It owns the table catalog, the scalar-function registry
(where the enforcement framework installs ``complieswith``), and executes
parsed or textual SQL statements.  SELECT goes through
:class:`~repro.engine.executor.SelectExecutor`; DML/DDL are handled here.
"""

from __future__ import annotations

from ..errors import CatalogError, ExecutionError, TransactionError
from ..sql import ast, parse_statement
from .catalog import Catalog, CatalogOp
from .executor import PreparedSelect, SelectExecutor
from .expressions import Env, ExpressionCompiler, Scope
from .functions import FunctionRegistry
from .index import IndexDefinition, IndexManager, StatisticsCollector
from .mvcc import Transaction, TransactionManager, current_transaction
from .plan import PolicyBitmapCache
from .result import ResultSet
from .schema import Column, ColumnBinding, RowShape, TableSchema
from .table import Table
from .types import SqlType


class PreparedQuery:
    """A planned SELECT (or set-operation chain) reusable across executions.

    Planning — FROM-tree layout, join strategy, expression compilation —
    happens once in the constructor; :meth:`execute` then runs the compiled
    pipeline against the *current* table contents, with parameter values
    supplied through an execution-time environment rather than baked-in
    literals.  This is the engine half of the prepare-once/execute-many
    discipline the enforcement monitor builds its plan cache on.
    """

    def __init__(
        self,
        database: "Database",
        statement: "ast.Select | ast.SetOperation",
        optimizer: str | None = None,
        executor: str | None = None,
        batch_size: int | None = None,
        indexes: str | None = None,
    ):
        self.database = database
        self.statement = statement
        self.executor = SelectExecutor(
            database, optimizer=optimizer, executor=executor,
            batch_size=batch_size, indexes=indexes,
        )
        self.optimizer_mode = self.executor.optimizer_mode
        self.executor_mode = self.executor.executor_mode
        self.batch_size = self.executor.batch_size
        self.indexes_mode = self.executor.index_mode
        self.parameters = ast.collect_parameters(statement)
        self._plan = self._prepare_node(statement)

    def _prepare_node(self, node):
        if isinstance(node, ast.SetOperation):
            return (
                node,
                self._prepare_node(node.left),
                self._prepare_node(node.right),
            )
        return PreparedSelect(self.executor, node, parent_scope=None)

    def execute(self, params=None, trace=None) -> ResultSet:
        """Run the prepared pipeline under the given parameter bindings.

        ``params`` is a sequence (bound to ``$1``, ``$2``, ... in order) or
        a mapping keyed by parameter index/name; missing bindings raise
        :class:`ExecutionError` before execution starts.  ``trace`` (a
        :class:`~repro.obs.tracing.Trace`) makes plan nodes record per-node
        row counts for this execution only; ``None`` is the untraced fast
        path.
        """
        bound = bind_parameters(params, self.parameters)
        # A fresh subquery-result cache per execution: the compiled plan is
        # immutable and may be running on several threads at once, so all
        # per-run state lives in the environment.
        return self._execute_node(
            self._plan, Env(params=bound, subq={}, trace=trace)
        )

    def _execute_node(self, plan, env: Env) -> ResultSet:
        if isinstance(plan, PreparedSelect):
            return ResultSet(plan.output_columns, plan.rows(env))
        from .result import combine_set_operation

        node, left, right = plan
        return combine_set_operation(
            self._execute_node(left, env),
            self._execute_node(right, env),
            node.op,
            node.all,
        )

    def describe(self, annotate=None) -> list[str]:
        """EXPLAIN-style plan lines (set-operation branches concatenated).

        ``annotate`` threads through to every block's
        :meth:`~repro.engine.executor.PreparedSelect.describe` for EXPLAIN
        ANALYZE row-count suffixes.
        """
        lines: list[str] = []

        def walk(plan) -> None:
            if isinstance(plan, PreparedSelect):
                lines.extend(plan.describe(annotate=annotate))
                return
            node, left, right = plan
            walk(left)
            lines.append(f"-- {node.op.lower()} --")
            walk(right)

        walk(self._plan)
        return lines

    # -- optimizer surface ----------------------------------------------------------

    def _arms(self) -> "tuple[list[str], list[PreparedSelect]]":
        """Flatten the (possibly set-operation) plan into ordered arms."""
        ops: list[str] = []
        arms: list[PreparedSelect] = []

        def walk(plan) -> None:
            if isinstance(plan, PreparedSelect):
                arms.append(plan)
                return
            node, left, right = plan
            walk(left)
            ops.append(node.op)
            walk(right)

        walk(self._plan)
        return ops, arms

    def describe_arms(self, annotate=None) -> list[str]:
        """Physical plan lines with set-operation arms labeled explicitly.

        A single SELECT renders exactly like :meth:`describe`; a
        set-operation chain labels each branch (``Union arm 1/2`` ...) and
        indents its plan beneath the label, so EXPLAIN output attributes
        every operator to its branch.
        """
        ops, arms = self._arms()
        if len(arms) == 1:
            return arms[0].describe(annotate=annotate)
        lines: list[str] = []
        for index, arm in enumerate(arms):
            op = ops[index - 1] if index else ops[0]
            lines.append(f"{op.title()} arm {index + 1}/{len(arms)}")
            lines.extend(
                "  " + line for line in arm.describe(annotate=annotate)
            )
        return lines

    def optimizer_notes(self) -> list[str]:
        """Per-pass optimizer annotations, prefixed per set-operation arm."""
        _, arms = self._arms()
        if len(arms) == 1:
            return list(arms[0].optimizer_notes)
        notes: list[str] = []
        for index, arm in enumerate(arms):
            notes.extend(
                f"arm {index + 1}: {note}" for note in arm.optimizer_notes
            )
        return notes

    def logical_lines(self) -> list[str]:
        """The optimized logical plan(s) as indented EXPLAIN lines."""
        ops, arms = self._arms()
        if len(arms) == 1:
            return arms[0].logical_lines()
        lines = [f"SetOp [{' '.join(op.lower() for op in ops)}]"]
        for arm in arms:
            lines.extend("  " + line for line in arm.logical_lines())
        return lines

    def plan_summary(self) -> dict[str, int]:
        """Count of plan nodes by kind (``{"HashJoin": 1, "SeqScan": 2}``).

        A cheap structural fingerprint for trace/span attributes — join
        strategy and scan count without shipping the whole plan text.
        """
        counts: dict[str, int] = {}

        def visit(node) -> None:
            counts[node.kind] = counts.get(node.kind, 0) + 1
            for child in node.children:
                visit(child)

        def walk(plan) -> None:
            if isinstance(plan, PreparedSelect):
                visit(plan.source_plan)
                return
            _node, left, right = plan
            walk(left)
            walk(right)

        walk(self._plan)
        return counts


def bind_parameters(params, declared) -> dict | None:
    """Normalize user-supplied bindings and check them against ``declared``.

    Sequences bind positionally to ``$1..$n``; mappings bind by index or by
    (case-insensitive) name.  Raises :class:`ExecutionError` when a declared
    parameter has no binding — surplus bindings are ignored.
    """
    if params is None:
        bound: dict = {}
    elif isinstance(params, dict):
        bound = {}
        for key, value in params.items():
            if isinstance(key, str):
                bound[key.lower()] = value
            else:
                bound[int(key)] = value
    elif isinstance(params, (list, tuple)):
        bound = {index: value for index, value in enumerate(params, start=1)}
    else:
        raise ExecutionError(
            f"parameters must be a sequence or mapping, got {type(params).__name__}"
        )
    missing = [p.placeholder for p in declared if p.key not in bound]
    if missing:
        raise ExecutionError(
            f"missing values for parameters: {', '.join(sorted(missing))}"
        )
    return bound


class Database:
    """A named collection of tables with a SQL execution interface."""

    def __init__(self, name: str = "db"):
        self.name = name
        self.tables: dict[str, Table] = {}
        self.functions = FunctionRegistry()
        # Policy-enforcement hooks, set by the admin layer when the
        # framework is configured.  ``policy_function``/``policy_column``
        # tell the optimizer what a rewriter-injected guard conjunct looks
        # like; ``policy_bitmaps`` caches the row-index sets those guards
        # are answered with (one ``complieswith`` call per distinct policy
        # value instead of one per row).
        self.policy_function: str | None = None
        self.policy_column: str | None = None
        self.policy_bitmaps = PolicyBitmapCache()
        # Secondary-index catalog and optimizer statistics (DESIGN.md §13).
        self.indexes = IndexManager(self)
        self.statistics = StatisticsCollector(self)
        # MVCC: the commit clock + active-snapshot registry (DESIGN.md §15).
        self.transactions = TransactionManager()
        # The versioned metadata catalog (DESIGN.md §16): schemas, index
        # definitions and the purpose taxonomy as commit-stamped versions.
        # Snapshots pin ``catalog.version``; it subsumes the policy epoch.
        self.catalog = Catalog()
        self.transactions.catalog = self.catalog
        # Durability hook; set by engine.wal.DurabilityManager when attached.
        self.durability = None

    # -- catalog -----------------------------------------------------------------

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """True when a table with this name exists."""
        return name.lower() in self.tables

    def table_names(self) -> list[str]:
        """All table names, in creation order."""
        return [table.name for table in self.tables.values()]

    def create_table(self, schema: TableSchema, record_catalog: bool = True) -> Table:
        """Create a table from a prepared schema.

        The creation commits a ``("table", name)`` catalog entry (and a WAL
        DDL record when durability is attached); WAL replay passes
        ``record_catalog=False`` because it stamps the entry itself at the
        recovered commit's timestamp.
        """
        key = schema.name.lower()
        if key in self.tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema)
        table.attach_manager(self.transactions)
        self.tables[key] = table
        if record_catalog:
            self._ddl_autocommit(
                [
                    CatalogOp(
                        "table",
                        key,
                        schema,
                        wal={"op": "create_table", "schema": schema},
                        describe=f"CREATE TABLE {schema.name}",
                    )
                ]
            )
        return table

    def drop_table(self, name: str, record_catalog: bool = True) -> None:
        """Drop a table (and its indexes/statistics); unknown names raise."""
        key = name.lower()
        if key not in self.tables:
            raise CatalogError(f"unknown table {name!r}")
        del self.tables[key]
        doomed = self.indexes.drop_for_table(key)
        self.statistics.forget(key)
        self.policy_bitmaps.forget(key)
        if record_catalog:
            ops = [
                CatalogOp(
                    "table",
                    key,
                    None,
                    wal={"op": "drop_table", "table": key},
                    describe=f"DROP TABLE {name}",
                )
            ]
            # The cascade-dropped indexes get catalog tombstones in the same
            # commit (no WAL descriptor: replaying drop_table re-cascades).
            ops.extend(
                CatalogOp("index", definition.name, None)
                for definition in doomed
            )
            self._ddl_autocommit(ops)

    # -- transactions ------------------------------------------------------------

    def begin(self) -> Transaction:
        """Open a snapshot-isolation transaction and activate it in context.

        The embedded single-context equivalent of the SQL ``BEGIN``: until
        :meth:`commit`/:meth:`rollback`, every statement executed from
        this thread/task reads the transaction's snapshot and stages its
        writes.  Server sessions instead hold the returned handle and
        activate it per statement with :func:`~repro.engine.mvcc.txn_scope`.
        """
        if current_transaction(self.transactions) is not None:
            raise TransactionError("a transaction is already in progress")
        txn = self.transactions.begin()
        from .mvcc import _ACTIVE

        _ACTIVE.set(txn)
        return txn

    def commit(self) -> int:
        """Commit the context's transaction; returns its commit timestamp."""
        txn = self._take_context_txn("COMMIT")
        return self.transactions.commit(txn)

    def rollback(self) -> None:
        """Roll back the context's transaction."""
        txn = self._take_context_txn("ROLLBACK")
        self.transactions.rollback(txn)

    def _take_context_txn(self, verb: str) -> Transaction:
        from .mvcc import _ACTIVE

        txn = current_transaction(self.transactions)
        if txn is None:
            raise TransactionError(f"{verb} without an active transaction")
        _ACTIVE.set(None)
        return txn

    def _forbid_txn(self, operation: str) -> None:
        if current_transaction(self.transactions) is not None:
            raise TransactionError(
                f"{operation} is not allowed inside a transaction"
            )

    def _ddl_autocommit(
        self, ops: "list[CatalogOp]", table_effects: "dict | None" = None
    ) -> None:
        # Commit catalog ops outside any transaction: one commit timestamp,
        # one WAL DDL record (DESIGN.md §16 — DDL no longer forces a
        # checkpoint).  With MVCC off the catalog still versions (ts 0).
        if self.transactions.enabled:
            self.transactions.commit_ddl(ops, table_effects)
            return
        for op in ops:
            if op.apply is not None:
                op.apply(0)
        for key, (table, op, rows, _written) in (table_effects or {}).items():
            table._apply_plain(op, rows)
        self.catalog.commit([(op.kind, op.key, op.value) for op in ops], 0)

    # -- statement execution -----------------------------------------------------

    def execute(self, sql: str | ast.Statement) -> ResultSet | int:
        """Execute one statement.

        Returns a :class:`ResultSet` for SELECT and an affected-row count for
        DML; DDL returns 0.
        """
        statement = parse_statement(sql) if isinstance(sql, str) else sql
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            return self.query(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Begin):
            self.begin()
            return 0
        if isinstance(statement, ast.Commit):
            self.commit()
            return 0
        if isinstance(statement, ast.Rollback):
            self.rollback()
            return 0
        if isinstance(statement, ast.CreateTable):
            # CREATE/DROP TABLE stay autocommit-only: a staged table would
            # need catalog-overlaid name resolution through every reader.
            # They are still WAL-logged DDL commits (no forced checkpoint).
            self._forbid_txn("CREATE TABLE")
            self._execute_create(statement)
            return 0
        if isinstance(statement, ast.DropTable):
            self._forbid_txn("DROP TABLE")
            self.drop_table(statement.name)
            return 0
        if isinstance(statement, ast.AlterTableAddColumn):
            # Transactional: Table.add_column stages inside a transaction
            # (first-committer-wins on the schema catalog entry) and
            # autocommits a DDL record otherwise.
            self.table(statement.table).add_column(
                _column_from_def(statement.column)
            )
            return 0
        if isinstance(statement, ast.AlterTableDropColumn):
            self.table(statement.table).drop_column(statement.column_name)
            return 0
        if isinstance(statement, ast.CreateIndex):
            self._execute_create_index(statement)
            return 0
        if isinstance(statement, ast.DropIndex):
            self._execute_drop_index(statement)
            return 0
        if isinstance(statement, ast.Analyze):
            # ANALYZE reports the number of tables whose statistics were
            # refreshed, mirroring DML's affected-row convention.  Inside a
            # transaction the stats snapshot is stamped with the *staged*
            # version identity, so it can never outlive a rollback.
            return len(self.statistics.collect(statement.table))
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def query(
        self,
        sql: "str | ast.Select | ast.SetOperation",
        optimizer: str | None = None,
        executor: str | None = None,
        indexes: str | None = None,
    ) -> ResultSet:
        """Execute a SELECT (or a set-operation chain) and return rows.

        ``optimizer`` pins the pass pipeline for this query ("on"/"off");
        ``None`` resolves from ``REPRO_OPTIMIZER`` (default "on").
        ``executor`` pins the physical mode ("batch"/"row"); ``None``
        resolves from ``REPRO_EXECUTOR`` (default "batch").  ``indexes``
        pins access-path selection ("on"/"off"); ``None`` resolves from
        ``REPRO_INDEXES`` (default "on").
        """
        if isinstance(sql, str):
            statement = parse_statement(sql)
            if not isinstance(statement, (ast.Select, ast.SetOperation)):
                raise ExecutionError("query() requires a SELECT statement")
        else:
            statement = sql
        if isinstance(statement, ast.SetOperation):
            from .result import combine_set_operation

            left = self.query(
                statement.left,
                optimizer=optimizer, executor=executor, indexes=indexes,
            )
            right = self.query(
                statement.right,
                optimizer=optimizer, executor=executor, indexes=indexes,
            )
            return combine_set_operation(left, right, statement.op, statement.all)
        return SelectExecutor(
            self, optimizer=optimizer, executor=executor, indexes=indexes
        ).execute_select(statement)

    def prepare(
        self,
        sql: "str | ast.Select | ast.SetOperation",
        optimizer: str | None = None,
        executor: str | None = None,
        batch_size: int | None = None,
        indexes: str | None = None,
    ) -> PreparedQuery:
        """Plan a SELECT once for repeated execution (prepare/execute).

        The returned :class:`PreparedQuery` is bound to the current schema
        (``*`` expansion, column resolution) but reads table contents at
        execution time, so it observes later inserts/updates.  ``optimizer``
        overrides the plan-rewrite mode (``"on"``/``"off"``); ``executor``
        overrides the physical mode (``"batch"``/``"row"``); ``indexes``
        overrides access-path selection (``"on"``/``"off"``); ``None``
        resolves each from its env var (``$REPRO_OPTIMIZER`` /
        ``$REPRO_EXECUTOR`` / ``$REPRO_INDEXES``).
        """
        if isinstance(sql, str):
            statement = parse_statement(sql)
        else:
            statement = sql
        if not isinstance(statement, (ast.Select, ast.SetOperation)):
            raise ExecutionError("prepare() requires a SELECT statement")
        return PreparedQuery(
            self, statement,
            optimizer=optimizer, executor=executor, batch_size=batch_size,
            indexes=indexes,
        )

    def execute_prepared(
        self, prepared: PreparedQuery, params=None, trace=None
    ) -> ResultSet:
        """Run a prepared query under parameter bindings (see :meth:`prepare`)."""
        if prepared.database is not self:
            raise ExecutionError("prepared query belongs to a different database")
        return prepared.execute(params, trace=trace)

    def explain(self, sql: "str | ast.Select | ast.SetOperation") -> str:
        """An EXPLAIN-style plan description for a query.

        Shows scans, join strategies (hash vs. nested loop), pushed-down
        filters and the residual WHERE — useful to confirm where the
        ``complieswith`` conjuncts are evaluated.
        """
        if isinstance(sql, str):
            statement = parse_statement(sql)
        else:
            statement = sql
        if isinstance(statement, ast.SetOperation):
            parts = []
            for index, branch in enumerate(statement.branches()):
                if index:
                    parts.append(f"-- {statement.op.lower()} --")
                parts.append(self.explain(branch))
            return "\n".join(parts)
        if not isinstance(statement, ast.Select):
            raise ExecutionError("explain() requires a SELECT statement")
        executor = SelectExecutor(self)
        prepared = PreparedSelect(executor, statement, parent_scope=None)
        return "\n".join(prepared.describe())

    # -- DML -----------------------------------------------------------------------

    def _execute_insert(self, statement: ast.Insert) -> int:
        table = self.table(statement.table)
        # Bulk-append: one version bump per statement (not per row), so the
        # policy-bitmap cache rebuilds once after an INSERT ... SELECT or a
        # multi-row VALUES list.
        if statement.select is not None:
            result = self.query(statement.select)
            return table.append_rows(result.rows, statement.columns)
        return table.append_rows(
            (
                [_constant(expression, self) for expression in value_row]
                for value_row in statement.rows
            ),
            statement.columns,
        )

    def _row_compiler(self, table: Table) -> tuple[ExpressionCompiler, RowShape]:
        bindings = [
            ColumnBinding(
                table.name.lower(), column.name.lower(), index,
                column.sql_type, table.name.lower(), column.name.lower(),
            )
            for index, column in enumerate(table.schema.columns)
        ]
        shape = RowShape(bindings)
        executor = SelectExecutor(self)
        return executor.compiler(Scope(shape)), shape

    def _execute_update(self, statement: ast.Update) -> int:
        table = self.table(statement.table)
        compiler, _ = self._row_compiler(table)
        predicate = (
            compiler.compile(statement.where)
            if statement.where is not None
            else None
        )
        assignments = [
            (table.schema.column_index(name), compiler.compile(expression))
            for name, expression in statement.assignments
        ]
        env = Env(subq={})

        def matches(row: tuple) -> bool:
            return predicate is None or predicate(row, env) is True

        def updater(row: tuple) -> tuple:
            new_row = list(row)
            for index, compiled in assignments:
                new_row[index] = compiled(row, env)
            return tuple(new_row)

        return table.update_rows(matches, updater)

    def _execute_delete(self, statement: ast.Delete) -> int:
        table = self.table(statement.table)
        compiler, _ = self._row_compiler(table)
        predicate = (
            compiler.compile(statement.where)
            if statement.where is not None
            else None
        )
        env = Env(subq={})
        if predicate is None:
            count = len(table)
            table.truncate()
            return count
        return table.delete_rows(lambda row: predicate(row, env) is True)

    # -- DDL -----------------------------------------------------------------------

    def _execute_create(self, statement: ast.CreateTable) -> None:
        columns = [_column_from_def(definition) for definition in statement.columns]
        self.create_table(TableSchema(statement.name, columns))

    def _execute_create_index(self, statement: ast.CreateIndex) -> None:
        """CREATE INDEX: staged in the transaction's catalog overlay when one
        is active (visible at commit, first-committer-wins on the index
        name), an autocommit DDL record otherwise."""
        definition = IndexDefinition(
            name=statement.name,
            table=statement.table,
            columns=statement.columns,
            kind=statement.kind,
            partitioned_by=statement.partitioned_by,
        )
        txn = current_transaction(self.transactions)
        if txn is None:
            normalized = self.indexes.create(definition)
            self._ddl_autocommit(
                [
                    CatalogOp(
                        "index",
                        normalized.name,
                        normalized,
                        wal={"op": "create_index", "definition": normalized},
                        describe=f"CREATE INDEX {normalized.name}",
                    )
                ]
            )
            return
        normalized = self.indexes.normalize(definition)
        if (
            self.indexes.find(normalized.name) is not None
            or txn.has_staged_catalog("index", normalized.name)
        ):
            raise CatalogError(f"index {normalized.name!r} already exists")
        txn.add_catalog_op(
            CatalogOp(
                "index",
                normalized.name,
                normalized,
                wal={"op": "create_index", "definition": normalized},
                apply=lambda ts: self.indexes.register(normalized),
                validate=lambda: self._require_index_absent(normalized.name),
                describe=f"CREATE INDEX {normalized.name}",
            )
        )

    def _execute_drop_index(self, statement: ast.DropIndex) -> None:
        """DROP INDEX: staged when a transaction is active, else autocommit."""
        txn = current_transaction(self.transactions)
        if txn is None:
            dropped = self.indexes.drop(statement.name)
            self._ddl_autocommit(
                [
                    CatalogOp(
                        "index",
                        dropped.name,
                        None,
                        wal={"op": "drop_index", "name": dropped.name},
                        describe=f"DROP INDEX {dropped.name}",
                    )
                ]
            )
            return
        key = statement.name.lower()
        self.indexes.get(key)  # unknown names raise at statement time
        txn.add_catalog_op(
            CatalogOp(
                "index",
                key,
                None,
                wal={"op": "drop_index", "name": key},
                apply=lambda ts: self.indexes.drop(key),
                validate=lambda: self.indexes.get(key),
                describe=f"DROP INDEX {key}",
            )
        )

    def _require_index_absent(self, name: str) -> None:
        if self.indexes.find(name) is not None:
            raise CatalogError(f"index {name!r} already exists")

    # -- instrumentation ---------------------------------------------------------------

    def register_function(self, name: str, func, strict: bool = True) -> None:
        """Install a scalar UDF (the paper's ``compliesWith`` goes here)."""
        self.functions.register(name, func, strict)

    def function_calls(self, name: str) -> int:
        """Invocation count of a registered function since the last reset."""
        return self.functions.call_count(name)

    def reset_function_counters(self) -> None:
        """Zero all function invocation counters."""
        self.functions.reset_counters()


def _column_from_def(definition: ast.ColumnDef) -> Column:
    default = None
    if definition.default is not None:
        default = _constant(definition.default, None)
    return Column(
        definition.name,
        SqlType.from_name(definition.type_name),
        primary_key=definition.primary_key,
        not_null=definition.not_null,
        default=default,
    )


def _constant(expression: ast.Expression, database: "Database | None") -> object:
    """Evaluate a row-independent expression (INSERT values, defaults)."""
    registry = database.functions if database is not None else FunctionRegistry()
    compiler = ExpressionCompiler(Scope(RowShape([])), registry)
    return compiler.compile(expression)((), Env())
