"""The logical-plan IR.

A :class:`~repro.engine.plan.planner.Planner` turns one SELECT block into a
tree of these nodes — the *logical* plan — which the rule-based
:class:`~repro.engine.plan.optimizer.Optimizer` then transforms (predicate
pushdown, ``complieswith``-guard hoisting, projection pruning, constant
folding, hash-join selection) before the executor compiles it into physical
:class:`~repro.engine.executor.SourcePlan` operators.

The node set mirrors the classic relational-operator vocabulary:

========================  ======================================================
node                      meaning
========================  ======================================================
:class:`Scan`             base-table sequential scan (optionally narrowed)
:class:`IndexScan`        equality probe of a secondary index
:class:`IndexRangeScan`   B-tree range scan of a secondary index
:class:`DerivedTable`     a FROM-clause subquery, planned as its own block
:class:`Filter`           a conjunction of predicates over its input
:class:`PolicyGuard`      a hoisted ``complieswith`` conjunct answered from the
                          policy bitmap cache instead of per-row UDF calls
:class:`NestedLoop`       nested-loop (or cross) join
:class:`HashJoin`         equi-join executed by hashing the right side
:class:`Aggregate`        GROUP BY / aggregate evaluation
:class:`Project`          the SELECT list (with DISTINCT)
:class:`Sort`             ORDER BY
:class:`Limit`            LIMIT / OFFSET
:class:`SetOp`            UNION / INTERSECT / EXCEPT over block plans
:class:`Values`           the implicit one-row source of a FROM-less SELECT
========================  ======================================================

Nodes are deliberately mutable: optimizer passes splice filters, guards and
join replacements into the tree in place, then refresh the cached row
shapes bottom-up.
"""

from __future__ import annotations

from typing import Iterable

from ...sql import ast
from ..schema import RowShape


def _print(expr: ast.Expression) -> str:
    from ...sql.printer import print_expression

    return print_expression(expr)


class LogicalNode:
    """Base class of all logical-plan nodes."""

    #: Display name used by :meth:`label` (subclasses override).
    kind = "Node"

    #: The tuple layout this node produces (source-side nodes only).
    shape: RowShape | None = None

    def children(self) -> tuple["LogicalNode", ...]:
        """The node's inputs, left to right."""
        return ()

    def label(self) -> str:
        """One-line description of this node for logical EXPLAIN output."""
        return self.kind

    def render(self, indent: int = 0) -> list[str]:
        """The logical subtree as indented EXPLAIN lines."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.extend(child.render(indent + 1))
        return lines


class Values(LogicalNode):
    """The implicit single-row, zero-column source of a FROM-less SELECT."""

    kind = "Values"

    def __init__(self) -> None:
        self.shape = RowShape([])

    def label(self) -> str:
        return "Values (one row)"


class Scan(LogicalNode):
    """A sequential scan of one base table.

    ``kept`` is ``None`` for a full-width scan; after projection pruning it
    is the tuple of surviving column names (schema order) and :attr:`shape`
    is narrowed accordingly.
    """

    kind = "Scan"

    def __init__(self, table_name: str, binding: str, shape: RowShape):
        self.table_name = table_name
        self.binding = binding
        self.shape = shape
        self.kept: tuple[str, ...] | None = None

    def label(self) -> str:
        text = f"Scan {self.table_name}"
        if self.binding != self.table_name.lower():
            text += f" as {self.binding}"
        if self.kept is not None:
            text += f" (cols: {', '.join(self.kept)})"
        return text


class IndexScan(Scan):
    """An equality probe of a secondary index (``column = literal``).

    Subclasses :class:`Scan` so every shape/pruning pass that handles
    scans handles index scans identically; the executor compiles it into a
    row-id lookup against the :class:`~repro.engine.index.IndexManager`
    instead of a sequential walk.  The matched conjunct deliberately stays
    in the residual filter (a *recheck*): the index only narrows the
    candidate rows, so dropping the index — or a stale entry rebuilding
    mid-flight — can never change results.
    """

    kind = "IndexScan"

    def __init__(
        self,
        scan: Scan,
        index_name: str,
        column: str,
        value: object,
        estimated_rows: int | None = None,
    ):
        super().__init__(scan.table_name, scan.binding, scan.shape)
        self.kept = scan.kept
        self.index_name = index_name
        self.column = column
        self.value = value
        self.estimated_rows = estimated_rows

    def _predicate(self) -> str:
        return f"{self.column} = {_print(ast.Literal(self.value))}"

    def label(self) -> str:
        text = f"{self.kind} {self.table_name}"
        if self.binding != self.table_name.lower():
            text += f" as {self.binding}"
        text += f" using {self.index_name} [{self._predicate()}]"
        if self.estimated_rows is not None:
            text += f" (est={self.estimated_rows})"
        if self.kept is not None:
            text += f" (cols: {', '.join(self.kept)})"
        return text


class IndexRangeScan(IndexScan):
    """A B-tree range scan (``column < / <= / > / >= / BETWEEN literals``).

    Emits candidate row ids in ascending storage order, so downstream
    operators observe the same row order a sequential scan plus filter
    would.
    """

    kind = "IndexRangeScan"

    def __init__(
        self,
        scan: Scan,
        index_name: str,
        column: str,
        lower: object = None,
        upper: object = None,
        lower_inclusive: bool = True,
        upper_inclusive: bool = True,
        estimated_rows: int | None = None,
    ):
        super().__init__(scan, index_name, column, None, estimated_rows)
        self.lower = lower
        self.upper = upper
        self.lower_inclusive = lower_inclusive
        self.upper_inclusive = upper_inclusive

    def _predicate(self) -> str:
        parts = []
        if self.lower is not None:
            op = ">=" if self.lower_inclusive else ">"
            parts.append(f"{self.column} {op} {_print(ast.Literal(self.lower))}")
        if self.upper is not None:
            op = "<=" if self.upper_inclusive else "<"
            parts.append(f"{self.column} {op} {_print(ast.Literal(self.upper))}")
        return " and ".join(parts) if parts else f"{self.column} unbounded"


class DerivedTable(LogicalNode):
    """A FROM-clause subquery; the inner block is planned independently."""

    kind = "DerivedTable"

    def __init__(self, alias: str, select: ast.Select, prepared, shape: RowShape):
        self.alias = alias
        self.select = select
        #: The inner block's :class:`~repro.engine.executor.PreparedSelect`.
        self.prepared = prepared
        self.shape = shape

    def children(self) -> tuple[LogicalNode, ...]:
        block = getattr(self.prepared, "block", None)
        return (block.root,) if block is not None else ()

    def label(self) -> str:
        return f"DerivedTable {self.alias}"


class Filter(LogicalNode):
    """A conjunction of predicates applied to one input.

    When built from a decomposable WHERE clause the predicate is kept as the
    ordered ``conjuncts`` list (what pushdown consumes); otherwise —
    outer-join blocks, where pushdown is unsafe — the undecomposed
    ``original`` expression is carried instead.  ``pushed`` marks leaf
    filters created by the pushdown pass.
    """

    kind = "Filter"

    def __init__(
        self,
        conjuncts: list[ast.Expression] | None,
        original: ast.Expression | None,
        input: LogicalNode,
        pushed: bool = False,
    ):
        self.conjuncts = conjuncts
        self.original = original
        self.input = input
        self.pushed = pushed

    @property
    def shape(self) -> RowShape | None:  # type: ignore[override]
        return self.input.shape

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.input,)

    def is_empty(self) -> bool:
        """True when every conjunct has been claimed elsewhere."""
        return self.original is None and not self.conjuncts

    def residual_expression(self) -> ast.Expression | None:
        """The remaining predicate as one AND-chain (original order)."""
        if self.original is not None:
            return self.original
        residual: ast.Expression | None = None
        for expression in self.conjuncts or []:
            residual = (
                expression
                if residual is None
                else ast.BinaryOp("AND", residual, expression)
            )
        return residual

    def render(self, indent: int = 0) -> list[str]:
        # A fully claimed filter is a no-op; rendering "Filter [true]" would
        # suggest residual work, so the node disappears from the plan text.
        if self.is_empty():
            return self.input.render(indent)
        return super().render(indent)

    def label(self) -> str:
        expression = self.residual_expression()
        rendered = _print(expression) if expression is not None else "true"
        return f"Filter [{rendered}]"


class PolicyGuard(LogicalNode):
    """A hoisted per-table ``complieswith`` conjunct over a base-table scan.

    The guards are the rewriter's Def.-15 conjuncts verbatim; at execution
    time they are answered from the
    :class:`~repro.engine.plan.bitmap.PolicyBitmapCache` — one UDF call per
    *distinct* policy value per mask, then a row-index set intersection —
    instead of one UDF call per row.
    """

    kind = "PolicyGuard"

    def __init__(self, guards: list[ast.FunctionCall], scan: Scan):
        self.guards = guards
        self.scan = scan
        #: Name of a policy-partitioned index the executor may prune with:
        #: whole partitions (runs of row ids sharing one policy value) are
        #: skipped when the bitmap says their value fails the mask.  Set by
        #: the optimizer's ``access_path_selection`` pass; ``None`` keeps
        #: the positional bitmap-intersection path.
        self.partitioned: str | None = None

    @property
    def shape(self) -> RowShape | None:  # type: ignore[override]
        return self.scan.shape

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.scan,)

    def label(self) -> str:
        rendered = " and ".join(_print(guard) for guard in self.guards)
        text = f"PolicyGuard [{rendered}]"
        if self.partitioned is not None:
            text += f" (partitions: {self.partitioned})"
        return text


class NestedLoop(LogicalNode):
    """A nested-loop join (``condition is None`` means cross join)."""

    kind = "NestedLoop"

    def __init__(
        self,
        join_kind: str,
        condition: ast.Expression | None,
        left: LogicalNode,
        right: LogicalNode,
        shape: RowShape,
    ):
        self.join_kind = join_kind
        self.condition = condition
        self.left = left
        self.right = right
        self.shape = shape

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        if self.condition is None:
            return "NestedLoop (cross)"
        return f"NestedLoop ({self.join_kind.lower()}) on {_print(self.condition)}"


class HashJoin(LogicalNode):
    """An equi-join selected by the ``hash_join_selection`` pass."""

    kind = "HashJoin"

    def __init__(
        self,
        join_kind: str,
        equi_pairs: list[tuple[ast.Expression, ast.Expression]],
        residual: ast.Expression | None,
        left: LogicalNode,
        right: LogicalNode,
        shape: RowShape,
    ):
        self.join_kind = join_kind
        self.equi_pairs = equi_pairs
        self.residual = residual
        self.left = left
        self.right = right
        self.shape = shape
        #: Which input is hashed.  The legacy choice is ``"right"``; the
        #: optimizer flips INNER joins to ``"left"`` when fresh statistics
        #: say the left input is smaller.
        self.build_side: str = "right"

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        keys = ", ".join(
            f"{_print(le)} = {_print(re)}" for le, re in self.equi_pairs
        )
        text = f"HashJoin ({self.join_kind.lower()}) on {keys}"
        if self.build_side != "right":
            text += f" (build: {self.build_side})"
        return text


class Aggregate(LogicalNode):
    """GROUP BY / aggregate evaluation over one input."""

    kind = "Aggregate"

    def __init__(self, group_by: tuple[ast.Expression, ...], input: LogicalNode):
        self.group_by = group_by
        self.input = input

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.input,)

    def label(self) -> str:
        if not self.group_by:
            return "Aggregate"
        keys = ", ".join(_print(e) for e in self.group_by)
        return f"Aggregate group by [{keys}]"


class Project(LogicalNode):
    """The SELECT list (plus DISTINCT) over one input."""

    kind = "Project"

    def __init__(
        self,
        items: tuple[ast.SelectItem, ...],
        distinct: bool,
        input: LogicalNode,
    ):
        self.items = items
        self.distinct = distinct
        self.input = input

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.input,)

    def label(self) -> str:
        rendered = ", ".join(
            "*" if isinstance(item.expression, ast.Star) and item.expression.table is None
            else f"{item.expression.table}.*" if isinstance(item.expression, ast.Star)
            else _print(item.expression)
            for item in self.items
        )
        prefix = "Project distinct" if self.distinct else "Project"
        return f"{prefix} [{rendered}]"


class Sort(LogicalNode):
    """ORDER BY over one input."""

    kind = "Sort"

    def __init__(self, order_by: tuple[ast.OrderItem, ...], input: LogicalNode):
        self.order_by = order_by
        self.input = input

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.input,)

    def label(self) -> str:
        keys = ", ".join(
            _print(item.expression) + (" desc" if item.descending else "")
            for item in self.order_by
        )
        return f"Sort [{keys}]"


class Limit(LogicalNode):
    """LIMIT / OFFSET over one input."""

    kind = "Limit"

    def __init__(self, limit: int | None, offset: int | None, input: LogicalNode):
        self.limit = limit
        self.offset = offset
        self.input = input

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.input,)

    def label(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        if self.offset is not None:
            parts.append(f"offset {self.offset}")
        return f"Limit [{' '.join(parts)}]"


class SetOp(LogicalNode):
    """A UNION / INTERSECT / EXCEPT chain over per-block logical plans."""

    kind = "SetOp"

    def __init__(self, ops: list[str], branches: list[LogicalNode]):
        self.ops = ops
        self.branches = branches

    def children(self) -> tuple[LogicalNode, ...]:
        return tuple(self.branches)

    def label(self) -> str:
        return f"SetOp [{' '.join(op.lower() for op in self.ops)}]"


def walk(node: LogicalNode) -> Iterable[LogicalNode]:
    """Depth-first, left-to-right iteration over a logical tree."""
    yield node
    for child in node.children():
        yield from walk(child)
