"""Logical plans and the rule-based optimizer.

The plan subsystem splits SELECT processing into three explicit stages
(DESIGN.md §11): a :class:`Planner` builds a logical-plan IR from the
(rewritten) AST, an :class:`Optimizer` runs an ordered pass pipeline over
it, and the executor compiles the optimized IR into physical operators.
:class:`PolicyBitmapCache` backs the ``policy_guard_hoist`` pass, answering
the rewriter's per-table ``complieswith`` conjuncts with cached row-index
sets — one UDF evaluation per *distinct* policy value instead of one per
row.
"""

from .bitmap import PolicyBitmapCache
from .nodes import (
    Aggregate,
    DerivedTable,
    Filter,
    HashJoin,
    IndexRangeScan,
    IndexScan,
    Limit,
    LogicalNode,
    NestedLoop,
    PolicyGuard,
    Project,
    Scan,
    SetOp,
    Sort,
    Values,
    walk,
)
from .optimizer import (
    BASELINE_PASSES,
    FULL_PASSES,
    OPTIMIZER_ENV,
    Optimizer,
    resolve_optimizer_mode,
    split_equi_condition,
)
from .planner import BlockPlan, Planner, has_outer_join

__all__ = [
    "Aggregate",
    "BASELINE_PASSES",
    "BlockPlan",
    "DerivedTable",
    "FULL_PASSES",
    "Filter",
    "HashJoin",
    "IndexRangeScan",
    "IndexScan",
    "Limit",
    "LogicalNode",
    "NestedLoop",
    "OPTIMIZER_ENV",
    "Optimizer",
    "Planner",
    "PolicyBitmapCache",
    "PolicyGuard",
    "Project",
    "Scan",
    "SetOp",
    "Sort",
    "Values",
    "has_outer_join",
    "resolve_optimizer_mode",
    "split_equi_condition",
    "walk",
]
