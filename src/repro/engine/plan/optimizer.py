"""The rule-based optimizer: an ordered pipeline of plan-rewrite passes.

Two pipelines exist.  ``off`` runs the legacy pair of rewrites the
tree-walking executor always applied (single-source predicate pushdown and
equi-join hash-join selection), reproducing the pre-IR engine's plans —
and its ``complieswith`` invocation counts — exactly.  ``on`` adds the
passes the IR makes expressible:

1. ``constant_folding`` — evaluate literal-only arithmetic subtrees in
   filter conjuncts and join conditions once, at plan time.
2. ``predicate_pushdown`` — move single-source conjuncts to their leaf
   (generalizes the legacy ``_PushdownSet``).
3. ``policy_guard_hoist`` — lift the rewriter's per-table ``complieswith``
   conjuncts out of pushed filters into :class:`PolicyGuard` nodes directly
   above their base-table scans, where the
   :class:`~repro.engine.plan.bitmap.PolicyBitmapCache` answers them with a
   row-index set instead of per-row UDF calls.
4. ``access_path_selection`` — cost-based access paths (DESIGN.md §13):
   convert a pushed filter's scan into an :class:`IndexScan` /
   :class:`IndexRangeScan` when a matching secondary index exists and the
   estimated selectivity (from ``ANALYZE`` statistics, with heuristic
   defaults) is favorable, and mark :class:`PolicyGuard` nodes whose table
   carries a policy-partitioned index for partition pruning.  Runs only
   when the index mode resolves to ``on``.
5. ``hash_join_selection`` — replace conditioned nested loops whose ON
   clause contains side-separable equalities with hash joins; with fresh
   statistics (and indexes on) the smaller estimated side becomes the
   build side.
6. ``projection_pruning`` — narrow base-table scans to the columns the rest
   of the plan references.

Ordering invariants: folding precedes pushdown (a folded conjunct may
become pushable); hoisting runs *after* pushdown because only a
pushdown-claimed conjunct is known to be safe at the scan (pushdown is
disabled under outer joins, which is exactly when hoisting would be wrong
too); access-path selection runs after hoisting so hoisted guards are
already out of the conjunct lists it inspects; pruning runs last so every
earlier pass sees full-width shapes, and name resolution of claimed
conjuncts is re-checked against the pre-pruning ``binder_shape``.
"""

from __future__ import annotations

import dataclasses
import os

from ...errors import CatalogError
from ...sql import ast
from ..schema import RowShape
from .nodes import (
    DerivedTable,
    Filter,
    HashJoin,
    IndexRangeScan,
    IndexScan,
    LogicalNode,
    NestedLoop,
    PolicyGuard,
    Scan,
    Values,
    walk,
)
from .planner import BlockPlan

#: Environment variable consulted when no explicit mode is given.
OPTIMIZER_ENV = "REPRO_OPTIMIZER"

#: The legacy rewrites: what the pre-IR executor always did.
BASELINE_PASSES = ("predicate_pushdown", "hash_join_selection")

#: The full pipeline (see module docstring for the ordering invariants).
FULL_PASSES = (
    "constant_folding",
    "predicate_pushdown",
    "policy_guard_hoist",
    "access_path_selection",
    "hash_join_selection",
    "projection_pruning",
)

_ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})

#: Heuristic selectivities used when no fresh statistics exist.
DEFAULT_EQUALITY_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 0.25

#: An index access path is only chosen when the estimated fraction of
#: surviving rows is at most this (a near-full scan through an index is
#: strictly worse than the sequential scan).
INDEX_SELECTIVITY_THRESHOLD = 0.5

_RANGE_OPS = frozenset({"<", "<=", ">", ">="})


def resolve_optimizer_mode(mode: str | None = None) -> str:
    """Normalize an optimizer mode: explicit > ``$REPRO_OPTIMIZER`` > on."""
    if mode is None:
        mode = os.environ.get(OPTIMIZER_ENV) or "on"
    mode = mode.lower()
    if mode not in ("on", "off"):
        raise ValueError(f"optimizer mode must be 'on' or 'off', got {mode!r}")
    return mode


class Optimizer:
    """Runs the pass pipeline for one mode over block plans.

    ``indexes`` carries the resolved index mode (``"on"``/``"off"``): it
    gates the ``access_path_selection`` pass and the cost-based build-side
    choice in ``hash_join_selection``, so ``REPRO_INDEXES=off`` reproduces
    the pre-index plans exactly (the differential reference).
    """

    def __init__(self, mode: str, database, indexes: str = "on"):
        self.mode = resolve_optimizer_mode(mode)
        self.database = database
        self.index_mode = indexes
        self.passes = FULL_PASSES if self.mode == "on" else BASELINE_PASSES

    def optimize(self, block: BlockPlan) -> BlockPlan:
        for name in self.passes:
            getattr(self, f"_pass_{name}")(block)
        return block

    # -- constant folding --------------------------------------------------------

    def _pass_constant_folding(self, block: BlockPlan) -> None:
        folded = 0

        def fold(expression: ast.Expression) -> ast.Expression:
            nonlocal folded
            new, changed = _fold_expression(expression, self.database.functions)
            if changed:
                folded += 1
            return new

        if block.filter is not None:
            if block.filter.conjuncts is not None:
                block.filter.conjuncts = [
                    fold(c) for c in block.filter.conjuncts
                ]
            elif block.filter.original is not None:
                block.filter.original = fold(block.filter.original)
        for node in _block_nodes(block.source_root):
            if isinstance(node, NestedLoop) and node.condition is not None:
                node.condition = fold(node.condition)
        if folded:
            block.notes.append(
                f"constant_folding: folded {folded} expression(s)"
            )

    def _rewire_spine(self, block: BlockPlan, previous_root) -> None:
        """Re-point the spine at a replaced source tree.

        Passes that return a new node for ``block.source_root`` must update
        whoever held the old one: the block filter when there is a WHERE,
        otherwise the spine's bottom node (Aggregate/Project/...), which
        references the source tree directly.
        """
        if block.filter is not None:
            block.filter.input = block.source_root
        elif block.source_root is not previous_root:
            for node in walk(block.root):
                if getattr(node, "input", None) is previous_root:
                    node.input = block.source_root

    # -- predicate pushdown ------------------------------------------------------

    def _pass_predicate_pushdown(self, block: BlockPlan) -> None:
        block_filter = block.filter
        if block_filter is None or block_filter.conjuncts is None:
            return  # no WHERE, or outer-join block (kept whole)
        ledger = [[conjunct, False] for conjunct in block_filter.conjuncts]

        def visit(node: LogicalNode) -> LogicalNode:
            if isinstance(node, (Scan, DerivedTable)):
                claimed = []
                for entry in ledger:
                    expression, consumed = entry
                    if consumed:
                        continue
                    if _pushable_to(expression, node.shape):
                        entry[1] = True
                        claimed.append(expression)
                if claimed:
                    leaf = node.binding if isinstance(node, Scan) else node.alias
                    block.notes.append(
                        f"predicate_pushdown: pushed {len(claimed)} "
                        f"conjunct(s) to {leaf}"
                    )
                    return Filter(claimed, None, node, pushed=True)
                return node
            if isinstance(node, (NestedLoop, HashJoin)):
                node.left = visit(node.left)
                node.right = visit(node.right)
            return node

        block.source_root = visit(block.source_root)
        block_filter.input = block.source_root
        # Claimed conjuncts leave the residual; keep them (in original WHERE
        # order) for the block-wide ambiguity re-check.
        block.claimed = [expr for expr, consumed in ledger if consumed]
        block_filter.conjuncts = [
            expr for expr, consumed in ledger if not consumed
        ]

    # -- policy-guard hoisting ---------------------------------------------------

    def _pass_policy_guard_hoist(self, block: BlockPlan) -> None:
        function_name = getattr(self.database, "policy_function", None)
        policy_column = getattr(self.database, "policy_column", None)
        if not function_name or not policy_column:
            return

        def visit(node: LogicalNode) -> LogicalNode:
            if (
                isinstance(node, Filter)
                and node.pushed
                and isinstance(node.input, Scan)
            ):
                scan = node.input
                guards = [
                    conjunct
                    for conjunct in node.conjuncts or []
                    if _is_policy_guard(
                        conjunct, function_name, policy_column, scan.binding
                    )
                ]
                if not guards:
                    return node
                guard_ids = {id(guard) for guard in guards}
                others = [
                    conjunct
                    for conjunct in node.conjuncts or []
                    if id(conjunct) not in guard_ids
                ]
                block.hoisted.extend(guards)
                block.notes.append(
                    f"policy_guard_hoist: {len(guards)} guard(s) on "
                    f"{scan.binding} answered by policy bitmap"
                )
                guard_node = PolicyGuard(guards, scan)
                if others:
                    node.conjuncts = others
                    node.input = guard_node
                    return node
                return guard_node
            if isinstance(node, (NestedLoop, HashJoin)):
                node.left = visit(node.left)
                node.right = visit(node.right)
            elif isinstance(node, Filter):
                node.input = visit(node.input)
            return node

        previous_root = block.source_root
        block.source_root = visit(block.source_root)
        self._rewire_spine(block, previous_root)

    # -- access-path selection (DESIGN.md §13) -----------------------------------

    def _pass_access_path_selection(self, block: BlockPlan) -> None:
        if self.index_mode != "on":
            return  # REPRO_INDEXES=off: the differential reference plans
        manager = getattr(self.database, "indexes", None)
        if manager is None or not len(manager):
            return

        def visit(node: LogicalNode) -> LogicalNode:
            if isinstance(node, Filter):
                node.input = visit(node.input)
                if node.pushed and type(node.input) is Scan:
                    replacement = self._select_index_path(block, node)
                    if replacement is not None:
                        node.input = replacement
                return node
            if isinstance(node, PolicyGuard):
                defn = manager.partitioned_for(node.scan.table_name)
                if defn is not None and type(node.scan) is Scan:
                    node.partitioned = defn.name
                    block.notes.append(
                        f"access_path_selection: guard on {node.scan.binding} "
                        f"prunes partitions of {defn.name}"
                    )
                return node
            if isinstance(node, (NestedLoop, HashJoin)):
                node.left = visit(node.left)
                node.right = visit(node.right)
            return node

        previous_root = block.source_root
        block.source_root = visit(block.source_root)
        self._rewire_spine(block, previous_root)

    def _select_index_path(
        self, block: BlockPlan, filter_node: Filter
    ) -> Scan | None:
        """The cheapest index access path for a pushed filter's scan.

        The matched conjunct stays in the filter as a recheck, so the
        conversion can only narrow the candidate set — never change
        results.  Scans whose residual calls the policy UDF are left alone:
        narrowing the rows the residual sees would change the per-row call
        count the differential harness audits.
        """
        scan = filter_node.input
        assert isinstance(scan, Scan)
        conjuncts = filter_node.conjuncts or []
        if not conjuncts:
            return None
        function_name = getattr(self.database, "policy_function", None)
        if function_name and any(
            _references_function(conjunct, function_name)
            for conjunct in conjuncts
        ):
            return None
        manager = self.database.indexes
        try:
            table = self.database.table(scan.table_name)
        except CatalogError:
            return None
        row_count = len(table.rows)
        stats = self.database.statistics.fresh(table)

        best: tuple[int, object, str, tuple] | None = None
        for conjunct in conjuncts:
            candidate = _index_candidate(conjunct, scan.binding)
            if candidate is None:
                continue
            column, spec = candidate
            defn = _find_index(manager, scan.table_name, column, spec[0])
            if defn is None:
                continue
            estimated = _estimate_candidate(stats, row_count, column, spec)
            if row_count and estimated / row_count > INDEX_SELECTIVITY_THRESHOLD:
                continue
            if best is None or estimated < best[0]:
                best = (estimated, defn, column, spec)
        if best is None:
            return None
        estimated, defn, column, spec = best
        if spec[0] == "eq":
            replacement: IndexScan = IndexScan(
                scan, defn.name, column, spec[1], estimated
            )
        else:
            _, lower, upper, lower_inclusive, upper_inclusive = spec
            replacement = IndexRangeScan(
                scan, defn.name, column,
                lower, upper, lower_inclusive, upper_inclusive, estimated,
            )
        block.notes.append(
            f"access_path_selection: {scan.binding} via {replacement.kind} "
            f"on {defn.name} (est={estimated})"
        )
        return replacement

    # -- hash-join selection -----------------------------------------------------

    def _pass_hash_join_selection(self, block: BlockPlan) -> None:
        def visit(node: LogicalNode) -> LogicalNode:
            if isinstance(node, (NestedLoop, HashJoin)):
                node.left = visit(node.left)
                node.right = visit(node.right)
            elif isinstance(node, Filter):
                node.input = visit(node.input)
            if isinstance(node, NestedLoop) and node.condition is not None:
                pairs, residual = split_equi_condition(
                    node.condition, node.left.shape, node.right.shape
                )
                if pairs:
                    keys = ", ".join(
                        f"{_print(le)} = {_print(re)}" for le, re in pairs
                    )
                    block.notes.append(
                        f"hash_join_selection: hash join "
                        f"({node.join_kind.lower()}) on {keys}"
                    )
                    join = HashJoin(
                        node.join_kind, pairs, residual,
                        node.left, node.right, node.shape,
                    )
                    self._choose_build_side(block, join)
                    return join
            return node

        previous_root = block.source_root
        block.source_root = visit(block.source_root)
        self._rewire_spine(block, previous_root)

    def _choose_build_side(self, block: BlockPlan, join: HashJoin) -> None:
        """Hash the smaller estimated input (INNER joins, indexes on).

        Estimates come only from fresh ``ANALYZE`` statistics (or index
        path estimates derived from them), so without an ``ANALYZE`` the
        legacy build-on-the-right behavior is preserved bit for bit.
        """
        if self.mode != "on" or self.index_mode != "on":
            return
        if join.join_kind != "INNER":
            return
        left = self._estimate_rows(join.left)
        right = self._estimate_rows(join.right)
        if left is None or right is None:
            return
        if left < right:
            join.build_side = "left"
            block.notes.append(
                f"hash_join_selection: build side = left "
                f"(est {left} vs {right})"
            )

    def _estimate_rows(self, node: LogicalNode) -> int | None:
        """Estimated output cardinality, or ``None`` when unknowable."""
        if isinstance(node, IndexScan):  # covers IndexRangeScan
            return node.estimated_rows
        if isinstance(node, Scan):
            try:
                table = self.database.table(node.table_name)
            except CatalogError:
                return None
            stats = self.database.statistics.fresh(table)
            return stats.row_count if stats is not None else None
        if isinstance(node, Filter):
            base = self._estimate_rows(node.input)
            if base is None:
                return None
            count = len(node.conjuncts or [])
            if isinstance(node.input, IndexScan) and count:
                count -= 1  # the matched conjunct is a recheck, counted already
            if not count:
                return base
            return max(1, round(base * (0.33 ** count)))
        if isinstance(node, PolicyGuard):
            base = self._estimate_rows(node.scan)
            return None if base is None else max(1, base // 2)
        return None

    # -- projection pruning ------------------------------------------------------

    def _pass_projection_pruning(self, block: BlockPlan) -> None:
        select = block.select
        if any(isinstance(item.expression, ast.Star) for item in select.items):
            return  # `*` needs the full shape

        unqualified: set[str] = set()
        qualified: set[tuple[str, str]] = set()

        def collect(expression: ast.Expression) -> None:
            _collect_refs(expression, unqualified, qualified)

        # Everything the rest of the plan evaluates — except the hoisted
        # guards, whose policy-column reads happen through the bitmap cache
        # rather than through row tuples.
        hoisted_ids = {id(guard) for guard in block.hoisted}
        if block.filter is not None:
            if block.filter.original is not None:
                collect(block.filter.original)
            for conjunct in block.filter.conjuncts or []:
                collect(conjunct)
        for node in _block_nodes(block.source_root):
            if isinstance(node, Filter):
                for conjunct in node.conjuncts or []:
                    if id(conjunct) not in hoisted_ids:
                        collect(conjunct)
            elif isinstance(node, NestedLoop):
                if node.condition is not None:
                    collect(node.condition)
            elif isinstance(node, HashJoin):
                for left_expr, right_expr in node.equi_pairs:
                    collect(left_expr)
                    collect(right_expr)
                if node.residual is not None:
                    collect(node.residual)
        for item in select.items:
            collect(item.expression)
        for expression in select.group_by:
            collect(expression)
        if select.having is not None:
            collect(select.having)
        for order_item in select.order_by:
            collect(order_item.expression)

        narrowed = 0
        for node in _block_nodes(block.source_root):
            if not isinstance(node, Scan):
                continue
            table = self.database.table(node.table_name)
            columns = table.schema.columns
            if not columns:
                continue
            keep = [
                column.name.lower()
                for column in columns
                if column.name.lower() in unqualified
                or (node.binding, column.name.lower()) in qualified
            ]
            if len(keep) == len(columns):
                continue
            if not keep:
                keep = [columns[0].name.lower()]  # never a zero-width scan
            node.kept = tuple(keep)
            node.shape = _narrowed_shape(node, table)
            narrowed += 1
            block.notes.append(
                f"projection_pruning: {node.binding} narrowed to "
                f"{len(keep)}/{len(columns)} column(s)"
            )
        if narrowed:
            _refresh_shapes(block.source_root)


# ---------------------------------------------------------------------------
# Shared helpers (also used by the planner/executor)
# ---------------------------------------------------------------------------


def _print(expression: ast.Expression) -> str:
    from ...sql.printer import print_expression

    return print_expression(expression)


def _block_nodes(node: LogicalNode):
    """This block's source nodes, stopping at derived-table boundaries."""
    yield node
    if isinstance(node, DerivedTable):
        return  # the inner block optimizes itself
    for child in node.children():
        yield from _block_nodes(child)


def shape_has(shape: RowShape, name: str, table: str | None) -> bool:
    """True when the shape can resolve the reference unambiguously."""
    try:
        shape.resolve(name, table)
    except CatalogError:
        return False
    return True


def _pushable_to(expression: ast.Expression, shape: RowShape) -> bool:
    """All column refs resolve in ``shape``, at least one ref, no subqueries."""
    refs = list(ast.iter_column_refs(expression))
    if not refs:
        return False
    for node in ast.walk_expression(expression):
        if node.child_selects():
            return False
    for ref in refs:
        table = ref.table.lower() if ref.table else None
        if not shape_has(shape, ref.name.lower(), table):
            return False
    return True


def _references_function(expression: ast.Expression, name: str) -> bool:
    """Whether any function call in the expression targets ``name``."""
    return any(
        isinstance(node, ast.FunctionCall) and node.name.lower() == name
        for node in ast.walk_expression(expression)
    )


def _scan_column(expression: ast.Expression, binding: str) -> str | None:
    """The scan column a reference names, or ``None`` if not this scan's."""
    if not isinstance(expression, ast.ColumnRef):
        return None
    if expression.table is not None and expression.table.lower() != binding:
        return None
    return expression.name.lower()


def _index_candidate(
    conjunct: ast.Expression, binding: str
) -> tuple[str, tuple] | None:
    """Match a conjunct against the indexable predicate shapes.

    Returns ``(column, spec)`` where ``spec`` is ``("eq", value)`` or
    ``("range", lower, upper, lower_inclusive, upper_inclusive)``; only
    column-vs-literal comparisons qualify (parameters re-bind per
    execution, so a prepared plan must not bake their values into an
    access path).
    """
    if isinstance(conjunct, ast.BinaryOp):
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if op == "=":
            column = _scan_column(left, binding)
            if column is not None and isinstance(right, ast.Literal):
                return column, ("eq", right.value)
            column = _scan_column(right, binding)
            if column is not None and isinstance(left, ast.Literal):
                return column, ("eq", left.value)
            return None
        if op in _RANGE_OPS:
            column = _scan_column(left, binding)
            if (
                column is not None
                and isinstance(right, ast.Literal)
                and right.value is not None
            ):
                value = right.value
                if op == "<":
                    return column, ("range", None, value, True, False)
                if op == "<=":
                    return column, ("range", None, value, True, True)
                if op == ">":
                    return column, ("range", value, None, False, True)
                return column, ("range", value, None, True, True)
            column = _scan_column(right, binding)
            if (
                column is not None
                and isinstance(left, ast.Literal)
                and left.value is not None
            ):
                value = left.value  # mirrored: 5 < col  ≡  col > 5
                if op == "<":
                    return column, ("range", value, None, False, True)
                if op == "<=":
                    return column, ("range", value, None, True, True)
                if op == ">":
                    return column, ("range", None, value, True, False)
                return column, ("range", None, value, True, True)
            return None
        return None
    if isinstance(conjunct, ast.Between) and not conjunct.negated:
        column = _scan_column(conjunct.operand, binding)
        if (
            column is not None
            and isinstance(conjunct.low, ast.Literal)
            and isinstance(conjunct.high, ast.Literal)
            and conjunct.low.value is not None
            and conjunct.high.value is not None
        ):
            return column, (
                "range", conjunct.low.value, conjunct.high.value, True, True,
            )
    return None


def _find_index(manager, table_name: str, column: str, access: str):
    """The best single-column index for ``column``: hash wins equality
    probes, only a B-tree can serve a range."""
    equality = access == "eq"
    best = None
    for defn in manager.for_table(table_name):
        if len(defn.columns) != 1 or defn.columns[0] != column:
            continue
        if defn.kind == "hash":
            if equality:
                return defn  # O(1) probe beats the tree descent
            continue
        if best is None:
            best = defn
    return best


def _estimate_candidate(stats, row_count: int, column: str, spec: tuple) -> int:
    """Estimated matching rows: fresh statistics, else heuristic defaults."""
    if spec[0] == "eq":
        if stats is not None:
            estimated = stats.estimate_equal(column, spec[1])
            if estimated is not None:
                return estimated
        return max(1, round(row_count * DEFAULT_EQUALITY_SELECTIVITY))
    _, lower, upper, lower_inclusive, upper_inclusive = spec
    if stats is not None:
        estimated = stats.estimate_range(
            column, lower, upper, lower_inclusive, upper_inclusive
        )
        if estimated is not None:
            return estimated
    return max(1, round(row_count * DEFAULT_RANGE_SELECTIVITY))


def _is_policy_guard(
    expression: ast.Expression,
    function_name: str,
    policy_column: str,
    binding: str,
) -> bool:
    """Match the rewriter's ``complieswith(b'<mask>', t.policy)`` shape."""
    if not isinstance(expression, ast.FunctionCall):
        return False
    if expression.name.lower() != function_name or expression.distinct:
        return False
    if len(expression.args) != 2:
        return False
    mask, column = expression.args
    if not isinstance(mask, ast.BitStringLiteral):
        return False
    if not isinstance(column, ast.ColumnRef):
        return False
    if column.name.lower() != policy_column:
        return False
    return column.table is None or column.table.lower() == binding


def split_equi_condition(
    condition: ast.Expression,
    left_shape: RowShape,
    right_shape: RowShape,
) -> tuple[list[tuple[ast.Expression, ast.Expression]], ast.Expression | None]:
    """Split an ON condition into hashable equi-pairs and a residual.

    Returns ``(pairs, residual)`` where each pair is ``(left_expr,
    right_expr)`` with the left expression referencing only left-side
    columns and vice versa.
    """
    conjuncts: list[ast.Expression] = []

    def flatten(node: ast.Expression) -> None:
        if isinstance(node, ast.BinaryOp) and node.op == "AND":
            flatten(node.left)
            flatten(node.right)
        else:
            conjuncts.append(node)

    flatten(condition)

    def side_of(expression: ast.Expression) -> str | None:
        refs = list(ast.iter_column_refs(expression))
        if not refs or list(ast.iter_subqueries(expression)):
            return None
        sides = set()
        for ref in refs:
            table = ref.table.lower() if ref.table else None
            in_left = shape_has(left_shape, ref.name.lower(), table)
            in_right = shape_has(right_shape, ref.name.lower(), table)
            if in_left and not in_right:
                sides.add("left")
            elif in_right and not in_left:
                sides.add("right")
            else:
                return None  # ambiguous or unknown → not hashable
        if len(sides) == 1:
            return sides.pop()
        return None

    pairs: list[tuple[ast.Expression, ast.Expression]] = []
    residual_parts: list[ast.Expression] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            left_side = side_of(conjunct.left)
            right_side = side_of(conjunct.right)
            if left_side == "left" and right_side == "right":
                pairs.append((conjunct.left, conjunct.right))
                continue
            if left_side == "right" and right_side == "left":
                pairs.append((conjunct.right, conjunct.left))
                continue
        residual_parts.append(conjunct)

    residual: ast.Expression | None = None
    for part in residual_parts:
        residual = (
            part if residual is None else ast.BinaryOp("AND", residual, part)
        )
    return pairs, residual


# -- constant folding internals ------------------------------------------------


def _is_foldable(expression: ast.Expression) -> bool:
    """A non-leaf subtree made entirely of literals and arithmetic."""
    if isinstance(expression, ast.UnaryOp):
        return expression.op in ("-", "+") and _all_literal_arithmetic(
            expression.operand
        )
    if isinstance(expression, ast.BinaryOp) and expression.op in _ARITHMETIC_OPS:
        return _all_literal_arithmetic(
            expression.left
        ) and _all_literal_arithmetic(expression.right)
    return False


def _all_literal_arithmetic(expression: ast.Expression) -> bool:
    if isinstance(expression, ast.Literal):
        return not isinstance(expression.value, bool)
    if isinstance(expression, ast.UnaryOp):
        return expression.op in ("-", "+") and _all_literal_arithmetic(
            expression.operand
        )
    if isinstance(expression, ast.BinaryOp) and expression.op in _ARITHMETIC_OPS:
        return _all_literal_arithmetic(
            expression.left
        ) and _all_literal_arithmetic(expression.right)
    return False


def _evaluate_constant(expression: ast.Expression, registry) -> object:
    # Evaluate through the real expression compiler so folded values match
    # runtime arithmetic (integer division, modulo, numeric coercion) bit
    # for bit.
    from ..expressions import Env, ExpressionCompiler, Scope

    compiler = ExpressionCompiler(Scope(RowShape([])), registry)
    return compiler.compile(expression)((), Env())


def _fold_expression(
    expression: ast.Expression, registry
) -> tuple[ast.Expression, bool]:
    """Fold maximal literal-arithmetic subtrees; identity when unchanged."""
    if isinstance(expression, (ast.Literal, ast.ColumnRef, ast.Parameter,
                               ast.Star, ast.BitStringLiteral)):
        return expression, False
    if _is_foldable(expression):
        try:
            value = _evaluate_constant(expression, registry)
        except Exception:
            return expression, False  # e.g. division by zero: fold at runtime
        if value is None or (
            isinstance(value, (int, float)) and not isinstance(value, bool)
        ):
            return ast.Literal(value), True
        return expression, False
    if not dataclasses.is_dataclass(expression) or isinstance(
        expression, (ast.Select, ast.SetOperation)
    ):
        return expression, False
    changed = False
    updates: dict[str, object] = {}
    for field in dataclasses.fields(expression):
        value = getattr(expression, field.name)
        new_value, value_changed = _fold_field(value, registry)
        if value_changed:
            updates[field.name] = new_value
            changed = True
    if changed:
        return dataclasses.replace(expression, **updates), True
    return expression, False


def _fold_field(value: object, registry) -> tuple[object, bool]:
    if isinstance(value, tuple):
        items = [_fold_field(item, registry) for item in value]
        if any(item_changed for _, item_changed in items):
            return tuple(item for item, _ in items), True
        return value, False
    if isinstance(value, (ast.Select, ast.SetOperation)):
        return value, False  # subquery blocks fold themselves when planned
    if isinstance(value, ast.Expression):
        return _fold_expression(value, registry)
    return value, False


# -- shape maintenance ---------------------------------------------------------


def _narrowed_shape(scan: Scan, table) -> RowShape:
    from ..schema import ColumnBinding

    kept = scan.kept or ()
    bindings = []
    for index, name in enumerate(kept):
        column = table.schema.columns[table.schema.column_index(name)]
        bindings.append(
            ColumnBinding(
                scan.binding,
                column.name.lower(),
                index,
                column.sql_type,
                table.name.lower(),
                column.name.lower(),
            )
        )
    return RowShape(bindings)


def _refresh_shapes(node: LogicalNode) -> RowShape:
    """Recompute merged shapes bottom-up after scans were narrowed."""
    if isinstance(node, (Scan, DerivedTable, Values)):
        return node.shape
    if isinstance(node, Filter):
        return _refresh_shapes(node.input)
    if isinstance(node, PolicyGuard):
        return _refresh_shapes(node.scan)
    if isinstance(node, (NestedLoop, HashJoin)):
        left = _refresh_shapes(node.left)
        right = _refresh_shapes(node.right)
        node.shape = left.merged_with(right)
        return node.shape
    return node.shape


def _collect_refs(
    expression: ast.Expression,
    unqualified: set[str],
    qualified: set[tuple[str, str]],
) -> None:
    """Collect column references, descending into nested subqueries.

    Inner-block references can only over-approximate the keep set for this
    block's scans (an inner alias never matches an outer binding), which is
    the safe direction for pruning.
    """
    for node in ast.walk_expression(expression):
        if isinstance(node, ast.ColumnRef):
            if node.table:
                qualified.add((node.table.lower(), node.name.lower()))
            else:
                unqualified.add(node.name.lower())
        for nested in node.child_selects():
            _collect_select_refs(nested, unqualified, qualified)


def _collect_select_refs(
    select: ast.Select,
    unqualified: set[str],
    qualified: set[tuple[str, str]],
) -> None:
    for item in select.items:
        if not isinstance(item.expression, ast.Star):
            _collect_refs(item.expression, unqualified, qualified)
    if select.where is not None:
        _collect_refs(select.where, unqualified, qualified)
    for expression in select.group_by:
        _collect_refs(expression, unqualified, qualified)
    if select.having is not None:
        _collect_refs(select.having, unqualified, qualified)
    for order_item in select.order_by:
        _collect_refs(order_item.expression, unqualified, qualified)
    for condition in ast.join_conditions(select):
        _collect_refs(condition, unqualified, qualified)
    for source in ast.select_sources(select):
        if isinstance(source, ast.SubquerySource):
            _collect_select_refs(source.select, unqualified, qualified)
