"""Policy-mask row bitmaps.

The rewriter's Def.-15 conjunct ``complieswith(b'<mask>', t.policy)`` is a
pure function of two values: the (plan-constant) action-aware mask and the
row's policy column.  A table with *n* rows therefore needs at most
*|distinct policy values|* UDF evaluations — not *n* — to classify every
row.  :class:`PolicyBitmapCache` exploits that: per ``(table, mask)`` it
evaluates the UDF once per distinct policy value, records the set of
passing row indices, and reuses that set across executions until either

* the table's row storage changes (``Table.version`` bump — the index set
  is rebuilt from the memoized per-value verdicts, costing zero new UDF
  calls for already-seen values), or
* the policy epoch bumps (``clear()`` via the admin's ``EpochScoped``
  registration — masks may now mean something different, so verdicts are
  discarded wholesale).

This is the in-memory analogue of the paper's bitwise-AND fast path: the
guard becomes a set-membership test instead of a per-row function call.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..functions import FunctionRegistry
    from ..table import Table


class PolicyBitmapCache:
    """Row bitmaps for hoisted ``complieswith`` guards.

    Entries are keyed by ``(table name, mask bits)`` and carry the table
    row-storage version they were built against, the frozen set of passing
    row indices, and the per-distinct-policy-value verdict memo that lets a
    rebuild after a data change skip UDF calls for values already judged.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._entries: dict[tuple[str, str], tuple[int, frozenset, dict]] = {}
        # Monotonic counters (survive clear()) so monitors can report
        # deltas the same way the complieswith ledger does.
        self._hits = 0
        self._built = 0

    def passing_indices(
        self,
        table: "Table",
        policy_column: str,
        mask_bits: str,
        registry: "FunctionRegistry",
        function_name: str,
    ) -> frozenset:
        """Row indices of ``table`` whose policy passes ``mask_bits``.

        UDF invocations route through ``registry.call`` so the engine's
        per-function counter, the monitor's report delta, and the metrics
        layer keep agreeing about how many ``complieswith`` evaluations an
        execution cost.  ``NULL`` policies are skipped entirely — the UDF
        is strict, so the seed engine never invoked (or counted) it for
        them, and a NULL policy never passes.
        """
        key = (table.name.lower(), mask_bits)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == table.version:
                self._hits += 1
                return entry[1]
            verdicts = entry[2] if entry is not None else {}
            policy_index = table.schema.column_index(policy_column)
            passing = set()
            for index, row in enumerate(table.rows):
                value = row[policy_index]
                if value is None:
                    continue
                verdict = verdicts.get(value)
                if verdict is None:
                    verdict = bool(
                        registry.call(function_name, (_mask_value(mask_bits), value))
                    )
                    verdicts[value] = verdict
                if verdict:
                    passing.add(index)
            result = frozenset(passing)
            self._entries[key] = (table.version, result, verdicts)
            self._built += 1
            return result

    def stats(self) -> dict:
        """Monotonic ``hits`` / ``built`` totals plus the live entry count."""
        with self._lock:
            return {
                "hits": self._hits,
                "built": self._built,
                "entries": len(self._entries),
            }

    def clear(self) -> None:
        """Drop every bitmap and verdict (catalog-version invalidation)."""
        with self._lock:
            self._entries.clear()

    def forget(self, table_name: str) -> None:
        """Drop every entry of one table (DROP TABLE cleanup) so a later
        same-named table can never inherit its bitmaps or verdicts."""
        key = table_name.lower()
        with self._lock:
            for entry_key in [k for k in self._entries if k[0] == key]:
                del self._entries[entry_key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _mask_value(mask_bits: str):
    from ..types import BitString

    return BitString.from_bits(mask_bits)
