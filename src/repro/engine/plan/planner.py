"""Logical planning: rewritten AST → plan IR.

The :class:`Planner` translates one SELECT block into a :class:`BlockPlan`:
a logical operator spine (``Limit → Sort → Project → Aggregate → Filter``)
over a FROM tree of :class:`~repro.engine.plan.nodes.Scan` /
:class:`~repro.engine.plan.nodes.DerivedTable` /
:class:`~repro.engine.plan.nodes.NestedLoop` nodes.  The planner performs
*no* optimization — every conditioned join starts as a nested loop and the
whole WHERE clause sits in the block filter — so the optimizer's pass
pipeline is the only place plans change shape, and ``optimizer=off`` can
reproduce the legacy executor's behavior exactly by running the legacy
subset of passes.
"""

from __future__ import annotations

from ...sql import ast
from ..aggregates import is_aggregate_name
from ..schema import ColumnBinding, RowShape
from .nodes import (
    DerivedTable,
    Filter,
    Aggregate,
    Limit,
    LogicalNode,
    NestedLoop,
    Project,
    Scan,
    Sort,
    Values,
)


def has_outer_join(sources: tuple[ast.TableSource, ...]) -> bool:
    """True when the FROM tree contains a LEFT or RIGHT join."""

    def scan(source: ast.TableSource) -> bool:
        if isinstance(source, ast.Join):
            if source.kind in ("LEFT", "RIGHT"):
                return True
            return scan(source.left) or scan(source.right)
        return False

    return any(scan(source) for source in sources)


class BlockPlan:
    """One SELECT block's logical plan plus optimizer bookkeeping.

    ``root`` is the full operator spine; ``source_root`` the FROM region the
    optimizer rewrites; ``filter`` the block's WHERE holder (shared with the
    spine, so pass mutations show through).  ``binder_shape`` snapshots the
    block's merged row shape *before* any pass runs: pushed-down conjuncts
    are re-resolved against it block-wide, because later passes (projection
    pruning) may narrow the physical shapes past what name resolution saw.
    """

    def __init__(
        self,
        select: ast.Select,
        root: LogicalNode,
        source_root: LogicalNode,
        filter: Filter | None,
        binder_shape: RowShape,
        aggregated: bool,
    ):
        self.select = select
        self.root = root
        self.source_root = source_root
        self.filter = filter
        self.binder_shape = binder_shape
        self.aggregated = aggregated
        #: Conjuncts claimed by predicate pushdown, in original WHERE order.
        self.claimed: list[ast.Expression] = []
        #: ``complieswith`` conjuncts hoisted into PolicyGuard nodes.
        self.hoisted: list[ast.FunctionCall] = []
        #: Human-readable per-pass annotations for EXPLAIN.
        self.notes: list[str] = []

    def residual_where(self) -> ast.Expression | None:
        """The WHERE predicate left after optimization (original order)."""
        if self.filter is None:
            return None
        return self.filter.residual_expression()

    def logical_lines(self) -> list[str]:
        """The optimized logical plan as indented EXPLAIN lines."""
        return self.root.render()


class Planner:
    """Builds :class:`BlockPlan` trees for a :class:`SelectExecutor`."""

    def __init__(self, executor):
        self.executor = executor
        self.database = executor.database

    def plan_block(self, select: ast.Select) -> BlockPlan:
        source_root = self._plan_sources(select.sources)
        binder_shape = source_root.shape

        block_filter: Filter | None = None
        if select.where is not None:
            if has_outer_join(select.sources):
                # Filtering below an outer join would change NULL-padding
                # semantics, so the predicate is kept whole: pushdown (and
                # therefore guard hoisting) never decomposes it.
                block_filter = Filter(None, select.where, source_root)
            else:
                block_filter = Filter(
                    _flatten_conjuncts(select.where), None, source_root
                )

        root: LogicalNode = source_root if block_filter is None else block_filter
        aggregated = _is_aggregated(select)
        if aggregated:
            root = Aggregate(select.group_by, root)
        root = Project(select.items, select.distinct, root)
        if select.order_by:
            root = Sort(select.order_by, root)
        if select.limit is not None or select.offset is not None:
            root = Limit(select.limit, select.offset, root)

        return BlockPlan(
            select, root, source_root, block_filter, binder_shape, aggregated
        )

    # -- FROM planning -----------------------------------------------------------

    def _plan_sources(self, sources: tuple[ast.TableSource, ...]) -> LogicalNode:
        if not sources:
            return Values()
        node = self._plan_source(sources[0])
        for source in sources[1:]:
            right = self._plan_source(source)
            node = NestedLoop(
                "CROSS", None, node, right, node.shape.merged_with(right.shape)
            )
        return node

    def _plan_source(self, source: ast.TableSource) -> LogicalNode:
        if isinstance(source, ast.TableName):
            return self._plan_table(source)
        if isinstance(source, ast.SubquerySource):
            return self._plan_derived(source)
        if isinstance(source, ast.Join):
            left = self._plan_source(source.left)
            right = self._plan_source(source.right)
            shape = left.shape.merged_with(right.shape)
            if source.kind == "CROSS" or source.condition is None:
                return NestedLoop("CROSS", None, left, right, shape)
            return NestedLoop(source.kind, source.condition, left, right, shape)
        from ...errors import ExecutionError

        raise ExecutionError(f"unsupported FROM source {type(source).__name__}")

    def _plan_table(self, source: ast.TableName) -> Scan:
        table = self.database.table(source.name)
        binding_name = source.binding.lower()
        bindings = [
            ColumnBinding(
                binding_name,
                column.name.lower(),
                index,
                column.sql_type,
                table.name.lower(),
                column.name.lower(),
            )
            for index, column in enumerate(table.schema.columns)
        ]
        return Scan(table.name, binding_name, RowShape(bindings))

    def _plan_derived(self, source: ast.SubquerySource) -> DerivedTable:
        # Derived tables cannot be correlated (no LATERAL support), so the
        # inner block is planned without access to the enclosing scope.
        prepared = self.executor.prepare_block(source.select, parent_scope=None)
        alias = source.alias.lower()
        bindings = [
            ColumnBinding(
                alias,
                binding.name,
                index,
                binding.sql_type,
                binding.base_table,
                binding.base_column,
            )
            for index, binding in enumerate(prepared.output_bindings)
        ]
        return DerivedTable(alias, source.select, prepared, RowShape(bindings))


def _flatten_conjuncts(where: ast.Expression) -> list[ast.Expression]:
    """AND-flatten a WHERE clause, preserving source order."""
    stack = [where]
    ordered: list[ast.Expression] = []
    while stack:
        node = stack.pop()
        if isinstance(node, ast.BinaryOp) and node.op == "AND":
            stack.append(node.right)
            stack.append(node.left)
        else:
            ordered.append(node)
    # The stack pops left-first, so `ordered` preserves source order.
    return ordered


def _is_aggregated(select: ast.Select) -> bool:
    """Mirror of the executor's aggregate detection, for spine display."""
    if select.group_by:
        return True

    def has_aggregate(expression: ast.Expression) -> bool:
        return any(
            isinstance(node, ast.FunctionCall) and is_aggregate_name(node.name)
            for node in ast.walk_expression(expression)
        )

    if any(has_aggregate(item.expression) for item in select.items):
        return True
    if select.having is not None and has_aggregate(select.having):
        return True
    return any(has_aggregate(item.expression) for item in select.order_by)
