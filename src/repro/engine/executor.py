"""SELECT execution: physical operators over optimized logical plans.

A :class:`PreparedSelect` is built per statement preparation in three
stages (DESIGN.md §11):

1. the :class:`~repro.engine.plan.Planner` turns the SELECT block into a
   logical-plan IR,
2. the :class:`~repro.engine.plan.Optimizer` runs its pass pipeline
   (predicate pushdown, ``complieswith``-guard hoisting, hash-join
   selection, constant folding, projection pruning — the set depends on the
   optimizer mode), and
3. this module compiles the optimized IR into physical
   :class:`SourcePlan` operators and the block's projection/aggregation/
   ordering closures.

``rows(env)`` then runs the pipeline:

    FROM → WHERE → GROUP BY/aggregate → HAVING → project → DISTINCT →
    ORDER BY → LIMIT/OFFSET

Correlated subqueries are supported through the :class:`Scope` chain; an
uncorrelated subquery's result is computed once per statement execution and
cached, matching how a conventional engine executes uncorrelated subplans.
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import repeat
from typing import Callable, Iterable, Iterator

from ..errors import CatalogError, ExecutionError, ExpressionError
from ..sql import ast
from .aggregates import make_aggregate
from .batch import (
    ColumnBatch,
    batches_from_rows,
    resolve_batch_size,
    resolve_executor_mode,
)
from .expressions import (
    CompiledExpr,
    Env,
    ExpressionCompiler,
    Scope,
    aggregate_key,
)
from . import plan as plan_ir
from .aggregates import is_aggregate_name
from .index import resolve_index_mode
from .plan import Optimizer, Planner, resolve_optimizer_mode
from .result import ResultSet
from .schema import ColumnBinding, RowShape
from .vector import VectorCompiler, VectorExpr


class TrackingScope(Scope):
    """A scope that records when resolution escapes to an enclosing block."""

    def __init__(self, shape: RowShape, parent: Scope | None = None):
        super().__init__(shape, parent)
        self.escaped = False

    def resolve(self, name: str, table: str | None) -> tuple[int, int]:
        depth, index = super().resolve(name, table)
        if depth > 0:
            self.escaped = True
        return depth, index


class SourcePlan:
    """A physical FROM-clause operator: a row shape plus a row producer.

    ``kind``/``detail``/``children`` describe the node for EXPLAIN output.

    Under the batch executor a node may also carry a ``batch_producer``
    yielding :class:`~repro.engine.batch.ColumnBatch` pages; nodes without
    a batch-native implementation (nested loops, derived tables) join the
    columnar pipeline by chunking their row stream.  Each node is consumed
    by exactly one parent through exactly one of :meth:`rows` /
    :meth:`batches` per execution, so the trace's per-node row ledger stays
    per-row-accurate in either mode.
    """

    def __init__(
        self,
        shape: RowShape,
        producer: Callable[[Env], Iterable[tuple]],
        kind: str = "source",
        detail: str = "",
        children: "list[SourcePlan] | None" = None,
        batch_producer: "Callable[[Env], Iterator[ColumnBatch]] | None" = None,
        batch_size: int | None = None,
    ):
        self.shape = shape
        self.producer = producer
        self.kind = kind
        self.detail = detail
        self.children = children or []
        self.batch_producer = batch_producer
        self.batch_size = batch_size

    def rows(self, env: Env) -> Iterable[tuple]:
        """Produce this node's rows for the given environment."""
        if env.trace is not None:
            return env.trace.count_rows(self, self.producer(env))
        return self.producer(env)

    def batches(self, env: Env) -> Iterator[ColumnBatch]:
        """Produce this node's output as column batches.

        Falls back to chunking the row producer when the node has no
        batch-native implementation.  Traced executions credit the sum of
        batch lengths (not the batch count) to this node, keeping EXPLAIN
        ANALYZE's ``rows=`` figures identical across executor modes.
        """
        if self.batch_producer is not None:
            produced = self.batch_producer(env)
        else:
            produced = batches_from_rows(
                self.producer(env),
                self.shape.width(),
                self.batch_size or resolve_batch_size(),
            )
        if env.trace is not None:
            return env.trace.count_batches(self, produced)
        return produced

    def describe(self, indent: int = 0, annotate=None) -> list[str]:
        """Render this node and its children as EXPLAIN lines.

        ``annotate`` (a ``node -> str`` callable, typically
        :meth:`repro.obs.tracing.Trace.annotation`) appends per-node suffixes
        such as ``" (rows=N)"`` for EXPLAIN ANALYZE; ``None`` renders the
        bare plan.
        """
        label = self.kind if not self.detail else f"{self.kind} {self.detail}"
        if annotate is not None:
            label += annotate(self)
        lines = ["  " * indent + label]
        for child in self.children:
            lines.extend(child.describe(indent + 1, annotate))
        return lines


class PreparedSelect:
    """A fully planned SELECT, bound to a database snapshot."""

    def __init__(self, executor: "SelectExecutor", select: ast.Select, parent_scope: Scope | None):
        self.executor = executor
        self.select = select
        block = Planner(executor).plan_block(select)
        executor.optimizer.optimize(block)
        self.block = block
        source_plan = executor.compile_plan(block.source_root, parent_scope)
        self.source_plan = source_plan
        self.scope = TrackingScope(source_plan.shape, parent_scope)

        # A pushed-down conjunct was claimed by the first leaf able to
        # resolve all of its references — but an unqualified reference that
        # is ambiguous *block-wide* must still be rejected, exactly as it
        # would be without pushdown.  The check runs against the block's
        # pre-optimization shape: projection pruning may have narrowed the
        # physical shapes past columns (like a hoisted guard's policy
        # column) that name resolution legitimately saw.
        for expression in block.claimed:
            for ref in ast.iter_column_refs(expression):
                block.binder_shape.resolve(
                    ref.name.lower(), ref.table.lower() if ref.table else None
                )

        compiler = executor.compiler(self.scope)
        residual_where = block.residual_where()
        self.residual_where_ast = residual_where
        self.where = (
            compiler.compile(residual_where) if residual_where is not None else None
        )

        self.items = self._expand_items(select.items, source_plan.shape)
        self.aggregated, self.aggregate_specs = self._collect_aggregates()

        if self.aggregated:
            self.group_keys = [compiler.compile(e) for e in select.group_by]
            post_slots = {key: i for i, (key, _, _, _) in enumerate(self.aggregate_specs)}
            post_compiler = executor.compiler(self.scope, aggregate_slots=post_slots)
            self.projections = [post_compiler.compile(item.expression) for item in self.items]
            self.having = (
                post_compiler.compile(select.having)
                if select.having is not None
                else None
            )
            self.order_keys = self._compile_order(post_compiler)
            self.agg_args = [
                (compiler.compile(arg) if arg is not None else None)
                for (_, _, _, arg) in self.aggregate_specs
            ]
        else:
            if select.having is not None:
                raise ExecutionError("HAVING requires GROUP BY or aggregates")
            self.group_keys = []
            self.projections = [compiler.compile(item.expression) for item in self.items]
            self.having = None
            self.order_keys = self._compile_order(compiler)
            self.agg_args = []

        # Batch-mode compilation rides alongside the row closures: the same
        # scope and registry, so name resolution and correlation tracking
        # agree, with the vectorized fast path falling back to the row
        # closures for subquery/CASE expressions (DESIGN.md §12).
        self.batch_mode = executor.batch_mode
        self.batch_size = executor.batch_size
        self.where_vector: VectorExpr | None = None
        self.projection_vectors: list[VectorExpr] = []
        self.order_key_vectors: list[tuple[VectorExpr, bool]] = []
        self.group_key_vectors: list[VectorExpr] = []
        self.agg_arg_vectors: "list[VectorExpr | None]" = []
        if self.batch_mode:
            vectors = VectorCompiler(compiler)
            if residual_where is not None:
                self.where_vector = vectors.compile(residual_where)
            if self.aggregated:
                self.group_key_vectors = [
                    vectors.compile(e) for e in select.group_by
                ]
                self.agg_arg_vectors = [
                    (vectors.compile(arg) if arg is not None else None)
                    for (_, _, _, arg) in self.aggregate_specs
                ]
            else:
                self.projection_vectors = [
                    vectors.compile(item.expression) for item in self.items
                ]
                self.order_key_vectors = [
                    (vectors.compile(expression), descending)
                    for expression, descending in self._order_expressions()
                ]

        self.output_columns = [self._output_name(item) for item in self.items]
        self.output_bindings = self._derive_output_bindings()

    # -- optimizer surface -------------------------------------------------------

    @property
    def optimizer_notes(self) -> list[str]:
        """Per-pass annotations recorded while optimizing this block."""
        return self.block.notes

    def logical_lines(self) -> list[str]:
        """The optimized logical plan, rendered as indented lines."""
        return self.block.logical_lines()

    # -- planning helpers ---------------------------------------------------------

    def _expand_items(
        self, items: tuple[ast.SelectItem, ...], shape: RowShape
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            expression = item.expression
            if isinstance(expression, ast.Star):
                table_key = expression.table.lower() if expression.table else None
                matched = False
                for binding in shape.bindings:
                    if table_key is not None and binding.source != table_key:
                        continue
                    matched = True
                    expanded.append(
                        ast.SelectItem(
                            ast.ColumnRef(binding.name, table=binding.source)
                        )
                    )
                if not matched:
                    raise ExecutionError(
                        f"'*' expansion found no columns for "
                        f"{expression.table or '<all>'!r}"
                    )
            else:
                expanded.append(item)
        return expanded

    def _collect_aggregates(self) -> tuple[bool, list]:
        """Find aggregate calls in select/having/order-by expressions.

        Returns ``(aggregated, specs)`` where each spec is
        ``(key, name, (star, distinct), arg_expression_or_None)``.
        """
        specs: dict[str, tuple] = {}

        def scan(expression: ast.Expression) -> None:
            for node in ast.walk_expression(expression):
                if isinstance(node, ast.FunctionCall) and is_aggregate_name(node.name):
                    key = aggregate_key(node)
                    if key in specs:
                        continue
                    star = bool(node.args) and isinstance(node.args[0], ast.Star)
                    arg = None if (star or not node.args) else node.args[0]
                    if len(node.args) > 1:
                        raise ExecutionError(
                            f"aggregate {node.name}() takes one argument"
                        )
                    specs[key] = (key, node.name, (star, node.distinct), arg)

        for item in self.items:
            scan(item.expression)
        if self.select.having is not None:
            scan(self.select.having)
        for order_item in self.select.order_by:
            scan(order_item.expression)

        aggregated = bool(specs) or bool(self.select.group_by)
        return aggregated, list(specs.values())

    def _order_expressions(self) -> list[tuple[ast.Expression, bool]]:
        """ORDER BY expressions with ordinals and output aliases resolved."""
        resolved: list[tuple[ast.Expression, bool]] = []
        for order_item in self.select.order_by:
            expression = order_item.expression
            # ORDER BY <ordinal> selects the i-th projected column.
            if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
                index = expression.value - 1
                if not 0 <= index < len(self.items):
                    raise ExecutionError(
                        f"ORDER BY position {expression.value} out of range"
                    )
                expression = self.items[index].expression
            elif isinstance(expression, ast.ColumnRef) and expression.table is None:
                # An output alias takes precedence over source columns.
                for item in self.items:
                    if item.alias and item.alias.lower() == expression.name.lower():
                        expression = item.expression
                        break
            resolved.append((expression, order_item.descending))
        return resolved

    def _compile_order(self, compiler: ExpressionCompiler) -> list[tuple[CompiledExpr, bool]]:
        return [
            (compiler.compile(expression), descending)
            for expression, descending in self._order_expressions()
        ]

    def _output_name(self, item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        expression = item.expression
        if isinstance(expression, ast.ColumnRef):
            return expression.name
        if isinstance(expression, ast.FunctionCall):
            return expression.name
        from ..sql.printer import print_expression

        return print_expression(expression)

    def _derive_output_bindings(self) -> list[ColumnBinding]:
        """Provenance of output columns, for use as a derived table.

        A plain column reference keeps its base table/column so the
        access-control layer can categorize derived data (DESIGN.md §5).
        """
        bindings: list[ColumnBinding] = []
        for index, item in enumerate(self.items):
            name = self.output_columns[index].lower()
            base_table = base_column = None
            sql_type = None
            expression = item.expression
            if isinstance(expression, ast.ColumnRef):
                try:
                    depth, _ = self.scope.resolve(expression.name, expression.table)
                except ExpressionError:
                    depth = -1
                if depth == 0:
                    binding = self.scope.shape.resolve(
                        expression.name.lower(),
                        expression.table.lower() if expression.table else None,
                    )
                    base_table = binding.base_table
                    base_column = binding.base_column
                    sql_type = binding.sql_type
            bindings.append(
                ColumnBinding("", name, index, sql_type, base_table, base_column)
            )
        return bindings

    # -- EXPLAIN ---------------------------------------------------------------------

    def describe(self, annotate=None) -> list[str]:
        """EXPLAIN-style plan lines for this SELECT.

        ``annotate`` (see :meth:`SourcePlan.describe`) adds EXPLAIN
        ANALYZE's per-node row-count suffixes; the block header itself is
        annotated with the rows this SELECT emitted after filtering,
        grouping and limiting.
        """
        from ..sql.printer import print_expression

        lines = []
        header = "Select"
        if self.select.distinct:
            header += " distinct"
        if self.aggregated:
            header += " [aggregate]"
        if self.select.order_by:
            header += " [sort]"
        if self.select.limit is not None:
            header += f" [limit {self.select.limit}]"
        if annotate is not None:
            header += annotate(self)
        lines.append(header)
        if self.residual_where_ast is not None:
            lines.append(f"  Where [{print_expression(self.residual_where_ast)}]")
        if self.select.having is not None:
            lines.append(f"  Having [{print_expression(self.select.having)}]")
        lines.extend(self.source_plan.describe(indent=1, annotate=annotate))
        return lines

    # -- execution ------------------------------------------------------------------

    @property
    def correlated(self) -> bool:
        """True when this block references columns of an enclosing block."""
        return self.scope.escaped

    def rows(self, env: Env) -> list[tuple]:
        """Execute the pipeline; uncorrelated results are cached.

        The cache lives in ``env.subq`` (keyed by plan identity), so it is
        scoped to one statement execution: a plan shared across executions —
        or across threads, on the prepared-statement path — never carries
        results from one run into the next.  Environments without a ``subq``
        dict simply skip the memoization.
        """
        if self.correlated or env.subq is None:
            return self._execute(env)
        key = id(self)
        cached = env.subq.get(key)
        if cached is None:
            cached = self._execute(env)
            env.subq[key] = cached
        return cached

    def _execute(self, env: Env) -> list[tuple]:
        if self.batch_mode:
            batches = self.source_plan.batches(env)
            if self.where_vector is not None:
                batches = self._filter_batches(batches, env)
            if self.aggregated:
                projected = self._execute_aggregated_batches(batches, env)
            else:
                projected = self._execute_plain_batches(batches, env)
        else:
            source_rows = self.source_plan.rows(env)
            if self.where is not None:
                where = self.where
                source_rows = (
                    row for row in source_rows if where(row, env) is True
                )
            if self.aggregated:
                projected = self._execute_aggregated(source_rows, env)
            else:
                projected = self._execute_plain(source_rows, env)

        if self.select.distinct:
            seen: set = set()
            deduped = []
            for row, order_key in projected:
                if row in seen:
                    continue
                seen.add(row)
                deduped.append((row, order_key))
            projected = deduped

        if self.order_keys:
            projected.sort(key=lambda pair: pair[1])

        rows = [row for row, _ in projected]
        if self.select.offset is not None:
            rows = rows[self.select.offset :]
        if self.select.limit is not None:
            rows = rows[: self.select.limit]
        if env.trace is not None:
            env.trace.add_rows(self, len(rows))
        return rows

    def _order_key(self, row: tuple, env: Env) -> tuple:
        key = []
        for compiled, descending in self.order_keys:
            value = compiled(row, env)
            # NULLs sort last for ASC, first for DESC (PostgreSQL default).
            null_rank = value is None
            if descending:
                key.append((not null_rank, _Reversed(value)))
            else:
                key.append((null_rank, value))
        return tuple(key)

    def _execute_plain(self, source_rows: Iterable[tuple], env: Env) -> list:
        projections = self.projections
        results = []
        for row in source_rows:
            projected = tuple(projection(row, env) for projection in projections)
            order_key = self._order_key(row, env) if self.order_keys else ()
            results.append((projected, order_key))
        return results

    def _execute_aggregated(self, source_rows: Iterable[tuple], env: Env) -> list:
        groups: dict[tuple, list] = {}
        group_order: list[tuple] = []
        for row in source_rows:
            key = tuple(
                _group_key_value(compiled(row, env)) for compiled in self.group_keys
            )
            group = groups.get(key)
            if group is None:
                accumulators = [
                    make_aggregate(name, star, distinct)
                    for (_, name, (star, distinct), _) in self.aggregate_specs
                ]
                group = [row, accumulators]
                groups[key] = group
                group_order.append(key)
            for accumulator, arg in zip(group[1], self.agg_args):
                if arg is None:
                    accumulator.add(row)  # count(*): any non-None marker
                else:
                    accumulator.add(arg(row, env))
        return self._finalize_groups(groups, group_order, env)

    # -- batch-at-a-time pipeline (DESIGN.md §12) ------------------------------

    def _filter_batches(
        self, batches: Iterator[ColumnBatch], env: Env
    ) -> Iterator[ColumnBatch]:
        """Apply the vectorized residual WHERE, dropping non-True rows."""
        where = self.where_vector
        for batch in batches:
            values = where(batch, env)
            keep = [i for i, v in enumerate(values) if v is True]
            if not keep:
                continue
            yield batch if len(keep) == len(batch) else batch.take(keep)

    def _execute_plain_batches(
        self, batches: Iterator[ColumnBatch], env: Env
    ) -> list:
        projection_vectors = self.projection_vectors
        order_vectors = self.order_key_vectors
        results: list = []
        for batch in batches:
            columns = [vector(batch, env) for vector in projection_vectors]
            projected_rows = list(zip(*columns))
            if not order_vectors:
                results.extend(zip(projected_rows, repeat(())))
                continue
            key_columns = [vector(batch, env) for vector, _ in order_vectors]
            for i, projected in enumerate(projected_rows):
                key = []
                for (_, descending), column in zip(order_vectors, key_columns):
                    value = column[i]
                    null_rank = value is None
                    if descending:
                        key.append((not null_rank, _Reversed(value)))
                    else:
                        key.append((null_rank, value))
                results.append((projected, tuple(key)))
        return results

    def _execute_aggregated_batches(
        self, batches: Iterator[ColumnBatch], env: Env
    ) -> list:
        groups: dict[tuple, list] = {}
        group_order: list[tuple] = []
        for batch in batches:
            key_columns = [vector(batch, env) for vector in self.group_key_vectors]
            arg_columns = [
                (vector(batch, env) if vector is not None else None)
                for vector in self.agg_arg_vectors
            ]
            keys = (
                list(zip(*key_columns))
                if key_columns
                else [()] * batch.length
            )
            for i, key in enumerate(keys):
                group = groups.get(key)
                if group is None:
                    accumulators = [
                        make_aggregate(name, star, distinct)
                        for (_, name, (star, distinct), _) in self.aggregate_specs
                    ]
                    # Representative rows are materialized lazily — only the
                    # first row of each group ever becomes a tuple.
                    group = [batch.row(i), accumulators]
                    groups[key] = group
                    group_order.append(key)
                for accumulator, column in zip(group[1], arg_columns):
                    if column is None:
                        accumulator.add(True)  # count(*): any non-None marker
                    else:
                        accumulator.add(column[i])
        return self._finalize_groups(groups, group_order, env)

    def _finalize_groups(
        self, groups: dict[tuple, list], group_order: list[tuple], env: Env
    ) -> list:
        """HAVING + projection over group representatives (both executors)."""
        if not groups and not self.select.group_by:
            # Aggregates over an empty input still yield one row.
            width = self.source_plan.shape.width()
            empty_row = (None,) * width
            accumulators = [
                make_aggregate(name, star, distinct)
                for (_, name, (star, distinct), _) in self.aggregate_specs
            ]
            groups[()] = [empty_row, accumulators]
            group_order.append(())

        results = []
        for key in group_order:
            representative, accumulators = groups[key]
            agg_values = tuple(acc.result() for acc in accumulators)
            group_env = Env(
                agg=agg_values, outer_row=env.outer_row,
                outer_env=env.outer_env, params=env.params,
                trace=env.trace,
            )
            if self.having is not None and self.having(representative, group_env) is not True:
                continue
            projected = tuple(
                projection(representative, group_env)
                for projection in self.projections
            )
            order_key = (
                self._order_key(representative, group_env) if self.order_keys else ()
            )
            results.append((projected, order_key))
        return results


class _Reversed:
    """Wrapper inverting comparison order, for ORDER BY ... DESC keys."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        if self.value is None:
            return other.value is not None  # NULLs first for DESC
        if other.value is None:
            return False
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _group_key_value(value: object) -> object:
    """Make a grouping value hashable (floats/ints unify via equality)."""
    return value


class SelectExecutor:
    """Compiles optimized logical plans and runs SELECT statements.

    The executor no longer makes planning decisions of its own: the
    :class:`~repro.engine.plan.Planner` shapes the plan, the
    :class:`~repro.engine.plan.Optimizer` (one per executor, carrying the
    resolved mode) rewrites it, and :meth:`compile_plan` turns each logical
    node into a physical :class:`SourcePlan` row producer.
    """

    def __init__(
        self,
        database,
        optimizer: str | None = None,
        executor: str | None = None,
        batch_size: int | None = None,
        indexes: str | None = None,
    ):
        self.database = database
        self.index_mode = resolve_index_mode(indexes)
        self.optimizer = Optimizer(
            resolve_optimizer_mode(optimizer), database, indexes=self.index_mode
        )
        self.executor_mode = resolve_executor_mode(executor)
        self.batch_mode = self.executor_mode == "batch"
        self.batch_size = resolve_batch_size(batch_size)

    @property
    def optimizer_mode(self) -> str:
        """The resolved optimizer mode this executor plans under."""
        return self.optimizer.mode

    # -- compiler / subquery hooks ---------------------------------------------------

    def compiler(
        self, scope: Scope, aggregate_slots: dict[str, int] | None = None
    ) -> ExpressionCompiler:
        """Build an expression compiler bound to this executor."""
        return ExpressionCompiler(
            scope, self.database.functions, planner=self, aggregate_slots=aggregate_slots
        )

    def prepare_subquery(self, select: ast.Select, scope: Scope) -> PreparedSelect:
        """Plan a nested SELECT whose enclosing block has ``scope``."""
        return PreparedSelect(self, select, scope)

    def prepare_block(
        self, select: ast.Select, parent_scope: Scope | None
    ) -> PreparedSelect:
        """Plan one SELECT block (the planner's derived-table hook)."""
        return PreparedSelect(self, select, parent_scope)

    # -- public API ---------------------------------------------------------------

    def execute_select(self, select: ast.Select) -> ResultSet:
        """Run a top-level SELECT and return its result set."""
        prepared = PreparedSelect(self, select, parent_scope=None)
        rows = prepared.rows(Env(subq={}))
        return ResultSet(prepared.output_columns, rows)

    # -- physical compilation ---------------------------------------------------------

    def compile_plan(
        self, node: plan_ir.LogicalNode, parent_scope: Scope | None
    ) -> SourcePlan:
        """Compile one optimized logical node into a physical operator."""
        if isinstance(node, plan_ir.Values):
            return SourcePlan(
                node.shape, lambda env: [()], kind="Values", detail="(one row)",
                batch_producer=(
                    (lambda env: iter([ColumnBatch([], 1)]))
                    if self.batch_mode else None
                ),
                batch_size=self.batch_size,
            )
        if isinstance(node, plan_ir.IndexScan):  # before Scan: a subclass
            return self._compile_index_scan(node)
        if isinstance(node, plan_ir.Scan):
            return self._compile_scan(node)
        if isinstance(node, plan_ir.DerivedTable):
            return self._compile_derived(node)
        if isinstance(node, plan_ir.Filter):
            return self._compile_filter(node, parent_scope)
        if isinstance(node, plan_ir.PolicyGuard):
            return self._compile_policy_guard(node, parent_scope)
        if isinstance(node, plan_ir.HashJoin):
            return self._compile_hash_join(node, parent_scope)
        if isinstance(node, plan_ir.NestedLoop):
            if node.condition is None:
                return self._compile_cross_join(node, parent_scope)
            return self._compile_nested_loop(node, parent_scope)
        raise ExecutionError(
            f"unsupported plan node {type(node).__name__}"
        )

    def _compile_scan(self, node: plan_ir.Scan) -> SourcePlan:
        table = self.database.table(node.table_name)
        detail = table.name
        if node.binding != table.name.lower():
            detail = f"{table.name} as {node.binding}"
        batch_size = self.batch_size
        if node.kept is None:
            # Read table.rows at execution time (not planning time): prepared
            # plans are re-executed after inserts/updates replace the row list.
            def produce_batches(env: Env) -> Iterator[ColumnBatch]:
                rows = table.rows
                width = node.shape.width()
                for start in range(0, len(rows), batch_size):
                    yield ColumnBatch.from_rows(
                        rows[start : start + batch_size], width
                    )

            return SourcePlan(
                node.shape, lambda env: table.rows, kind="SeqScan", detail=detail,
                batch_producer=produce_batches if self.batch_mode else None,
                batch_size=batch_size,
            )
        indices = [table.schema.column_index(name) for name in node.kept]

        def produce(env: Env) -> Iterable[tuple]:
            for row in table.rows:
                yield tuple(row[index] for index in indices)

        def produce_kept_batches(env: Env) -> Iterator[ColumnBatch]:
            rows = table.rows
            for start in range(0, len(rows), batch_size):
                page = rows[start : start + batch_size]
                yield ColumnBatch(
                    [[row[index] for row in page] for index in indices],
                    len(page),
                )

        return SourcePlan(
            node.shape, produce, kind="SeqScan", detail=detail,
            batch_producer=produce_kept_batches if self.batch_mode else None,
            batch_size=batch_size,
        )

    def _compile_index_scan(self, node: plan_ir.IndexScan) -> SourcePlan:
        """Index probe / range walk: candidate row ids → stored rows.

        The matched predicate stays in the parent filter (a recheck), so
        this node only has to narrow candidates.  If the index was dropped
        after planning the node silently degrades to a full sequential
        read — the recheck keeps results identical either way.
        """
        table = self.database.table(node.table_name)
        manager = self.database.indexes
        detail = table.name
        if node.binding != table.name.lower():
            detail = f"{table.name} as {node.binding}"
        detail += f" using {node.index_name} [{node._predicate()}]"
        if node.estimated_rows is not None:
            detail += f" (est={node.estimated_rows})"
        batch_size = self.batch_size
        kept_positions = (
            [table.schema.column_index(name) for name in node.kept]
            if node.kept is not None
            else None
        )
        ranged = isinstance(node, plan_ir.IndexRangeScan)

        def candidate_ids(env: Env) -> "list[int] | None":
            # Row ids in ascending storage order, or None to degrade to a
            # full scan.  Resolved at execution time: prepared plans are
            # re-executed after DML rebuilds (or DDL drops) the index.
            try:
                if ranged:
                    return manager.lookup_range(
                        node.index_name,
                        node.lower, node.upper,
                        node.lower_inclusive, node.upper_inclusive,
                    )
                return manager.lookup_equal(node.index_name, node.value)
            except CatalogError:
                return None  # index dropped since planning

        def produce(env: Env) -> Iterable[tuple]:
            rows = table.rows
            ids = candidate_ids(env)
            source = rows if ids is None else [rows[i] for i in ids]
            if kept_positions is None:
                yield from source
            else:
                for row in source:
                    yield tuple(row[p] for p in kept_positions)

        def page_batch(page_rows: list) -> ColumnBatch:
            if kept_positions is None:
                return ColumnBatch.from_rows(page_rows, node.shape.width())
            return ColumnBatch(
                [[row[p] for row in page_rows] for p in kept_positions],
                len(page_rows),
            )

        def produce_batches(env: Env) -> Iterator[ColumnBatch]:
            rows = table.rows
            ids = candidate_ids(env)
            if ids is None:
                for start in range(0, len(rows), batch_size):
                    yield page_batch(rows[start : start + batch_size])
                return
            for start in range(0, len(ids), batch_size):
                yield page_batch(
                    [rows[i] for i in ids[start : start + batch_size]]
                )

        return SourcePlan(
            node.shape, produce, kind=node.kind, detail=detail,
            batch_producer=produce_batches if self.batch_mode else None,
            batch_size=batch_size,
        )

    def _compile_derived(self, node: plan_ir.DerivedTable) -> SourcePlan:
        prepared = node.prepared
        plan = SourcePlan(
            node.shape,
            lambda env: prepared.rows(env),
            kind="Subquery",
            detail=node.alias,
            batch_size=self.batch_size,
        )
        plan.children = [prepared.source_plan]
        return plan

    def _compile_filter(
        self, node: plan_ir.Filter, parent_scope: Scope | None
    ) -> SourcePlan:
        child = self.compile_plan(node.input, parent_scope)
        claimed = list(node.conjuncts or [])
        # Pushed conjuncts resolve fully inside the leaf (that is what made
        # them pushable), so they compile without the enclosing scope chain.
        scope = TrackingScope(child.shape, parent=None)
        predicates = [self.compiler(scope).compile(expr) for expr in claimed]

        def produce(env: Env) -> Iterable[tuple]:
            # Pull through the child's rows() (not its raw producer) so a
            # traced execution counts the scanned rows against the child.
            for row in child.rows(env):
                if all(predicate(row, env) is True for predicate in predicates):
                    yield row

        batch_producer = None
        if self.batch_mode:
            vector_predicates = [
                VectorCompiler(self.compiler(scope)).compile(expr)
                for expr in claimed
            ]

            def produce_batches(env: Env) -> Iterator[ColumnBatch]:
                for batch in child.batches(env):
                    # Progressive narrowing: each conjunct sees only the rows
                    # the previous ones kept, matching row mode's and-chain.
                    for vector in vector_predicates:
                        values = vector(batch, env)
                        keep = [i for i, v in enumerate(values) if v is True]
                        if len(keep) == len(batch):
                            continue
                        batch = batch.take(keep)
                        if not batch.length:
                            break
                    if batch.length:
                        yield batch

            batch_producer = produce_batches

        from ..sql.printer import print_expression

        detail = " and ".join(print_expression(expr) for expr in claimed)
        return SourcePlan(
            child.shape, produce,
            kind="Filter", detail=f"[{detail}]", children=[child],
            batch_producer=batch_producer, batch_size=self.batch_size,
        )

    def _compile_policy_guard(
        self, node: plan_ir.PolicyGuard, parent_scope: Scope | None
    ) -> SourcePlan:
        child = self.compile_plan(node.scan, parent_scope)
        table = self.database.table(node.scan.table_name)
        masks = [guard.args[0].bits for guard in node.guards]
        function_name = self.database.policy_function
        policy_column = self.database.policy_column
        registry = self.database.functions
        bitmaps = self.database.policy_bitmaps
        manager = self.database.indexes
        partitioned = node.partitioned
        kept_positions = (
            [table.schema.column_index(name) for name in node.scan.kept]
            if node.scan.kept is not None
            else None
        )

        def passing_set(env: Env) -> frozenset:
            passing: frozenset | None = None
            for bits in masks:
                indices = bitmaps.passing_indices(
                    table, policy_column, bits, registry, function_name
                )
                passing = indices if passing is None else passing & indices
            return passing

        def partition_ids(env: Env) -> "list[int] | None":
            # Row ids from the policy-partitioned index's qualifying
            # partitions (ascending storage order), or None to fall back
            # to the positional bitmap intersection.  Verdicts still come
            # from the bitmap cache, so the per-distinct-value UDF call
            # accounting is identical on both paths.
            if partitioned is None:
                return None
            try:
                return list(manager.partition_rows(partitioned, passing_set(env)))
            except CatalogError:
                return None  # index dropped since planning

        def produce(env: Env) -> Iterable[tuple]:
            ids = partition_ids(env)
            if ids is not None:
                rows = table.rows
                if kept_positions is None:
                    for i in ids:
                        yield rows[i]
                else:
                    for i in ids:
                        row = rows[i]
                        yield tuple(row[p] for p in kept_positions)
                return
            passing = passing_set(env)
            for index, row in enumerate(child.rows(env)):
                if index in passing:
                    yield row

        batch_producer = None
        if self.batch_mode:
            batch_size = self.batch_size

            def produce_batches(env: Env) -> Iterator[ColumnBatch]:
                ids = partition_ids(env)
                if ids is not None:
                    rows = table.rows
                    for start in range(0, len(ids), batch_size):
                        page = ids[start : start + batch_size]
                        if kept_positions is None:
                            yield ColumnBatch.from_rows(
                                [rows[i] for i in page],
                                node.scan.shape.width(),
                            )
                        else:
                            yield ColumnBatch(
                                [
                                    [rows[i][p] for i in page]
                                    for p in kept_positions
                                ],
                                len(page),
                            )
                    return
                # One bitmap lookup per mask per *execution* — the cache
                # already collapses the BitString AND to one evaluation per
                # distinct policy value, so a batch costs a sorted-slice of
                # the passing set rather than a membership probe per row.
                ordered = sorted(passing_set(env))
                offset = 0
                for batch in child.batches(env):
                    length = batch.length
                    lo = bisect_left(ordered, offset)
                    hi = bisect_left(ordered, offset + length)
                    offset += length
                    if lo == hi:
                        continue
                    if hi - lo == length:
                        yield batch
                        continue
                    yield batch.take([p - (offset - length) for p in ordered[lo:hi]])

            batch_producer = produce_batches

        from ..sql.printer import print_expression

        detail = " and ".join(print_expression(guard) for guard in node.guards)
        detail = f"[{detail}]"
        if partitioned is not None:
            detail += f" (partitions: {partitioned})"
        return SourcePlan(
            child.shape, produce,
            kind="PolicyGuard", detail=detail, children=[child],
            batch_producer=batch_producer, batch_size=self.batch_size,
        )

    def _compile_cross_join(
        self, node: plan_ir.NestedLoop, parent_scope: Scope | None
    ) -> SourcePlan:
        left = self.compile_plan(node.left, parent_scope)
        right = self.compile_plan(node.right, parent_scope)

        def produce(env: Env) -> Iterable[tuple]:
            right_rows = list(right.rows(env))
            for left_row in left.rows(env):
                for right_row in right_rows:
                    yield left_row + right_row

        return SourcePlan(
            node.shape, produce, kind="NestedLoop", detail="(cross)",
            children=[left, right], batch_size=self.batch_size,
        )

    def _compile_nested_loop(
        self, node: plan_ir.NestedLoop, parent_scope: Scope | None
    ) -> SourcePlan:
        left = self.compile_plan(node.left, parent_scope)
        right = self.compile_plan(node.right, parent_scope)
        kind = node.join_kind
        merged_scope = TrackingScope(node.shape, parent_scope)
        predicate = self.compiler(merged_scope).compile(node.condition)
        left_width = left.shape.width()
        right_width = right.shape.width()

        def produce(env: Env) -> Iterable[tuple]:
            right_rows = list(right.rows(env))
            matched_right: set[int] = set()
            for left_row in left.rows(env):
                emitted = False
                for index, right_row in enumerate(right_rows):
                    combined = left_row + right_row
                    if predicate(combined, env) is True:
                        emitted = True
                        matched_right.add(index)
                        yield combined
                if not emitted and kind == "LEFT":
                    yield left_row + (None,) * right_width
            if kind == "RIGHT":
                for index, right_row in enumerate(right_rows):
                    if index not in matched_right:
                        yield (None,) * left_width + right_row

        return SourcePlan(
            node.shape, produce,
            kind="NestedLoop", detail=f"({kind.lower()})",
            children=[left, right], batch_size=self.batch_size,
        )

    def _compile_hash_join(
        self, node: plan_ir.HashJoin, parent_scope: Scope | None
    ) -> SourcePlan:
        left = self.compile_plan(node.left, parent_scope)
        right = self.compile_plan(node.right, parent_scope)
        kind = node.join_kind
        equi_pairs = node.equi_pairs
        residual_predicate = (
            self.compiler(TrackingScope(node.shape, parent_scope)).compile(
                node.residual
            )
            if node.residual is not None
            else None
        )
        left_scope = TrackingScope(left.shape, parent_scope)
        right_scope = TrackingScope(right.shape, parent_scope)
        left_keys = [self.compiler(left_scope).compile(le) for le, _ in equi_pairs]
        right_keys = [self.compiler(right_scope).compile(re) for _, re in equi_pairs]
        left_width = left.shape.width()
        right_width = right.shape.width()
        build_side = node.build_side

        def produce_build_left(env: Env) -> Iterable[tuple]:
            # Cost-based swap (INNER only): hash the smaller left input and
            # probe with the right.  Output order follows the probe side,
            # with all matches of one probe row emitted together — a set
            # equal to the build-right path's output.
            build: dict[tuple, list[tuple]] = {}
            for left_row in left.rows(env):
                key = tuple(k(left_row, env) for k in left_keys)
                if any(v is None for v in key):
                    continue  # NULL never joins
                build.setdefault(key, []).append(left_row)
            for right_row in right.rows(env):
                key = tuple(k(right_row, env) for k in right_keys)
                if any(v is None for v in key):
                    continue
                for left_row in build.get(key, ()):
                    combined = left_row + right_row
                    if (
                        residual_predicate is not None
                        and residual_predicate(combined, env) is not True
                    ):
                        continue
                    yield combined

        def produce(env: Env) -> Iterable[tuple]:
            build: dict[tuple, list[tuple]] = {}
            right_rows = list(right.rows(env))
            for right_row in right_rows:
                key = tuple(k(right_row, env) for k in right_keys)
                if any(v is None for v in key):
                    continue  # NULL never joins
                build.setdefault(key, []).append(right_row)

            matched_right: set[int] = set()
            for left_row in left.rows(env):
                key = tuple(k(left_row, env) for k in left_keys)
                matches = build.get(key, ()) if not any(v is None for v in key) else ()
                emitted = False
                for right_row in matches:
                    combined = left_row + right_row
                    if (
                        residual_predicate is not None
                        and residual_predicate(combined, env) is not True
                    ):
                        continue
                    emitted = True
                    if kind == "RIGHT":
                        matched_right.add(id(right_row))
                    yield combined
                if not emitted and kind == "LEFT":
                    yield left_row + (None,) * right_width
            if kind == "RIGHT":
                for right_row in right_rows:
                    if id(right_row) not in matched_right:
                        yield (None,) * left_width + right_row

        if kind == "INNER" and build_side == "left":
            # The swapped variant has no batch-native implementation; the
            # batch pipeline chunks its row stream (SourcePlan.batches).
            from ..sql.printer import print_expression

            keys = ", ".join(
                f"{print_expression(le)} = {print_expression(re)}"
                for le, re in equi_pairs
            )
            return SourcePlan(
                node.shape, produce_build_left,
                kind="HashJoin", detail=f"(inner) on {keys} (build: left)",
                children=[left, right], batch_size=self.batch_size,
            )

        batch_producer = None
        if self.batch_mode:
            width = node.shape.width()
            left_key_vectors = [
                VectorCompiler(self.compiler(left_scope)).compile(le)
                for le, _ in equi_pairs
            ]
            right_key_vectors = [
                VectorCompiler(self.compiler(right_scope)).compile(re)
                for _, re in equi_pairs
            ]

            single_key = len(equi_pairs) == 1

            def batch_keys(batch, vectors, env):
                """One hashable join key per row: a scalar for single-column
                joins (the common case — no per-row tuple construction), a
                tuple otherwise.  Scalar and 1-tuple keys hash/compare the
                same way, so match semantics are unchanged."""
                columns = [k(batch, env) for k in vectors]
                return columns[0] if single_key else list(zip(*columns))

            if kind == "INNER" and residual_predicate is None:

                def produce_batches(env: Env) -> Iterator[ColumnBatch]:
                    # Fully columnar inner join: the build side buckets
                    # *global row indices* per key and keeps right values
                    # column-wise, the probe side gathers matching (left,
                    # right) index pairs, and output batches are built by
                    # per-column takes — no row tuple is ever constructed.
                    buckets: dict[object, list[int]] = {}
                    bucket_get = buckets.get
                    right_columns: list[list] = [[] for _ in range(right_width)]
                    base = 0
                    for rbatch in right.batches(env):
                        keys = batch_keys(rbatch, right_key_vectors, env)
                        for column, values in zip(right_columns, rbatch.columns):
                            column.extend(values)
                        for offset, key in enumerate(keys):
                            if (key is None) if single_key else (None in key):
                                continue  # NULL never joins
                            bucket = bucket_get(key)
                            if bucket is None:
                                buckets[key] = [base + offset]
                            else:
                                bucket.append(base + offset)
                        base += rbatch.length

                    # NULL probe keys were never stored, so bucket_get()
                    # already misses them — no per-row NULL check needed.
                    for lbatch in left.batches(env):
                        keys = batch_keys(lbatch, left_key_vectors, env)
                        left_take: list[int] = []
                        right_take: list[int] = []
                        lt_append = left_take.append
                        rt_append = right_take.append
                        for i, key in enumerate(keys):
                            bucket = bucket_get(key)
                            if bucket is not None:
                                for j in bucket:
                                    lt_append(i)
                                    rt_append(j)
                        if not left_take:
                            continue
                        out = [
                            [column[i] for i in left_take]
                            for column in lbatch.columns
                        ]
                        out.extend(
                            [column[j] for j in right_take]
                            for column in right_columns
                        )
                        yield ColumnBatch(out, len(left_take))

            else:

                def produce_batches(env: Env) -> Iterator[ColumnBatch]:
                    # Build side: vectorized key columns over whole batches.
                    build: dict[object, list[tuple]] = {}
                    right_rows: list[tuple] = []
                    for rbatch in right.batches(env):
                        keys = batch_keys(rbatch, right_key_vectors, env)
                        rows = rbatch.to_rows()
                        right_rows.extend(rows)
                        for right_row, key in zip(rows, keys):
                            if (key is None) if single_key else (None in key):
                                continue  # NULL never joins
                            build.setdefault(key, []).append(right_row)

                    # Probe side.  NULL keys were never stored, so
                    # build.get() already misses them.
                    build_get = build.get
                    matched_right: set[int] = set()
                    for lbatch in left.batches(env):
                        keys = batch_keys(lbatch, left_key_vectors, env)
                        out: list[tuple] = []
                        append = out.append
                        for left_row, key in zip(lbatch.to_rows(), keys):
                            emitted = False
                            for right_row in build_get(key, ()):
                                combined = left_row + right_row
                                if (
                                    residual_predicate is not None
                                    and residual_predicate(combined, env)
                                    is not True
                                ):
                                    continue
                                emitted = True
                                if kind == "RIGHT":
                                    matched_right.add(id(right_row))
                                append(combined)
                            if not emitted and kind == "LEFT":
                                append(left_row + (None,) * right_width)
                        if out:
                            yield ColumnBatch.from_rows(out, width)
                    if kind == "RIGHT":
                        out = [
                            (None,) * left_width + right_row
                            for right_row in right_rows
                            if id(right_row) not in matched_right
                        ]
                        if out:
                            yield ColumnBatch.from_rows(out, width)

            batch_producer = produce_batches

        from ..sql.printer import print_expression

        keys = ", ".join(
            f"{print_expression(le)} = {print_expression(re)}"
            for le, re in equi_pairs
        )
        return SourcePlan(
            node.shape, produce,
            kind="HashJoin", detail=f"({kind.lower()}) on {keys}",
            children=[left, right],
            batch_producer=batch_producer, batch_size=self.batch_size,
        )
