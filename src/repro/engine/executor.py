"""SELECT execution: physical operators over optimized logical plans.

A :class:`PreparedSelect` is built per statement preparation in three
stages (DESIGN.md §11):

1. the :class:`~repro.engine.plan.Planner` turns the SELECT block into a
   logical-plan IR,
2. the :class:`~repro.engine.plan.Optimizer` runs its pass pipeline
   (predicate pushdown, ``complieswith``-guard hoisting, hash-join
   selection, constant folding, projection pruning — the set depends on the
   optimizer mode), and
3. this module compiles the optimized IR into physical
   :class:`SourcePlan` operators and the block's projection/aggregation/
   ordering closures.

``rows(env)`` then runs the pipeline:

    FROM → WHERE → GROUP BY/aggregate → HAVING → project → DISTINCT →
    ORDER BY → LIMIT/OFFSET

Correlated subqueries are supported through the :class:`Scope` chain; an
uncorrelated subquery's result is computed once per statement execution and
cached, matching how a conventional engine executes uncorrelated subplans.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..errors import ExecutionError, ExpressionError
from ..sql import ast
from .aggregates import make_aggregate
from .expressions import (
    CompiledExpr,
    Env,
    ExpressionCompiler,
    Scope,
    aggregate_key,
)
from . import plan as plan_ir
from .aggregates import is_aggregate_name
from .plan import Optimizer, Planner, resolve_optimizer_mode
from .result import ResultSet
from .schema import ColumnBinding, RowShape


class TrackingScope(Scope):
    """A scope that records when resolution escapes to an enclosing block."""

    def __init__(self, shape: RowShape, parent: Scope | None = None):
        super().__init__(shape, parent)
        self.escaped = False

    def resolve(self, name: str, table: str | None) -> tuple[int, int]:
        depth, index = super().resolve(name, table)
        if depth > 0:
            self.escaped = True
        return depth, index


class SourcePlan:
    """A physical FROM-clause operator: a row shape plus a row producer.

    ``kind``/``detail``/``children`` describe the node for EXPLAIN output.
    """

    def __init__(
        self,
        shape: RowShape,
        producer: Callable[[Env], Iterable[tuple]],
        kind: str = "source",
        detail: str = "",
        children: "list[SourcePlan] | None" = None,
    ):
        self.shape = shape
        self.producer = producer
        self.kind = kind
        self.detail = detail
        self.children = children or []

    def rows(self, env: Env) -> Iterable[tuple]:
        """Produce this node's rows for the given environment."""
        if env.trace is not None:
            return env.trace.count_rows(self, self.producer(env))
        return self.producer(env)

    def describe(self, indent: int = 0, annotate=None) -> list[str]:
        """Render this node and its children as EXPLAIN lines.

        ``annotate`` (a ``node -> str`` callable, typically
        :meth:`repro.obs.tracing.Trace.annotation`) appends per-node suffixes
        such as ``" (rows=N)"`` for EXPLAIN ANALYZE; ``None`` renders the
        bare plan.
        """
        label = self.kind if not self.detail else f"{self.kind} {self.detail}"
        if annotate is not None:
            label += annotate(self)
        lines = ["  " * indent + label]
        for child in self.children:
            lines.extend(child.describe(indent + 1, annotate))
        return lines


class PreparedSelect:
    """A fully planned SELECT, bound to a database snapshot."""

    def __init__(self, executor: "SelectExecutor", select: ast.Select, parent_scope: Scope | None):
        self.executor = executor
        self.select = select
        block = Planner(executor).plan_block(select)
        executor.optimizer.optimize(block)
        self.block = block
        source_plan = executor.compile_plan(block.source_root, parent_scope)
        self.source_plan = source_plan
        self.scope = TrackingScope(source_plan.shape, parent_scope)

        # A pushed-down conjunct was claimed by the first leaf able to
        # resolve all of its references — but an unqualified reference that
        # is ambiguous *block-wide* must still be rejected, exactly as it
        # would be without pushdown.  The check runs against the block's
        # pre-optimization shape: projection pruning may have narrowed the
        # physical shapes past columns (like a hoisted guard's policy
        # column) that name resolution legitimately saw.
        for expression in block.claimed:
            for ref in ast.iter_column_refs(expression):
                block.binder_shape.resolve(
                    ref.name.lower(), ref.table.lower() if ref.table else None
                )

        compiler = executor.compiler(self.scope)
        residual_where = block.residual_where()
        self.residual_where_ast = residual_where
        self.where = (
            compiler.compile(residual_where) if residual_where is not None else None
        )

        self.items = self._expand_items(select.items, source_plan.shape)
        self.aggregated, self.aggregate_specs = self._collect_aggregates()

        if self.aggregated:
            self.group_keys = [compiler.compile(e) for e in select.group_by]
            post_slots = {key: i for i, (key, _, _, _) in enumerate(self.aggregate_specs)}
            post_compiler = executor.compiler(self.scope, aggregate_slots=post_slots)
            self.projections = [post_compiler.compile(item.expression) for item in self.items]
            self.having = (
                post_compiler.compile(select.having)
                if select.having is not None
                else None
            )
            self.order_keys = self._compile_order(post_compiler)
            self.agg_args = [
                (compiler.compile(arg) if arg is not None else None)
                for (_, _, _, arg) in self.aggregate_specs
            ]
        else:
            if select.having is not None:
                raise ExecutionError("HAVING requires GROUP BY or aggregates")
            self.group_keys = []
            self.projections = [compiler.compile(item.expression) for item in self.items]
            self.having = None
            self.order_keys = self._compile_order(compiler)
            self.agg_args = []

        self.output_columns = [self._output_name(item) for item in self.items]
        self.output_bindings = self._derive_output_bindings()

    # -- optimizer surface -------------------------------------------------------

    @property
    def optimizer_notes(self) -> list[str]:
        """Per-pass annotations recorded while optimizing this block."""
        return self.block.notes

    def logical_lines(self) -> list[str]:
        """The optimized logical plan, rendered as indented lines."""
        return self.block.logical_lines()

    # -- planning helpers ---------------------------------------------------------

    def _expand_items(
        self, items: tuple[ast.SelectItem, ...], shape: RowShape
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            expression = item.expression
            if isinstance(expression, ast.Star):
                table_key = expression.table.lower() if expression.table else None
                matched = False
                for binding in shape.bindings:
                    if table_key is not None and binding.source != table_key:
                        continue
                    matched = True
                    expanded.append(
                        ast.SelectItem(
                            ast.ColumnRef(binding.name, table=binding.source)
                        )
                    )
                if not matched:
                    raise ExecutionError(
                        f"'*' expansion found no columns for "
                        f"{expression.table or '<all>'!r}"
                    )
            else:
                expanded.append(item)
        return expanded

    def _collect_aggregates(self) -> tuple[bool, list]:
        """Find aggregate calls in select/having/order-by expressions.

        Returns ``(aggregated, specs)`` where each spec is
        ``(key, name, (star, distinct), arg_expression_or_None)``.
        """
        specs: dict[str, tuple] = {}

        def scan(expression: ast.Expression) -> None:
            for node in ast.walk_expression(expression):
                if isinstance(node, ast.FunctionCall) and is_aggregate_name(node.name):
                    key = aggregate_key(node)
                    if key in specs:
                        continue
                    star = bool(node.args) and isinstance(node.args[0], ast.Star)
                    arg = None if (star or not node.args) else node.args[0]
                    if len(node.args) > 1:
                        raise ExecutionError(
                            f"aggregate {node.name}() takes one argument"
                        )
                    specs[key] = (key, node.name, (star, node.distinct), arg)

        for item in self.items:
            scan(item.expression)
        if self.select.having is not None:
            scan(self.select.having)
        for order_item in self.select.order_by:
            scan(order_item.expression)

        aggregated = bool(specs) or bool(self.select.group_by)
        return aggregated, list(specs.values())

    def _compile_order(self, compiler: ExpressionCompiler) -> list[tuple[CompiledExpr, bool]]:
        keys: list[tuple[CompiledExpr, bool]] = []
        for order_item in self.select.order_by:
            expression = order_item.expression
            # ORDER BY <ordinal> selects the i-th projected column.
            if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
                index = expression.value - 1
                if not 0 <= index < len(self.items):
                    raise ExecutionError(
                        f"ORDER BY position {expression.value} out of range"
                    )
                expression = self.items[index].expression
            elif isinstance(expression, ast.ColumnRef) and expression.table is None:
                # An output alias takes precedence over source columns.
                for item in self.items:
                    if item.alias and item.alias.lower() == expression.name.lower():
                        expression = item.expression
                        break
            keys.append((compiler.compile(expression), order_item.descending))
        return keys

    def _output_name(self, item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        expression = item.expression
        if isinstance(expression, ast.ColumnRef):
            return expression.name
        if isinstance(expression, ast.FunctionCall):
            return expression.name
        from ..sql.printer import print_expression

        return print_expression(expression)

    def _derive_output_bindings(self) -> list[ColumnBinding]:
        """Provenance of output columns, for use as a derived table.

        A plain column reference keeps its base table/column so the
        access-control layer can categorize derived data (DESIGN.md §5).
        """
        bindings: list[ColumnBinding] = []
        for index, item in enumerate(self.items):
            name = self.output_columns[index].lower()
            base_table = base_column = None
            sql_type = None
            expression = item.expression
            if isinstance(expression, ast.ColumnRef):
                try:
                    depth, _ = self.scope.resolve(expression.name, expression.table)
                except ExpressionError:
                    depth = -1
                if depth == 0:
                    binding = self.scope.shape.resolve(
                        expression.name.lower(),
                        expression.table.lower() if expression.table else None,
                    )
                    base_table = binding.base_table
                    base_column = binding.base_column
                    sql_type = binding.sql_type
            bindings.append(
                ColumnBinding("", name, index, sql_type, base_table, base_column)
            )
        return bindings

    # -- EXPLAIN ---------------------------------------------------------------------

    def describe(self, annotate=None) -> list[str]:
        """EXPLAIN-style plan lines for this SELECT.

        ``annotate`` (see :meth:`SourcePlan.describe`) adds EXPLAIN
        ANALYZE's per-node row-count suffixes; the block header itself is
        annotated with the rows this SELECT emitted after filtering,
        grouping and limiting.
        """
        from ..sql.printer import print_expression

        lines = []
        header = "Select"
        if self.select.distinct:
            header += " distinct"
        if self.aggregated:
            header += " [aggregate]"
        if self.select.order_by:
            header += " [sort]"
        if self.select.limit is not None:
            header += f" [limit {self.select.limit}]"
        if annotate is not None:
            header += annotate(self)
        lines.append(header)
        if self.residual_where_ast is not None:
            lines.append(f"  Where [{print_expression(self.residual_where_ast)}]")
        if self.select.having is not None:
            lines.append(f"  Having [{print_expression(self.select.having)}]")
        lines.extend(self.source_plan.describe(indent=1, annotate=annotate))
        return lines

    # -- execution ------------------------------------------------------------------

    @property
    def correlated(self) -> bool:
        """True when this block references columns of an enclosing block."""
        return self.scope.escaped

    def rows(self, env: Env) -> list[tuple]:
        """Execute the pipeline; uncorrelated results are cached.

        The cache lives in ``env.subq`` (keyed by plan identity), so it is
        scoped to one statement execution: a plan shared across executions —
        or across threads, on the prepared-statement path — never carries
        results from one run into the next.  Environments without a ``subq``
        dict simply skip the memoization.
        """
        if self.correlated or env.subq is None:
            return self._execute(env)
        key = id(self)
        cached = env.subq.get(key)
        if cached is None:
            cached = self._execute(env)
            env.subq[key] = cached
        return cached

    def _execute(self, env: Env) -> list[tuple]:
        source_rows = self.source_plan.rows(env)
        if self.where is not None:
            where = self.where
            source_rows = (
                row for row in source_rows if where(row, env) is True
            )

        if self.aggregated:
            projected = self._execute_aggregated(source_rows, env)
        else:
            projected = self._execute_plain(source_rows, env)

        if self.select.distinct:
            seen: set = set()
            deduped = []
            for row, order_key in projected:
                if row in seen:
                    continue
                seen.add(row)
                deduped.append((row, order_key))
            projected = deduped

        if self.order_keys:
            projected.sort(key=lambda pair: pair[1])

        rows = [row for row, _ in projected]
        if self.select.offset is not None:
            rows = rows[self.select.offset :]
        if self.select.limit is not None:
            rows = rows[: self.select.limit]
        if env.trace is not None:
            env.trace.add_rows(self, len(rows))
        return rows

    def _order_key(self, row: tuple, env: Env) -> tuple:
        key = []
        for compiled, descending in self.order_keys:
            value = compiled(row, env)
            # NULLs sort last for ASC, first for DESC (PostgreSQL default).
            null_rank = value is None
            if descending:
                key.append((not null_rank, _Reversed(value)))
            else:
                key.append((null_rank, value))
        return tuple(key)

    def _execute_plain(self, source_rows: Iterable[tuple], env: Env) -> list:
        projections = self.projections
        results = []
        for row in source_rows:
            projected = tuple(projection(row, env) for projection in projections)
            order_key = self._order_key(row, env) if self.order_keys else ()
            results.append((projected, order_key))
        return results

    def _execute_aggregated(self, source_rows: Iterable[tuple], env: Env) -> list:
        groups: dict[tuple, list] = {}
        group_order: list[tuple] = []
        for row in source_rows:
            key = tuple(
                _group_key_value(compiled(row, env)) for compiled in self.group_keys
            )
            group = groups.get(key)
            if group is None:
                accumulators = [
                    make_aggregate(name, star, distinct)
                    for (_, name, (star, distinct), _) in self.aggregate_specs
                ]
                group = [row, accumulators]
                groups[key] = group
                group_order.append(key)
            for accumulator, arg in zip(group[1], self.agg_args):
                if arg is None:
                    accumulator.add(row)  # count(*): any non-None marker
                else:
                    accumulator.add(arg(row, env))

        if not groups and not self.select.group_by:
            # Aggregates over an empty input still yield one row.
            width = self.source_plan.shape.width()
            empty_row = (None,) * width
            accumulators = [
                make_aggregate(name, star, distinct)
                for (_, name, (star, distinct), _) in self.aggregate_specs
            ]
            groups[()] = [empty_row, accumulators]
            group_order.append(())

        results = []
        for key in group_order:
            representative, accumulators = groups[key]
            agg_values = tuple(acc.result() for acc in accumulators)
            group_env = Env(
                agg=agg_values, outer_row=env.outer_row,
                outer_env=env.outer_env, params=env.params,
                trace=env.trace,
            )
            if self.having is not None and self.having(representative, group_env) is not True:
                continue
            projected = tuple(
                projection(representative, group_env)
                for projection in self.projections
            )
            order_key = (
                self._order_key(representative, group_env) if self.order_keys else ()
            )
            results.append((projected, order_key))
        return results


class _Reversed:
    """Wrapper inverting comparison order, for ORDER BY ... DESC keys."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        if self.value is None:
            return other.value is not None  # NULLs first for DESC
        if other.value is None:
            return False
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _group_key_value(value: object) -> object:
    """Make a grouping value hashable (floats/ints unify via equality)."""
    return value


class SelectExecutor:
    """Compiles optimized logical plans and runs SELECT statements.

    The executor no longer makes planning decisions of its own: the
    :class:`~repro.engine.plan.Planner` shapes the plan, the
    :class:`~repro.engine.plan.Optimizer` (one per executor, carrying the
    resolved mode) rewrites it, and :meth:`compile_plan` turns each logical
    node into a physical :class:`SourcePlan` row producer.
    """

    def __init__(self, database, optimizer: str | None = None):
        self.database = database
        self.optimizer = Optimizer(resolve_optimizer_mode(optimizer), database)

    @property
    def optimizer_mode(self) -> str:
        """The resolved optimizer mode this executor plans under."""
        return self.optimizer.mode

    # -- compiler / subquery hooks ---------------------------------------------------

    def compiler(
        self, scope: Scope, aggregate_slots: dict[str, int] | None = None
    ) -> ExpressionCompiler:
        """Build an expression compiler bound to this executor."""
        return ExpressionCompiler(
            scope, self.database.functions, planner=self, aggregate_slots=aggregate_slots
        )

    def prepare_subquery(self, select: ast.Select, scope: Scope) -> PreparedSelect:
        """Plan a nested SELECT whose enclosing block has ``scope``."""
        return PreparedSelect(self, select, scope)

    def prepare_block(
        self, select: ast.Select, parent_scope: Scope | None
    ) -> PreparedSelect:
        """Plan one SELECT block (the planner's derived-table hook)."""
        return PreparedSelect(self, select, parent_scope)

    # -- public API ---------------------------------------------------------------

    def execute_select(self, select: ast.Select) -> ResultSet:
        """Run a top-level SELECT and return its result set."""
        prepared = PreparedSelect(self, select, parent_scope=None)
        rows = prepared.rows(Env(subq={}))
        return ResultSet(prepared.output_columns, rows)

    # -- physical compilation ---------------------------------------------------------

    def compile_plan(
        self, node: plan_ir.LogicalNode, parent_scope: Scope | None
    ) -> SourcePlan:
        """Compile one optimized logical node into a physical operator."""
        if isinstance(node, plan_ir.Values):
            return SourcePlan(
                node.shape, lambda env: [()], kind="Values", detail="(one row)"
            )
        if isinstance(node, plan_ir.Scan):
            return self._compile_scan(node)
        if isinstance(node, plan_ir.DerivedTable):
            return self._compile_derived(node)
        if isinstance(node, plan_ir.Filter):
            return self._compile_filter(node, parent_scope)
        if isinstance(node, plan_ir.PolicyGuard):
            return self._compile_policy_guard(node, parent_scope)
        if isinstance(node, plan_ir.HashJoin):
            return self._compile_hash_join(node, parent_scope)
        if isinstance(node, plan_ir.NestedLoop):
            if node.condition is None:
                return self._compile_cross_join(node, parent_scope)
            return self._compile_nested_loop(node, parent_scope)
        raise ExecutionError(
            f"unsupported plan node {type(node).__name__}"
        )

    def _compile_scan(self, node: plan_ir.Scan) -> SourcePlan:
        table = self.database.table(node.table_name)
        detail = table.name
        if node.binding != table.name.lower():
            detail = f"{table.name} as {node.binding}"
        if node.kept is None:
            # Read table.rows at execution time (not planning time): prepared
            # plans are re-executed after inserts/updates replace the row list.
            return SourcePlan(
                node.shape, lambda env: table.rows, kind="SeqScan", detail=detail
            )
        indices = [table.schema.column_index(name) for name in node.kept]

        def produce(env: Env) -> Iterable[tuple]:
            for row in table.rows:
                yield tuple(row[index] for index in indices)

        return SourcePlan(node.shape, produce, kind="SeqScan", detail=detail)

    def _compile_derived(self, node: plan_ir.DerivedTable) -> SourcePlan:
        prepared = node.prepared
        plan = SourcePlan(
            node.shape,
            lambda env: prepared.rows(env),
            kind="Subquery",
            detail=node.alias,
        )
        plan.children = [prepared.source_plan]
        return plan

    def _compile_filter(
        self, node: plan_ir.Filter, parent_scope: Scope | None
    ) -> SourcePlan:
        child = self.compile_plan(node.input, parent_scope)
        claimed = list(node.conjuncts or [])
        # Pushed conjuncts resolve fully inside the leaf (that is what made
        # them pushable), so they compile without the enclosing scope chain.
        scope = TrackingScope(child.shape, parent=None)
        predicates = [self.compiler(scope).compile(expr) for expr in claimed]

        def produce(env: Env) -> Iterable[tuple]:
            # Pull through the child's rows() (not its raw producer) so a
            # traced execution counts the scanned rows against the child.
            for row in child.rows(env):
                if all(predicate(row, env) is True for predicate in predicates):
                    yield row

        from ..sql.printer import print_expression

        detail = " and ".join(print_expression(expr) for expr in claimed)
        return SourcePlan(
            child.shape, produce,
            kind="Filter", detail=f"[{detail}]", children=[child],
        )

    def _compile_policy_guard(
        self, node: plan_ir.PolicyGuard, parent_scope: Scope | None
    ) -> SourcePlan:
        child = self.compile_plan(node.scan, parent_scope)
        table = self.database.table(node.scan.table_name)
        masks = [guard.args[0].bits for guard in node.guards]
        function_name = self.database.policy_function
        policy_column = self.database.policy_column
        registry = self.database.functions
        bitmaps = self.database.policy_bitmaps

        def produce(env: Env) -> Iterable[tuple]:
            passing: frozenset | None = None
            for bits in masks:
                indices = bitmaps.passing_indices(
                    table, policy_column, bits, registry, function_name
                )
                passing = indices if passing is None else passing & indices
            for index, row in enumerate(child.rows(env)):
                if index in passing:
                    yield row

        from ..sql.printer import print_expression

        detail = " and ".join(print_expression(guard) for guard in node.guards)
        return SourcePlan(
            child.shape, produce,
            kind="PolicyGuard", detail=f"[{detail}]", children=[child],
        )

    def _compile_cross_join(
        self, node: plan_ir.NestedLoop, parent_scope: Scope | None
    ) -> SourcePlan:
        left = self.compile_plan(node.left, parent_scope)
        right = self.compile_plan(node.right, parent_scope)

        def produce(env: Env) -> Iterable[tuple]:
            right_rows = list(right.rows(env))
            for left_row in left.rows(env):
                for right_row in right_rows:
                    yield left_row + right_row

        return SourcePlan(
            node.shape, produce, kind="NestedLoop", detail="(cross)",
            children=[left, right],
        )

    def _compile_nested_loop(
        self, node: plan_ir.NestedLoop, parent_scope: Scope | None
    ) -> SourcePlan:
        left = self.compile_plan(node.left, parent_scope)
        right = self.compile_plan(node.right, parent_scope)
        kind = node.join_kind
        merged_scope = TrackingScope(node.shape, parent_scope)
        predicate = self.compiler(merged_scope).compile(node.condition)
        left_width = left.shape.width()
        right_width = right.shape.width()

        def produce(env: Env) -> Iterable[tuple]:
            right_rows = list(right.rows(env))
            matched_right: set[int] = set()
            for left_row in left.rows(env):
                emitted = False
                for index, right_row in enumerate(right_rows):
                    combined = left_row + right_row
                    if predicate(combined, env) is True:
                        emitted = True
                        matched_right.add(index)
                        yield combined
                if not emitted and kind == "LEFT":
                    yield left_row + (None,) * right_width
            if kind == "RIGHT":
                for index, right_row in enumerate(right_rows):
                    if index not in matched_right:
                        yield (None,) * left_width + right_row

        return SourcePlan(
            node.shape, produce,
            kind="NestedLoop", detail=f"({kind.lower()})",
            children=[left, right],
        )

    def _compile_hash_join(
        self, node: plan_ir.HashJoin, parent_scope: Scope | None
    ) -> SourcePlan:
        left = self.compile_plan(node.left, parent_scope)
        right = self.compile_plan(node.right, parent_scope)
        kind = node.join_kind
        equi_pairs = node.equi_pairs
        residual_predicate = (
            self.compiler(TrackingScope(node.shape, parent_scope)).compile(
                node.residual
            )
            if node.residual is not None
            else None
        )
        left_scope = TrackingScope(left.shape, parent_scope)
        right_scope = TrackingScope(right.shape, parent_scope)
        left_keys = [self.compiler(left_scope).compile(le) for le, _ in equi_pairs]
        right_keys = [self.compiler(right_scope).compile(re) for _, re in equi_pairs]
        left_width = left.shape.width()
        right_width = right.shape.width()

        def produce(env: Env) -> Iterable[tuple]:
            build: dict[tuple, list[tuple]] = {}
            right_rows = list(right.rows(env))
            for right_row in right_rows:
                key = tuple(k(right_row, env) for k in right_keys)
                if any(v is None for v in key):
                    continue  # NULL never joins
                build.setdefault(key, []).append(right_row)

            matched_right: set[int] = set()
            for left_row in left.rows(env):
                key = tuple(k(left_row, env) for k in left_keys)
                matches = build.get(key, ()) if not any(v is None for v in key) else ()
                emitted = False
                for right_row in matches:
                    combined = left_row + right_row
                    if (
                        residual_predicate is not None
                        and residual_predicate(combined, env) is not True
                    ):
                        continue
                    emitted = True
                    if kind == "RIGHT":
                        matched_right.add(id(right_row))
                    yield combined
                if not emitted and kind == "LEFT":
                    yield left_row + (None,) * right_width
            if kind == "RIGHT":
                for right_row in right_rows:
                    if id(right_row) not in matched_right:
                        yield (None,) * left_width + right_row

        from ..sql.printer import print_expression

        keys = ", ".join(
            f"{print_expression(le)} = {print_expression(re)}"
            for le, re in equi_pairs
        )
        return SourcePlan(
            node.shape, produce,
            kind="HashJoin", detail=f"({kind.lower()}) on {keys}",
            children=[left, right],
        )
