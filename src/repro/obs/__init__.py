"""Observability for the enforcement pipeline: tracing + metrics.

Two complementary views of the service:

* :mod:`repro.obs.tracing` — per-execution :class:`Trace` spans (parse →
  plan → execute) with per-plan-node row counts; feeds ``EXPLAIN ANALYZE``
  and the bench per-stage breakdowns.  Disabled tracing is off-path:
  ``Env.trace is None`` and results are byte-identical.
* :mod:`repro.obs.metrics` — a process-wide, thread-safe
  :class:`MetricsRegistry` (counters/gauges/histograms) rendered as a
  Prometheus-style text exposition by the server's ``stats`` verb and the
  ``python -m repro.obs`` snapshot CLI.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
)
from .tracing import NULL_TRACE, NullTrace, Span, Trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACE",
    "NullTrace",
    "Span",
    "Trace",
    "parse_exposition",
]
