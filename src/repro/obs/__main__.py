"""Metrics snapshot CLI: ``python -m repro.obs``.

Two modes:

* ``python -m repro.obs --host 127.0.0.1 --port 7654`` — connect to a
  running :mod:`repro.server` instance and print its Prometheus-style
  metrics exposition (the same text the ``stats`` wire verb returns).
* ``python -m repro.obs --demo`` — build a tiny in-process scenario, run
  the q1–q8 workload with tracing enabled and print the resulting
  exposition; useful to see every metric name populated without standing
  up a server.
"""

from __future__ import annotations

import argparse
import sys


def _demo_snapshot(patients: int, samples: int) -> str:
    # Imports are local so `--help` stays instant and the module has no
    # import-time dependency on the workload layer.
    from ..workload import apply_experiment_policies, build_patients_scenario
    from ..workload.queries import AD_HOC_QUERIES
    from .metrics import MetricsRegistry

    instance = build_patients_scenario(
        patients=patients, samples_per_patient=samples
    )
    apply_experiment_policies(instance, selectivity=0.4, seed=99)
    monitor = instance.monitor
    registry = MetricsRegistry()
    monitor.attach_metrics(registry)
    monitor.set_tracing(True)
    for query in AD_HOC_QUERIES:
        monitor.execute_with_report(query.sql, "p6")
        monitor.explain(query.sql, "p6", analyze=True)
    return registry.render()


def _remote_snapshot(host: str, port: int) -> str:
    from ..server.client import Client

    with Client(host, port) as client:
        return client.metrics()


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Print a Prometheus-style metrics snapshot.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="server host")
    parser.add_argument(
        "--port", type=int, default=None, help="server port (enables remote mode)"
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a tiny traced in-process workload instead of connecting",
    )
    parser.add_argument("--patients", type=int, default=10)
    parser.add_argument("--samples", type=int, default=4)
    args = parser.parse_args(argv)

    if args.demo:
        text = _demo_snapshot(args.patients, args.samples)
    elif args.port is not None:
        text = _remote_snapshot(args.host, args.port)
    else:
        parser.error("pass --port to scrape a server, or --demo")
        return 2  # unreachable; parser.error exits
    sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
