"""Per-execution tracing: nested spans plus per-plan-node row counters.

A :class:`Trace` is created per enforced execution (never shared between
threads — the server's per-connection threads each get their own) and
records the pipeline stages as nested :class:`Span` objects: ``parse`` →
``plan`` (cache hit/miss, join strategy) → ``execute`` (rows, compliance
checks, memo hits).  The engine cooperates through ``Env.trace``: when an
execution environment carries a trace, every :class:`~repro.engine.executor.
SourcePlan` wraps its row producer in :meth:`Trace.count_rows`, giving
EXPLAIN ANALYZE its per-node row counts.

When tracing is disabled the monitor uses :data:`NULL_TRACE` and leaves
``Env.trace`` as ``None`` — the engine's fast path then performs a single
``is None`` check per plan node and produces byte-identical results (the
differential fuzz oracle cannot tell the difference).

This module depends on nothing outside the standard library so that every
layer (engine, core, server, bench) can import it without cycles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterable, Iterator


class Span:
    """One named, timed pipeline stage with attributes and child spans."""

    __slots__ = ("name", "attrs", "children", "elapsed")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs: dict = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.elapsed: float = 0.0

    def annotate(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        """JSON-ready form of this span and its children."""
        return {
            "name": self.name,
            "elapsed_s": self.elapsed,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, elapsed={self.elapsed:.6f}, attrs={self.attrs})"


class Trace:
    """A per-execution recorder: top-level stage spans + per-node row counts.

    Not thread-safe by design — one trace belongs to exactly one execution
    on one thread.  Cross-thread aggregation goes through the
    :class:`~repro.obs.metrics.MetricsRegistry` instead.
    """

    enabled = True

    __slots__ = ("spans", "_stack", "node_rows", "node_batches")

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        #: id(plan node) → rows produced by that node during this execution.
        self.node_rows: dict[int, int] = {}
        #: id(plan node) → column batches produced (batch executor only).
        self.node_batches: dict[int, int] = {}

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a timed span; nests under the currently open span."""
        span = Span(name, attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.elapsed = time.perf_counter() - started
            self._stack.pop()

    # -- engine hooks (duck-typed through Env.trace) ---------------------------

    def count_rows(self, node: object, rows: Iterable[tuple]) -> Iterator[tuple]:
        """Yield ``rows`` unchanged while counting them against ``node``."""
        key = id(node)
        counts = self.node_rows
        if key not in counts:
            counts[key] = 0
        for row in rows:
            counts[key] += 1
            yield row

    def count_batches(self, node: object, batches: Iterable) -> Iterator:
        """Yield batches unchanged while crediting their *row* totals.

        The ledger stays per-row-accurate under the batch executor: each
        batch adds ``len(batch)`` to ``node_rows`` (so EXPLAIN ANALYZE's
        ``rows=`` figures match row mode exactly) and 1 to ``node_batches``.
        """
        key = id(node)
        rows = self.node_rows
        counts = self.node_batches
        if key not in rows:
            rows[key] = 0
        if key not in counts:
            counts[key] = 0
        for batch in batches:
            rows[key] += len(batch)
            counts[key] += 1
            yield batch

    def add_rows(self, node: object, count: int) -> None:
        """Credit ``count`` produced rows to ``node`` (block-level totals)."""
        key = id(node)
        self.node_rows[key] = self.node_rows.get(key, 0) + count

    def rows_for(self, node: object) -> int | None:
        """Rows recorded for a plan node, or ``None`` if it never ran."""
        return self.node_rows.get(id(node))

    def batches_for(self, node: object) -> int | None:
        """Batches recorded for a plan node, or ``None`` under row mode."""
        return self.node_batches.get(id(node))

    def annotation(self, node: object) -> str:
        """The ``describe()`` suffix: ``" (rows=N[, batches=M])"`` or ``""``."""
        rows = self.node_rows.get(id(node))
        if rows is None:
            return ""
        batches = self.node_batches.get(id(node))
        if batches is None:
            return f" (rows={rows})"
        return f" (rows={rows}, batches={batches})"

    # -- reporting -------------------------------------------------------------

    def find(self, name: str) -> Span | None:
        """First span named ``name`` across all recorded stages."""
        for span in self.spans:
            found = span.find(name)
            if found is not None:
                return found
        return None

    def stage_seconds(self) -> dict[str, float]:
        """Elapsed wall time per top-level stage, in recording order."""
        return {span.name: span.elapsed for span in self.spans}

    def total_seconds(self) -> float:
        """Sum of the top-level stage times."""
        return sum(span.elapsed for span in self.spans)

    def to_dict(self) -> dict:
        """JSON-ready form of the whole trace."""
        return {
            "stages": [span.to_dict() for span in self.spans],
            "total_s": self.total_seconds(),
        }


class _NullSpan:
    """The no-op span handed out by :class:`NullTrace`."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: list = []
    elapsed = 0.0

    def annotate(self, **attrs: object) -> None:
        pass

    def find(self, name: str) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTrace:
    """Off-path stand-in for :class:`Trace` when tracing is disabled.

    Supports the same surface the monitor uses (``span``/``stage_seconds``/
    ``find``) but records nothing.  The engine never sees it: disabled
    executions carry ``Env.trace = None``, so plan nodes skip the counting
    wrapper entirely.
    """

    enabled = False

    __slots__ = ()

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[_NullSpan]:
        yield _NULL_SPAN

    def count_rows(self, node: object, rows: Iterable[tuple]) -> Iterable[tuple]:
        return rows

    def count_batches(self, node: object, batches: Iterable) -> Iterable:
        return batches

    def add_rows(self, node: object, count: int) -> None:
        pass

    def rows_for(self, node: object) -> None:
        return None

    def batches_for(self, node: object) -> None:
        return None

    def annotation(self, node: object) -> str:
        return ""

    def find(self, name: str) -> None:
        return None

    def stage_seconds(self) -> dict[str, float]:
        return {}

    def total_seconds(self) -> float:
        return 0.0

    def to_dict(self) -> dict:
        return {"stages": [], "total_s": 0.0}


#: Shared no-op trace; stateless, so one instance serves every thread.
NULL_TRACE = NullTrace()
