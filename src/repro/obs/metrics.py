"""Process-wide metrics: thread-safe counters, gauges and histograms.

A :class:`MetricsRegistry` aggregates what the per-execution traces cannot:
totals across every thread of the service — queries by outcome, plan-cache
hits, ``complieswith`` invocations, admission rejections, audit records.
Families support Prometheus-style labels, histograms use fixed buckets (so
p50/p95 estimates need no per-observation storage), and :meth:`MetricsRegistry.
render` emits the text exposition format scraped off the server's ``stats``
verb.

Zero dependencies outside the standard library; every mutation takes the
family's lock, so concurrent query threads never lose increments (the
thread-safety suite stresses exactly this).
"""

from __future__ import annotations

import threading
from typing import Iterable

#: Default latency buckets (seconds): 100µs .. 10s, roughly log-spaced.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Family:
    """Common machinery: name, help text, label-keyed series, a lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Family):
    """A monotonically increasing counter family."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = ""):
        super().__init__(name, help_text)
        self._series: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one labelled series (0 when never incremented)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every labelled series."""
        with self._lock:
            return sum(self._series.values())

    def series(self) -> dict[LabelKey, float]:
        """Snapshot of all labelled series."""
        with self._lock:
            return dict(self._series)

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            if not self._series:
                lines.append(f"{self.name} 0")
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{_render_labels(key)} "
                    f"{_format_value(self._series[key])}"
                )
        return lines


class Gauge(_Family):
    """A value that can go up and down (connections, epoch, cache size)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = ""):
        super().__init__(name, help_text)
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            if not self._series:
                lines.append(f"{self.name} 0")
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{_render_labels(key)} "
                    f"{_format_value(self._series[key])}"
                )
        return lines


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "total")

    def __init__(self, buckets: int):
        self.bucket_counts = [0] * buckets  # per-bucket (non-cumulative)
        self.count = 0
        self.total = 0.0


class Histogram(_Family):
    """Fixed-bucket histogram; quantiles estimated from bucket bounds."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def _slot(self, key: LabelKey) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets) + 1)
        return series

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the labelled series."""
        index = len(self.buckets)  # +Inf overflow bucket
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            series = self._slot(_label_key(labels))
            series.bucket_counts[index] += 1
            series.count += 1
            series.total += value

    def count(self, **labels: object) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series else 0

    def sum(self, **labels: object) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series else 0.0

    def quantile(self, fraction: float, **labels: object) -> float:
        """Upper bound of the bucket containing the requested quantile.

        Returns 0.0 for an empty series and the largest finite bound for
        observations that landed in the overflow bucket — the standard
        fixed-bucket estimate (precise to one bucket width).
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return 0.0
            target = fraction * series.count
            cumulative = 0
            for index, bucket_count in enumerate(series.bucket_counts):
                cumulative += bucket_count
                if cumulative >= target:
                    if index < len(self.buckets):
                        return self.buckets[index]
                    return self.buckets[-1]
        return self.buckets[-1]

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            for key in sorted(self._series):
                series = self._series[key]
                cumulative = 0
                for index, bound in enumerate(self.buckets):
                    cumulative += series.bucket_counts[index]
                    labels = _render_labels(key, (("le", _format_value(bound)),))
                    lines.append(f"{self.name}_bucket{labels} {cumulative}")
                labels = _render_labels(key, (("le", "+Inf"),))
                lines.append(f"{self.name}_bucket{labels} {series.count}")
                lines.append(
                    f"{self.name}_sum{_render_labels(key)} "
                    f"{_format_value(series.total)}"
                )
                lines.append(f"{self.name}_count{_render_labels(key)} {series.count}")
        return lines


class MetricsRegistry:
    """Name → metric-family mapping shared by every layer of the service.

    Families are created on first use; re-requesting a name returns the
    existing family (a different type under the same name is an error, which
    catches accidental metric-name collisions early).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _family(self, cls, name: str, help_text: str, **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = cls(name, help_text, **kwargs)
            elif not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {cls.kind}"
                )
            return family

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._family(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._family(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._family(Histogram, name, help_text, buckets=buckets)

    def families(self) -> list[_Family]:
        """All registered families, in registration order."""
        with self._lock:
            return list(self._families.values())

    def render(self) -> str:
        """The Prometheus text exposition of every registered family."""
        lines: list[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """A JSON-ready snapshot (counters/gauges only; histograms as p50/p95)."""
        out: dict = {}
        for family in self.families():
            if isinstance(family, (Counter, Gauge)):
                out[family.name] = {
                    _render_labels(key) or "": value
                    for key, value in family.series().items()
                } if isinstance(family, Counter) else {
                    _render_labels(key) or "": value
                    for key, value in family._series.items()
                }
            elif isinstance(family, Histogram):
                out[family.name] = {
                    "count": sum(s.count for s in family._series.values()),
                    "p50_s": family.quantile(0.5) if family._series else 0.0,
                    "p95_s": family.quantile(0.95) if family._series else 0.0,
                }
        return out


def parse_exposition(text: str) -> dict[str, float]:
    """Parse a Prometheus text exposition back into ``{sample: value}``.

    Keys are the full sample lines' left-hand sides (metric name plus the
    rendered label set, exactly as emitted), so tests can assert individual
    series without a real Prometheus client.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        left, _, right = line.rpartition(" ")
        if not left:
            raise ValueError(f"malformed exposition line: {line!r}")
        value = float("inf") if right == "+Inf" else float(right)
        samples[left] = value
    return samples
