"""Plain-text rendering of the experiment results.

Prints the same rows/series the paper's figures report: per-query compliance
check counts across selectivities (Figure 6), original vs rewritten
execution times across selectivities (Figure 7) and across dataset sizes
(Figure 8).
"""

from __future__ import annotations

from .experiments import Experiment2Result
from .shards import ShardsRun
from .txn import TxnRun
from .harness import (
    ColumnarRun,
    ExperimentRun,
    HotPathRun,
    IndexesRun,
    OptimizerRun,
)


def _format_table(header: list[str], rows: list[list[str]]) -> str:
    widths = [len(cell) for cell in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    separator = "  ".join("-" * width for width in widths)
    return "\n".join([line(header), separator, *[line(row) for row in rows]])


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}"


def figure6_table(run: ExperimentRun) -> str:
    """Figure 6: policy compliance checks per query, by selectivity."""
    selectivities = run.selectivities()
    header = ["query", *[f"s={s:g}" for s in selectivities]]
    rows = []
    for query in run.queries():
        rows.append(
            [query]
            + [str(run.cell(query, s).compliance_checks) for s in selectivities]
        )
    title = (
        f"Figure 6 — compliance checks per query "
        f"(patients={run.config.patients}, "
        f"samples={run.config.samples_per_patient})"
    )
    return f"{title}\n{_format_table(header, rows)}"


def figure7_table(run: ExperimentRun) -> str:
    """Figure 7: execution time (ms) vs policy selectivity."""
    selectivities = run.selectivities()
    header = ["query", "orig", *[f"rw s={s:g}" for s in selectivities]]
    rows = []
    for query in run.queries():
        baseline = run.cell(query, selectivities[0]).original_time
        rows.append(
            [query, _ms(baseline)]
            + [_ms(run.cell(query, s).rewritten_time) for s in selectivities]
        )
    title = (
        f"Figure 7 — query execution time (ms) vs policy selectivity "
        f"(patients={run.config.patients}, "
        f"samples={run.config.samples_per_patient})"
    )
    return f"{title}\n{_format_table(header, rows)}"


def hotpath_table(run: HotPathRun) -> str:
    """Prepared pipeline: cold vs cached enforcement latency (ms).

    ``cold`` is the full parse → sign → rewrite → plan → execute pipeline
    on an empty plan cache, ``prep`` the pipeline without execution, and
    ``hot`` an execution through the epoch-keyed plan cache; ``speedup``
    is cold/hot averaged across the selectivity sweep.
    """
    selectivities = run.selectivities()
    header = ["query"]
    for s in selectivities:
        header.extend([f"s={s:g} cold", "prep", "hot"])
    header.append("speedup")
    rows = []
    for query in run.queries():
        row = [query]
        speedups = []
        for s in selectivities:
            cell = run.cell(query, s)
            row.extend(
                [_ms(cell.cold_time), _ms(cell.prepare_time), _ms(cell.cached_time)]
            )
            speedups.append(cell.speedup)
        row.append(f"{sum(speedups) / len(speedups):.1f}x" if speedups else "-")
        rows.append(row)
    title = (
        f"Prepared pipeline — cold vs cached enforcement latency (ms) "
        f"(patients={run.config.patients}, "
        f"samples={run.config.samples_per_patient})"
    )
    hit_line = (
        f"plan-cache hit rate over cached executions: {run.hit_rate():.0%}"
    )
    return f"{title}\n{_format_table(header, rows)}\n{hit_line}"


def columnar_table(run: ColumnarRun) -> str:
    """Columnar executor comparison: row vs batch latency per query.

    ``rows`` is the enforced result cardinality, ``row`` the cached-plan
    latency (ms) under the tuple-at-a-time reference executor, each
    ``batch=N`` column the same latency under the batch executor at that
    page size, and ``speedup`` the row/batch ratio at the default (largest)
    page size.  The footer aggregates total row time over total batch time.
    """
    header = ["query", "rows", "row"]
    header.extend(f"batch={size}" for size in run.batch_sizes)
    header.append("speedup")
    rows = []
    for m in run.measurements:
        row = [m.query, str(m.rows_returned), _ms(m.row_time)]
        row.extend(_ms(m.batch_times[size]) for size in run.batch_sizes)
        row.append(f"{m.speedup(run.default_batch_size):.2f}x")
        rows.append(row)
    title = (
        f"Columnar — row vs batch executor, cached plans "
        f"(patients={run.config.patients}, "
        f"samples={run.config.samples_per_patient}, "
        f"s={run.selectivity:g})"
    )
    summary = (
        f"aggregate speedup at batch={run.default_batch_size}: "
        f"{run.aggregate_speedup():.2f}x; "
        f"result mismatches: {len(run.mismatches())}"
    )
    return f"{title}\n{_format_table(header, rows)}\n{summary}"


def optimizer_table(run: OptimizerRun) -> str:
    """Optimizer comparison: per-row checks vs bitmap builds, per query.

    ``off`` is the per-row evaluation count (the Figure 6 metric), ``on``
    the ``compliesWith`` invocations the bitmap-pre-filtered plan performs
    from a cold bitmap cache, ``warm`` a repeat execution with the bitmaps
    already built, and ``bound`` the static distinct-policy-value ceiling
    the optimized plan must respect.  ``hot off``/``hot on`` are cached-plan
    execution latencies (ms) averaged across the selectivity sweep.
    """
    selectivities = run.selectivities()
    header = ["query"]
    for s in selectivities:
        header.extend([f"s={s:g} off", "on", "warm", "bound"])
    header.extend(["hot off", "hot on"])
    rows = []
    for query in run.queries():
        row = [query]
        off_times: list[float] = []
        on_times: list[float] = []
        for s in selectivities:
            cell = run.cell(query, s)
            row.extend(
                [
                    str(cell.checks_off),
                    str(cell.checks_on_cold),
                    str(cell.checks_on_warm),
                    str(cell.bitmap_bound),
                ]
            )
            off_times.append(cell.cached_time_off)
            on_times.append(cell.cached_time_on)
        row.append(_ms(sum(off_times) / len(off_times)) if off_times else "-")
        row.append(_ms(sum(on_times) / len(on_times)) if on_times else "-")
        rows.append(row)
    title = (
        f"Optimizer — compliesWith cost, per-row vs policy bitmaps "
        f"(patients={run.config.patients}, "
        f"samples={run.config.samples_per_patient})"
    )
    summary = (
        f"bound violations: {len(run.violations())}; "
        f"result mismatches: {len(run.mismatches())}"
    )
    return f"{title}\n{_format_table(header, rows)}\n{summary}"


def shards_table(run: ShardsRun) -> str:
    """Scale-out sweep: threaded baseline vs async sharded, per client count.

    ``server``/``shards`` name the flavor (the thread-per-connection
    baseline reports 0 shards); ``qps`` counts completed statements per
    second across all sessions; ``p50``/``p95`` are per-statement
    round-trip latencies; ``hit`` is the plan-cache hit share; ``busy``
    the number of ``server_busy`` backpressure responses clients absorbed.
    """
    header = [
        "server", "shards", "clients", "queries",
        "qps", "p50 ms", "p95 ms", "hit", "busy",
    ]
    rows = []
    for sample in run.samples:
        rows.append(
            [
                sample.server,
                str(sample.shards) if sample.shards else "-",
                str(sample.clients),
                str(sample.queries),
                f"{sample.throughput:.0f}",
                _ms(sample.percentile(0.50)),
                _ms(sample.percentile(0.95)),
                f"{sample.hit_rate:.0%}",
                str(sample.busy_responses),
            ]
        )
    title = (
        f"Scale-out — threaded baseline vs async sharded throughput "
        f"(patients={run.config.patients}, "
        f"samples={run.config.samples_per_patient}, "
        f"selectivity={run.selectivity:g}, backend={run.backend})"
    )
    return f"{title}\n{_format_table(header, rows)}"


def txn_table(run: TxnRun) -> str:
    """Readers under policy churn: RW-lock fence vs MVCC snapshots.

    ``qps`` counts completed reads per second across all sessions;
    ``p50``/``p95`` are per-read round-trip latencies (the RW-lock rows
    absorb every policy recompilation into this tail); ``churn`` is how
    many policy writes landed during the window; ``writes``/``aborts``
    are the sessions' UPDATE transactions and how many lost the
    first-committer-wins race (structurally 0 for the lock rows — those
    writes serialize instead of aborting).
    """
    header = [
        "mode", "conflict", "readers", "reads", "qps",
        "p50 ms", "p95 ms", "churn", "writes", "aborts", "abort%",
    ]
    rows = []
    for sample in run.samples:
        rows.append(
            [
                sample.mode,
                sample.granularity,
                str(sample.readers),
                str(sample.reads),
                f"{sample.read_throughput:.0f}",
                _ms(sample.percentile(0.50)),
                _ms(sample.percentile(0.95)),
                str(sample.churn_writes),
                str(sample.writes),
                str(sample.aborts),
                f"{sample.abort_rate * 100:.0f}",
            ]
        )
    title = (
        f"Transactions — reader latency under policy churn, "
        f"RW-lock fence vs MVCC snapshots "
        f"(patients={run.config.patients}, "
        f"samples={run.config.samples_per_patient}, "
        f"reads/session={run.reads_per_session})"
    )
    return f"{title}\n{_format_table(header, rows)}"


def figure8_table(result: Experiment2Result) -> str:
    """Figure 8: execution time (ms) vs dataset size at selectivity 0.4."""
    if not result.scenarios:
        return "Figure 8 — (no scenarios)"
    queries = result.scenarios[0].run.queries()
    header = ["query"]
    for scenario in result.scenarios:
        header.append(f"{scenario.label} orig ({scenario.sensed_rows} rows)")
        header.append(f"{scenario.label} rw")
    rows = []
    for query in queries:
        row = [query]
        for scenario in result.scenarios:
            selectivity = scenario.run.selectivities()[0]
            cell = scenario.run.cell(query, selectivity)
            row.append(_ms(cell.original_time))
            row.append(_ms(cell.rewritten_time))
        rows.append(row)
    title = "Figure 8 — query execution time (ms) vs dataset size (s=0.4)"
    return f"{title}\n{_format_table(header, rows)}"


def indexes_table(run: IndexesRun) -> str:
    """Access-path comparison: full scan vs index vs partition pruning.

    One row per swept ``sensed_data`` size.  ``scan``/``index`` are the
    unenforced selective-probe latencies (ms) and ``speedup`` their ratio;
    ``guard``/``pruned`` the enforced latencies without and with the
    policy-partitioned index, with ``skips`` the partitions the pruned run
    never touched (out of ``parts``).
    """
    header = [
        "rows", "hit", "scan", "index", "speedup",
        "guard", "pruned", "p-speedup", "parts", "skips",
    ]
    rows = []
    for m in run.measurements:
        rows.append(
            [
                str(m.rows),
                str(m.rows_returned),
                _ms(m.full_scan_time),
                _ms(m.index_time),
                f"{m.index_speedup:.2f}x",
                _ms(m.guard_full_time),
                _ms(m.guard_partitioned_time),
                f"{m.partitioned_speedup:.2f}x",
                str(m.partition_count),
                str(m.partition_skips),
            ]
        )
    title = (
        f"Indexes — selective probe per access path "
        f"(s={run.selectivity:g}, samples={run.samples_per_patient})"
    )
    mismatches = sum(1 for m in run.measurements if not m.rows_match)
    return f"{title}\n{_format_table(header, rows)}\nresult mismatches: {mismatches}"
