"""Benchmark harness regenerating the paper's evaluation (Section 6)."""

from .concurrency import (
    ConcurrencyRun,
    ConcurrencySample,
    run_concurrency,
)
from .experiments import (
    DatasetScenarioResult,
    Experiment2Result,
    run_experiment1,
    run_experiment2,
    run_hotpath,
)
from .harness import (
    BENCH_PURPOSE,
    ExperimentConfig,
    ExperimentRun,
    HotPathMeasurement,
    HotPathRun,
    PAPER_SELECTIVITIES,
    QueryMeasurement,
    build_scenario,
    count_checks,
    experiment_queries,
    measure_hotpath,
    measure_query,
    set_selectivity,
)
from .reporting import (
    concurrency_table,
    figure6_table,
    figure7_table,
    figure8_table,
    hotpath_table,
)

__all__ = [
    "ConcurrencyRun",
    "ConcurrencySample",
    "run_concurrency",
    "concurrency_table",
    "DatasetScenarioResult",
    "Experiment2Result",
    "run_experiment1",
    "run_experiment2",
    "run_hotpath",
    "BENCH_PURPOSE",
    "ExperimentConfig",
    "ExperimentRun",
    "HotPathMeasurement",
    "HotPathRun",
    "PAPER_SELECTIVITIES",
    "QueryMeasurement",
    "build_scenario",
    "count_checks",
    "experiment_queries",
    "measure_hotpath",
    "measure_query",
    "set_selectivity",
    "figure6_table",
    "figure7_table",
    "figure8_table",
    "hotpath_table",
]
