"""The paper's experiments (Section 6.3).

* :func:`run_experiment1` sweeps policy selectivity over a fixed dataset and
  yields the data behind **Figure 6** (compliance checks per query) and
  **Figure 7** (original vs rewritten execution time).
* :func:`run_experiment2` fixes selectivity at 0.4 and sweeps the dataset
  size (the paper's Scn 1-4), yielding **Figure 8**.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .harness import (
    COLUMNAR_BATCH_SIZES,
    ColumnarRun,
    ExperimentConfig,
    ExperimentRun,
    HotPathRun,
    IndexesRun,
    OptimizerRun,
    build_scenario,
    experiment_queries,
    measure_columnar,
    measure_hotpath,
    measure_indexes,
    measure_optimizer,
    measure_query,
    set_selectivity,
)

#: Dataset sizes (``sensed_data`` rows) the indexes experiment sweeps.
INDEXES_SIZES = (10_000, 100_000)


def run_experiment1(config: ExperimentConfig | None = None) -> ExperimentRun:
    """Experiment 1: vary policy selectivity, fixed dataset (Figures 6-7).

    The paper keeps the same data while regenerating policies per
    selectivity level; we do the same — the scenario is built once and only
    the ``policy`` column is rewritten between sweeps.
    """
    config = config or ExperimentConfig.scaled()
    scenario = build_scenario(config)
    queries = experiment_queries(config)
    run = ExperimentRun(config)
    for selectivity in config.selectivities:
        set_selectivity(scenario, selectivity, config.policy_seed)
        for query in queries:
            run.measurements.append(
                measure_query(scenario, query, selectivity, config.repeat)
            )
    return run


def run_hotpath(
    config: ExperimentConfig | None = None, executions: int = 5
) -> HotPathRun:
    """Prepared-pipeline experiment: cold vs cached enforcement latency.

    For every (query, selectivity) sweep point this measures the full
    pipeline on a cold plan cache, the prepare step alone, and repeated
    executions through a prepared handle (plan cached), plus the cache hit
    rate those executions achieved.  Regenerating policies between sweep
    points bumps the policy epoch, so each selectivity level starts from a
    genuinely invalidated cache.
    """
    config = config or ExperimentConfig.scaled()
    scenario = build_scenario(config)
    queries = experiment_queries(config)
    run = HotPathRun(config)
    for selectivity in config.selectivities:
        set_selectivity(scenario, selectivity, config.policy_seed)
        for query in queries:
            run.measurements.append(
                measure_hotpath(
                    scenario, query, selectivity, config.repeat, executions
                )
            )
    return run


def run_optimizer(
    config: ExperimentConfig | None = None, executions: int = 3
) -> OptimizerRun:
    """Optimizer experiment: bitmap pre-filtering vs per-row enforcement.

    For every (query, selectivity) sweep point this executes the query once
    with the pass pipeline off (the per-row evaluation model of Figure 6)
    and once with it on (policy guards answered by cached bitmaps), from a
    cold plan cache and cold bitmaps each time.  It records both check
    counts, the static distinct-policy-value bound the optimized plan must
    respect, whether the two modes returned identical rows, and the cached
    (hot plan) execution latency under each mode.
    """
    config = config or ExperimentConfig.scaled()
    scenario = build_scenario(config)
    queries = experiment_queries(config)
    run = OptimizerRun(config)
    for selectivity in config.selectivities:
        set_selectivity(scenario, selectivity, config.policy_seed)
        for query in queries:
            run.measurements.append(
                measure_optimizer(
                    scenario, query, selectivity, config.repeat, executions
                )
            )
    return run


def run_columnar(
    config: ExperimentConfig | None = None,
    batch_sizes: tuple[int, ...] = COLUMNAR_BATCH_SIZES,
    selectivity: float = 0.4,
    executions: int = 3,
) -> ColumnarRun:
    """Columnar experiment: row vs batch executor over the Figure-6 queries.

    Fixes policy selectivity at Experiment 2's 0.4 and times every workload
    query under the row-at-a-time reference executor and under the batch
    executor at each swept page size (64/256/1024 rows by default), all on
    cached prepared plans.  Unlike the other experiments this defaults to
    the *unscaled* ``ExperimentConfig`` sizes: the executor comparison is a
    throughput measurement, and at ``REPRO_SCALE``'s tiny default the
    per-query work would be mostly fixed overhead.
    """
    config = config or ExperimentConfig()
    scenario = build_scenario(config)
    set_selectivity(scenario, selectivity, config.policy_seed)
    run = ColumnarRun(config, selectivity=selectivity, batch_sizes=batch_sizes)
    for query in experiment_queries(config):
        run.measurements.append(
            measure_columnar(
                scenario, query, batch_sizes, config.repeat, executions
            )
        )
    return run


@dataclass
class DatasetScenarioResult:
    """One dataset size (the paper's Scn N) of Experiment 2."""

    label: str
    sensed_rows: int
    run: ExperimentRun


@dataclass
class Experiment2Result:
    """All dataset sizes of Experiment 2 (Figure 8)."""

    scenarios: list[DatasetScenarioResult] = field(default_factory=list)


def run_experiment2(
    base_config: ExperimentConfig | None = None,
    samples_sweep: tuple[int, ...] | None = None,
    selectivity: float = 0.4,
) -> Experiment2Result:
    """Experiment 2: vary dataset size at fixed selectivity 0.4 (Figure 8).

    The paper's Scn 1-4 hold ``users``/``nutritional_profiles`` at 1,000
    rows and grow ``sensed_data`` from 10^4 to 10^7 by a factor of 10 per
    scenario; ``samples_sweep`` holds the per-patient sample counts, default
    a geometric ×10-style sweep scaled to the configured patient count.
    """
    base_config = base_config or ExperimentConfig.scaled()
    if samples_sweep is None:
        base = max(2, base_config.samples_per_patient // 10)
        samples_sweep = (base, base * 5, base * 10, base * 50)
    result = Experiment2Result()
    for index, samples in enumerate(samples_sweep, start=1):
        config = dataclasses.replace(
            base_config,
            samples_per_patient=samples,
            selectivities=(selectivity,),
        )
        scenario = build_scenario(config)
        set_selectivity(scenario, selectivity, config.policy_seed)
        run = ExperimentRun(config)
        for query in experiment_queries(config):
            run.measurements.append(
                measure_query(scenario, query, selectivity, config.repeat)
            )
        result.scenarios.append(
            DatasetScenarioResult(
                label=f"Scn {index}",
                sensed_rows=config.patients * samples,
                run=run,
            )
        )
    return result


def run_indexes(
    sizes: tuple[int, ...] = INDEXES_SIZES,
    selectivity: float = 0.4,
    samples_per_patient: int = 100,
    executions: int = 3,
    policy_seed: int = 411595,
    data_seed: int = 20150311,
) -> IndexesRun:
    """Indexes experiment: full scan vs index scan vs partition pruning.

    For each swept size a fresh patients scenario is built with
    ``sensed_data`` at that many rows and scattered policies at the fixed
    Experiment-2 selectivity, then the most selective workload probe (one
    watch's samples) is timed under every access path (DESIGN.md §13).
    Unlike the other experiments this sweep ignores ``REPRO_SCALE`` — the
    access-path comparison is *about* the table sizes, so they are passed
    explicitly (CI smoke passes small ones).
    """
    run = IndexesRun(
        sizes=tuple(sizes),
        selectivity=selectivity,
        samples_per_patient=samples_per_patient,
    )
    for size in sizes:
        patients = max(1, size // samples_per_patient)
        config = ExperimentConfig(
            patients=patients,
            samples_per_patient=samples_per_patient,
            policy_seed=policy_seed,
            data_seed=data_seed,
        )
        scenario = build_scenario(config)
        set_selectivity(scenario, selectivity, policy_seed)
        run.measurements.append(
            measure_indexes(
                scenario, patients * samples_per_patient, executions
            )
        )
    return run
