"""Concurrency experiment: enforced throughput under parallel sessions.

Not in the paper — the paper's evaluation (Section 6.3) is strictly
sequential — but the question the :mod:`repro.server` subsystem exists to
answer: what does the enforcement pipeline sustain when many authenticated
sessions hit it at once?  For each point of a thread sweep the experiment
starts an in-process :class:`~repro.server.QueryServer`, opens one session
per thread and drives a fixed per-session statement mix (cached SELECTs,
parameterized prepared executions), reporting throughput, p50/p95 latency,
the plan-cache hit rate and any ``server_busy`` backpressure hits.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

from ..errors import RemoteError
from ..server import Client, QueryServer
from .harness import (
    BENCH_PURPOSE,
    ExperimentConfig,
    build_scenario,
    set_selectivity,
)

#: The per-session statement mix: two plain SELECTs that should hit the plan
#: cache after warmup, plus one prepared statement executed under a
#: per-iteration parameter binding.
MIX_QUERIES = (
    "select avg(beats) from sensed_data",
    "select user_id, watch_id from users",
)
MIX_PREPARED = "select beats from sensed_data where watch_id = ?"


@dataclass
class ConcurrencySample:
    """One sweep point: ``threads`` parallel sessions, aggregated."""

    threads: int
    queries: int
    elapsed: float
    latencies: list[float] = field(repr=False, default_factory=list)
    cache_hits: int = 0
    cache_lookups: int = 0
    busy_responses: int = 0

    @property
    def throughput(self) -> float:
        """Completed statements per second across all sessions."""
        if self.elapsed <= 0:
            return float("inf")
        return self.queries / self.elapsed

    def percentile(self, fraction: float) -> float:
        """Latency percentile (seconds) over all completed statements."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(
            len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1)
        )
        return ordered[index]

    @property
    def hit_rate(self) -> float:
        """Plan-cache hit share over this sweep point's lookups."""
        if self.cache_lookups == 0:
            return 1.0
        return self.cache_hits / self.cache_lookups

    def to_dict(self) -> dict:
        """JSON-ready summary (latency list reduced to percentiles)."""
        return {
            "threads": self.threads,
            "queries": self.queries,
            "elapsed_s": self.elapsed,
            "throughput_qps": self.throughput,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p95_ms": self.percentile(0.95) * 1e3,
            "hit_rate": self.hit_rate,
            "busy_responses": self.busy_responses,
        }


@dataclass
class ConcurrencyRun:
    """All sweep points of one concurrency experiment."""

    config: ExperimentConfig
    selectivity: float
    queries_per_session: int
    samples: list[ConcurrencySample] = field(default_factory=list)

    def to_dict(self) -> dict:
        """The ``BENCH_concurrency.json`` payload."""
        return {
            "experiment": "concurrency",
            "patients": self.config.patients,
            "samples_per_patient": self.config.samples_per_patient,
            "selectivity": self.selectivity,
            "queries_per_session": self.queries_per_session,
            "sweep": [sample.to_dict() for sample in self.samples],
        }


def _session_worker(
    address: tuple[str, int],
    user: str,
    iterations: int,
    sample: ConcurrencySample,
    lock: threading.Lock,
    start_gate: threading.Event,
) -> None:
    latencies: list[float] = []
    completed = 0
    busy = 0
    with Client(*address) as client:
        client.hello(user, BENCH_PURPOSE)
        statement = client.prepare(MIX_PREPARED)
        start_gate.wait()
        for iteration in range(iterations):
            calls = [
                lambda sql=sql: client.query(sql) for sql in MIX_QUERIES
            ]
            calls.append(
                lambda i=iteration: client.execute_prepared(
                    statement, [f"watch{i % 7}"]
                )
            )
            for call in calls:
                begin = time.perf_counter()
                try:
                    call()
                except RemoteError as exc:
                    if exc.code != "server_busy":
                        raise
                    busy += 1
                    continue
                latencies.append(time.perf_counter() - begin)
                completed += 1
        client.bye()
    with lock:
        sample.latencies.extend(latencies)
        sample.queries += completed
        sample.busy_responses += busy


def run_concurrency(
    config: ExperimentConfig | None = None,
    thread_counts: tuple[int, ...] = (1, 2, 4, 8),
    queries_per_session: int = 8,
    selectivity: float = 0.4,
    max_pending: int = 64,
) -> ConcurrencyRun:
    """Sweep session/thread counts against an in-process query server.

    One scenario is built for the whole run; each sweep point gets a fresh
    server (worker pool sized to the thread count) and a cleared plan cache,
    so hit rates and latencies are comparable across points.
    """
    config = config or ExperimentConfig.scaled()
    scenario = build_scenario(config)
    set_selectivity(scenario, selectivity, config.policy_seed)
    run = ConcurrencyRun(
        config=config,
        selectivity=selectivity,
        queries_per_session=queries_per_session,
    )
    users = [f"bench{index}" for index in range(max(thread_counts))]
    for user in users:
        scenario.admin.grant_purpose(user, BENCH_PURPOSE)

    for threads in thread_counts:
        scenario.monitor.clear_plan_cache()
        info_before = scenario.monitor.plan_cache_info()
        sample = ConcurrencySample(threads=threads, queries=0, elapsed=0.0)
        lock = threading.Lock()
        start_gate = threading.Event()
        with QueryServer(
            scenario.monitor, workers=threads, max_pending=max_pending
        ) as server:
            workers = [
                threading.Thread(
                    target=_session_worker,
                    args=(
                        server.address,
                        users[index],
                        queries_per_session,
                        sample,
                        lock,
                        start_gate,
                    ),
                )
                for index in range(threads)
            ]
            for worker in workers:
                worker.start()
            begin = time.perf_counter()
            start_gate.set()
            for worker in workers:
                worker.join()
            sample.elapsed = time.perf_counter() - begin
        info_after = scenario.monitor.plan_cache_info()
        sample.cache_hits = info_after["hits"] - info_before["hits"]
        sample.cache_lookups = sample.cache_hits + (
            info_after["misses"] - info_before["misses"]
        )
        run.samples.append(sample)
    return run
