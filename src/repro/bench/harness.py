"""Experiment harness shared by the CLI and the pytest benchmarks.

Builds the evaluation setup of Section 6 — the *patients* scenario with
scattered policies — and measures, per query, execution time of the original
and rewritten variants plus the number of ``compliesWith`` invocations (the
complexity metric of Figure 6).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..core.admin import COMPLIES_WITH
from ..workload import (
    AD_HOC_QUERIES,
    BenchmarkQuery,
    PatientsScenario,
    apply_experiment_policies,
    build_patients_scenario,
    random_queries,
)

#: The selectivity sweep of Experiment 1 (Section 6.3).
PAPER_SELECTIVITIES = (0.0, 0.2, 0.4, 0.6)

#: The purpose the benchmark queries run under (scattered policies are
#: purpose-agnostic, so any registered purpose gives identical behaviour).
BENCH_PURPOSE = "p6"


def scale_factor() -> float:
    """Global dataset scale multiplier, from the ``REPRO_SCALE`` env var.

    ``REPRO_SCALE=1`` reproduces the paper's Experiment 1 sizes (1,000
    patients × 1,000 samples); the default 0.01 keeps the pure-Python engine
    within seconds per query.
    """
    return float(os.environ.get("REPRO_SCALE", "0.01"))


@dataclass(frozen=True)
class ExperimentConfig:
    """Sizing and sweep parameters for the experiments."""

    patients: int = 100
    samples_per_patient: int = 100
    selectivities: tuple[float, ...] = PAPER_SELECTIVITIES
    include_random: bool = True
    random_seed: int = 2015
    policy_seed: int = 411595
    data_seed: int = 20150311
    repeat: int = 1

    @classmethod
    def scaled(cls, **overrides) -> "ExperimentConfig":
        """Paper sizes multiplied by :func:`scale_factor`."""
        factor = scale_factor()
        defaults = {
            "patients": max(10, int(1000 * factor)),
            "samples_per_patient": max(10, int(1000 * factor)),
        }
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class QueryMeasurement:
    """One (query, selectivity) cell of Figures 6 and 7."""

    query: str
    selectivity: float
    original_time: float
    rewritten_time: float
    compliance_checks: int
    original_rows: int
    rewritten_rows: int

    @property
    def overhead(self) -> float:
        """Rewritten minus original execution time (may be negative)."""
        return self.rewritten_time - self.original_time


@dataclass
class ExperimentRun:
    """All measurements of one experiment configuration."""

    config: ExperimentConfig
    measurements: list[QueryMeasurement] = field(default_factory=list)

    def cell(self, query: str, selectivity: float) -> QueryMeasurement:
        """Look up a single measurement."""
        for measurement in self.measurements:
            if (
                measurement.query == query
                and abs(measurement.selectivity - selectivity) < 1e-9
            ):
                return measurement
        raise KeyError((query, selectivity))

    def queries(self) -> list[str]:
        """Distinct query names, in first-seen order."""
        seen: list[str] = []
        for measurement in self.measurements:
            if measurement.query not in seen:
                seen.append(measurement.query)
        return seen

    def selectivities(self) -> list[float]:
        """Distinct selectivity values, in first-seen order."""
        seen: list[float] = []
        for measurement in self.measurements:
            if measurement.selectivity not in seen:
                seen.append(measurement.selectivity)
        return seen


def experiment_queries(config: ExperimentConfig) -> tuple[BenchmarkQuery, ...]:
    """q1-q8 plus (optionally) r1-r20 for the configured sizes."""
    queries = list(AD_HOC_QUERIES)
    if config.include_random:
        queries.extend(
            random_queries(
                config.random_seed, config.patients, config.samples_per_patient
            )
        )
    return tuple(queries)


def build_scenario(config: ExperimentConfig) -> PatientsScenario:
    """The patients scenario at the configured size (no policies yet)."""
    return build_patients_scenario(
        patients=config.patients,
        samples_per_patient=config.samples_per_patient,
        seed=config.data_seed,
    )


def set_selectivity(
    scenario: PatientsScenario, selectivity: float, policy_seed: int
) -> None:
    """(Re)generate scattered policies at a target selectivity (§6.1)."""
    apply_experiment_policies(scenario, selectivity, seed=policy_seed)


def time_query(run, repeat: int = 1) -> float:
    """Best-of-``repeat`` wall time of a zero-argument callable."""
    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def measure_query(
    scenario: PatientsScenario,
    query: BenchmarkQuery,
    selectivity: float,
    repeat: int = 1,
) -> QueryMeasurement:
    """Measure one query under the currently installed policies.

    Figure 6 counts per-row ``compliesWith`` evaluations, so the measurement
    pins the optimizer off for its duration: bitmap pre-filtering would turn
    the metric into a distinct-policy-value count and break the figure's
    selectivity/dataset-size relationships.  The optimizer's own experiment
    (:func:`run_optimizer`) measures both modes side by side instead.
    """
    monitor = scenario.monitor
    database = scenario.database

    previous_mode = monitor.optimizer_mode
    monitor.set_optimizer("off")
    try:
        original_rows = len(monitor.execute_unprotected(query.sql))
        original_time = time_query(
            lambda: monitor.execute_unprotected(query.sql), repeat
        )

        report = monitor.execute_with_report(query.sql, BENCH_PURPOSE)
        rewritten_rows = len(report.result)
        checks = report.compliance_checks
        # Time the rewritten statement itself (rewriting cost excluded, like
        # the paper, which compares query execution times).
        rewritten_select = monitor.rewrite(query.sql, BENCH_PURPOSE)
        rewritten_time = time_query(
            lambda: database.query(rewritten_select, optimizer="off"), repeat
        )
    finally:
        monitor.set_optimizer(previous_mode)

    return QueryMeasurement(
        query=query.name,
        selectivity=selectivity,
        original_time=original_time,
        rewritten_time=rewritten_time,
        compliance_checks=checks,
        original_rows=original_rows,
        rewritten_rows=rewritten_rows,
    )


@dataclass
class HotPathMeasurement:
    """One (query, selectivity) cell of the prepared-pipeline experiment.

    ``cold_time`` runs the whole enforcement pipeline on a cold plan cache
    (parse → sign → rewrite → plan → execute); ``prepare_time`` is the same
    pipeline without the execution; ``cached_time`` executes through a
    prepared handle whose plan is already cached, so it isolates the cost
    the cache removes from every repeated query.
    """

    query: str
    selectivity: float
    cold_time: float
    prepare_time: float
    cached_time: float
    cache_hits: int
    cache_lookups: int
    stages: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Cold over cached latency (>1 means the cache pays off)."""
        if self.cached_time <= 0:
            return float("inf")
        return self.cold_time / self.cached_time

    @property
    def hit_rate(self) -> float:
        """Plan-cache hit share during the cached executions."""
        if self.cache_lookups == 0:
            return 1.0
        return self.cache_hits / self.cache_lookups

    def to_dict(self) -> dict:
        """JSON-ready form of this cell (for ``BENCH_hotpath.json``)."""
        return {
            "query": self.query,
            "selectivity": self.selectivity,
            "cold_time_s": self.cold_time,
            "prepare_time_s": self.prepare_time,
            "cached_time_s": self.cached_time,
            "speedup": self.speedup,
            "cache_hits": self.cache_hits,
            "cache_lookups": self.cache_lookups,
            "hit_rate": self.hit_rate,
            "stages_s": dict(self.stages),
        }


@dataclass
class HotPathRun:
    """All hot-path measurements of one experiment configuration."""

    config: ExperimentConfig
    measurements: list[HotPathMeasurement] = field(default_factory=list)

    def cell(self, query: str, selectivity: float) -> HotPathMeasurement:
        """Look up a single measurement."""
        for measurement in self.measurements:
            if (
                measurement.query == query
                and abs(measurement.selectivity - selectivity) < 1e-9
            ):
                return measurement
        raise KeyError((query, selectivity))

    def queries(self) -> list[str]:
        """Distinct query names, in first-seen order."""
        seen: list[str] = []
        for measurement in self.measurements:
            if measurement.query not in seen:
                seen.append(measurement.query)
        return seen

    def selectivities(self) -> list[float]:
        """Distinct selectivity values, in first-seen order."""
        seen: list[float] = []
        for measurement in self.measurements:
            if measurement.selectivity not in seen:
                seen.append(measurement.selectivity)
        return seen

    def hit_rate(self) -> float:
        """Aggregate plan-cache hit rate over all cached executions."""
        lookups = sum(m.cache_lookups for m in self.measurements)
        if lookups == 0:
            return 1.0
        return sum(m.cache_hits for m in self.measurements) / lookups

    def to_dict(self) -> dict:
        """JSON-ready form of the whole run (for ``BENCH_hotpath.json``)."""
        return {
            "config": {
                "patients": self.config.patients,
                "samples_per_patient": self.config.samples_per_patient,
                "selectivities": list(self.config.selectivities),
                "repeat": self.config.repeat,
            },
            "hit_rate": self.hit_rate(),
            "measurements": [m.to_dict() for m in self.measurements],
        }


def measure_hotpath(
    scenario: PatientsScenario,
    query: BenchmarkQuery,
    selectivity: float,
    repeat: int = 1,
    executions: int = 5,
) -> HotPathMeasurement:
    """Measure cold vs cached enforcement latency for one query."""
    monitor = scenario.monitor

    def cold() -> None:
        monitor.clear_plan_cache()
        monitor.execute(query.sql, BENCH_PURPOSE)

    cold_time = time_query(cold, repeat)

    def cold_prepare() -> None:
        monitor.clear_plan_cache()
        monitor.prepare(query.sql, BENCH_PURPOSE)

    prepare_time = time_query(cold_prepare, repeat)

    prepared = monitor.prepare(query.sql, BENCH_PURPOSE)
    before = monitor.plan_cache_info()
    cached_time = time_query(prepared.execute, max(repeat, executions))
    after = monitor.plan_cache_info()
    hits = after["hits"] - before["hits"]
    lookups = hits + (after["misses"] - before["misses"])

    # One traced execution for the per-stage (parse/plan/execute) breakdown.
    # Run outside the timed loops so the instrumentation cannot skew the
    # cold/cached numbers; tracing is restored to its previous state after.
    previous_tracing = monitor.tracing_enabled
    monitor.set_tracing(True)
    try:
        traced = monitor.execute_with_report(query.sql, BENCH_PURPOSE)
        stages = traced.trace.stage_seconds() if traced.trace is not None else {}
    finally:
        monitor.set_tracing(previous_tracing)

    return HotPathMeasurement(
        query=query.name,
        selectivity=selectivity,
        cold_time=cold_time,
        prepare_time=prepare_time,
        cached_time=cached_time,
        cache_hits=hits,
        cache_lookups=lookups,
        stages=stages,
    )


def bitmap_build_bound(
    scenario: PatientsScenario, sql: str, purpose: str = BENCH_PURPOSE
) -> int:
    """Worst-case ``compliesWith`` cost of the bitmap pre-filtered plan.

    The optimizer hoists policy conjuncts into ``PolicyGuard`` nodes whose
    bitmaps are built once per distinct non-NULL policy value per
    ``(table, mask)`` pair.  Collecting every ``complieswith(mask,
    binding.policy)`` conjunct the rewriter injected — including inside
    IN/EXISTS/scalar subqueries and derived tables — therefore gives a
    static bound: an execution from a cold bitmap cache never invokes
    ``compliesWith`` more than Σ distinct policy values over the distinct
    ``(table, mask)`` pairs.  (Conjuncts the optimizer leaves in residual
    filters, e.g. under outer joins, fall back to per-row evaluation and may
    exceed this figure by design.)
    """
    import dataclasses as dc

    from ..sql import ast

    database = scenario.database
    function_name = (database.policy_function or "complieswith").lower()
    statement = scenario.monitor.rewrite(sql, purpose)
    pairs: set[tuple[str, str]] = set()

    def visit_value(value, bindings: dict[str, str]) -> None:
        if isinstance(value, ast.Select):
            visit_select(value)
            return
        if (
            isinstance(value, ast.FunctionCall)
            and value.name.lower() == function_name
            and len(value.args) == 2
            and isinstance(value.args[0], ast.BitStringLiteral)
            and isinstance(value.args[1], ast.ColumnRef)
            and value.args[1].table
        ):
            table = bindings.get(value.args[1].table.lower())
            if table is not None:
                pairs.add((table, value.args[0].bits))
        if dc.is_dataclass(value):
            for field_info in dc.fields(value):
                visit_value(getattr(value, field_info.name), bindings)
        elif isinstance(value, (tuple, list)):
            for item in value:
                visit_value(item, bindings)

    def add_bindings(source, bindings: dict[str, str]) -> None:
        if isinstance(source, ast.TableName):
            bindings[source.binding.lower()] = source.name.lower()
        elif isinstance(source, ast.Join):
            add_bindings(source.left, bindings)
            add_bindings(source.right, bindings)

    def visit_select(select: ast.Select) -> None:
        bindings: dict[str, str] = {}
        for source in select.sources:
            add_bindings(source, bindings)
        for field_info in dc.fields(select):
            visit_value(getattr(select, field_info.name), bindings)

    def visit_statement(node) -> None:
        if isinstance(node, ast.SetOperation):
            visit_statement(node.left)
            visit_statement(node.right)
        else:
            visit_select(node)

    visit_statement(statement)
    bound = 0
    for table_name, _mask in pairs:
        table = database.table(table_name)
        index = table.schema.column_index(database.policy_column)
        bound += len({row[index] for row in table.rows if row[index] is not None})
    return bound


@dataclass
class OptimizerMeasurement:
    """One (query, selectivity) cell of the optimizer on/off comparison."""

    query: str
    selectivity: float
    checks_off: int
    checks_on_cold: int
    checks_on_warm: int
    bitmap_bound: int
    rows_match: bool
    cached_time_off: float
    cached_time_on: float

    @property
    def within_bound(self) -> bool:
        """Cold optimized checks never exceed the distinct-value bound.

        Only meaningful when every policy conjunct was hoisted (bound > 0 or
        the query touches no policies at all); residual guards under outer
        joins fall back to per-row evaluation by design.
        """
        return self.checks_on_cold <= max(self.bitmap_bound, self.checks_off)

    def to_dict(self) -> dict:
        """JSON-ready form of this cell (for ``BENCH_optimizer.json``)."""
        return {
            "query": self.query,
            "selectivity": self.selectivity,
            "checks_off": self.checks_off,
            "checks_on_cold": self.checks_on_cold,
            "checks_on_warm": self.checks_on_warm,
            "bitmap_bound": self.bitmap_bound,
            "within_bound": self.within_bound,
            "rows_match": self.rows_match,
            "cached_time_off_s": self.cached_time_off,
            "cached_time_on_s": self.cached_time_on,
        }


@dataclass
class OptimizerRun:
    """All optimizer-comparison measurements of one configuration."""

    config: ExperimentConfig
    measurements: list[OptimizerMeasurement] = field(default_factory=list)

    def cell(self, query: str, selectivity: float) -> OptimizerMeasurement:
        """Look up a single measurement."""
        for measurement in self.measurements:
            if (
                measurement.query == query
                and abs(measurement.selectivity - selectivity) < 1e-9
            ):
                return measurement
        raise KeyError((query, selectivity))

    def queries(self) -> list[str]:
        """Distinct query names, in first-seen order."""
        seen: list[str] = []
        for measurement in self.measurements:
            if measurement.query not in seen:
                seen.append(measurement.query)
        return seen

    def selectivities(self) -> list[float]:
        """Distinct selectivity values, in first-seen order."""
        seen: list[float] = []
        for measurement in self.measurements:
            if measurement.selectivity not in seen:
                seen.append(measurement.selectivity)
        return seen

    def violations(self) -> list[OptimizerMeasurement]:
        """Cells whose cold optimized checks exceeded the bound."""
        return [m for m in self.measurements if not m.within_bound]

    def mismatches(self) -> list[OptimizerMeasurement]:
        """Cells where the two modes disagreed on the result rows."""
        return [m for m in self.measurements if not m.rows_match]

    def to_dict(self) -> dict:
        """JSON-ready form of the whole run (for ``BENCH_optimizer.json``)."""
        return {
            "config": {
                "patients": self.config.patients,
                "samples_per_patient": self.config.samples_per_patient,
                "selectivities": list(self.config.selectivities),
                "repeat": self.config.repeat,
            },
            "violations": [m.query for m in self.violations()],
            "mismatches": [m.query for m in self.mismatches()],
            "measurements": [m.to_dict() for m in self.measurements],
        }


def measure_optimizer(
    scenario: PatientsScenario,
    query: BenchmarkQuery,
    selectivity: float,
    repeat: int = 1,
    executions: int = 3,
) -> OptimizerMeasurement:
    """Compare one query's enforcement cost with the optimizer on vs off."""
    monitor = scenario.monitor
    database = scenario.database
    previous_mode = monitor.optimizer_mode

    def run_mode(mode: str):
        monitor.set_optimizer(mode)
        monitor.clear_plan_cache()
        monitor.clear_policy_bitmaps()
        before = database.function_calls(COMPLIES_WITH)
        report = monitor.execute_with_report(query.sql, BENCH_PURPOSE)
        cold = database.function_calls(COMPLIES_WITH) - before
        before = database.function_calls(COMPLIES_WITH)
        monitor.execute(query.sql, BENCH_PURPOSE)
        warm = database.function_calls(COMPLIES_WITH) - before
        prepared = monitor.prepare(query.sql, BENCH_PURPOSE)
        cached_time = time_query(prepared.execute, max(repeat, executions))
        return report, cold, warm, cached_time

    try:
        off_report, off_cold, _off_warm, off_time = run_mode("off")
        on_report, on_cold, on_warm, on_time = run_mode("on")
    finally:
        monitor.set_optimizer(previous_mode)

    bound = bitmap_build_bound(scenario, query.sql)
    return OptimizerMeasurement(
        query=query.name,
        selectivity=selectivity,
        checks_off=off_cold,
        checks_on_cold=on_cold,
        checks_on_warm=on_warm,
        bitmap_bound=bound,
        rows_match=list(off_report.result) == list(on_report.result),
        cached_time_off=off_time,
        cached_time_on=on_time,
    )


#: Batch sizes the columnar experiment sweeps (the last is the default
#: page size the batch executor resolves without an override).
COLUMNAR_BATCH_SIZES: tuple[int, ...] = (64, 256, 1024)


@dataclass
class ColumnarMeasurement:
    """One query of the row vs batch executor comparison (DESIGN.md §12)."""

    query: str
    rows_returned: int
    row_time: float
    batch_times: dict[int, float]
    rows_match: bool

    def speedup(self, batch_size: int) -> float:
        """Row-mode latency over batch-mode latency at ``batch_size``."""
        batch_time = self.batch_times[batch_size]
        return self.row_time / batch_time if batch_time else float("inf")

    def to_dict(self) -> dict:
        """JSON-ready form of this query (for ``BENCH_columnar.json``)."""
        return {
            "query": self.query,
            "rows": self.rows_returned,
            "row_time_s": self.row_time,
            "batch_time_s": {
                str(size): t for size, t in self.batch_times.items()
            },
            "speedup": {
                str(size): self.speedup(size) for size in self.batch_times
            },
            "rows_match": self.rows_match,
        }


@dataclass
class ColumnarRun:
    """All row-vs-batch measurements of one configuration."""

    config: ExperimentConfig
    selectivity: float
    batch_sizes: tuple[int, ...] = COLUMNAR_BATCH_SIZES
    measurements: list[ColumnarMeasurement] = field(default_factory=list)

    @property
    def default_batch_size(self) -> int:
        """The sweep's reference page size (the largest swept)."""
        return max(self.batch_sizes)

    def aggregate_speedup(self, batch_size: int | None = None) -> float:
        """Total row-mode time over total batch-mode time."""
        size = batch_size if batch_size is not None else self.default_batch_size
        row = sum(m.row_time for m in self.measurements)
        batch = sum(m.batch_times[size] for m in self.measurements)
        return row / batch if batch else float("inf")

    def mismatches(self) -> list[ColumnarMeasurement]:
        """Queries where the two executors disagreed on the result rows."""
        return [m for m in self.measurements if not m.rows_match]

    def to_dict(self) -> dict:
        """JSON-ready form of the whole run (for ``BENCH_columnar.json``)."""
        return {
            "config": {
                "patients": self.config.patients,
                "samples_per_patient": self.config.samples_per_patient,
                "repeat": self.config.repeat,
            },
            "selectivity": self.selectivity,
            "batch_sizes": list(self.batch_sizes),
            "default_batch_size": self.default_batch_size,
            "aggregate_speedup": {
                str(size): self.aggregate_speedup(size)
                for size in self.batch_sizes
            },
            "mismatches": [m.query for m in self.mismatches()],
            "measurements": [m.to_dict() for m in self.measurements],
        }


def measure_columnar(
    scenario: PatientsScenario,
    query: BenchmarkQuery,
    batch_sizes: tuple[int, ...] = COLUMNAR_BATCH_SIZES,
    repeat: int = 1,
    executions: int = 3,
) -> ColumnarMeasurement:
    """Time one query under the row executor and each swept batch size.

    Every mode runs from a cold plan cache and cold policy bitmaps, then
    times the *cached* prepared plan (best of ``executions``) — the hot
    path the executor comparison is about.  Result rows are compared
    against the row-mode reference for every batch size.
    """
    monitor = scenario.monitor
    previous_mode = monitor.executor_mode
    previous_size = monitor.batch_size

    def run_mode(mode: str, batch_size: int | None = None):
        monitor.set_executor(mode, batch_size=batch_size)
        monitor.clear_plan_cache()
        monitor.clear_policy_bitmaps()
        report = monitor.execute_with_report(query.sql, BENCH_PURPOSE)
        prepared = monitor.prepare(query.sql, BENCH_PURPOSE)
        return report, time_query(prepared.execute, max(repeat, executions))

    try:
        row_report, row_time = run_mode("row")
        reference = list(row_report.result)
        batch_times: dict[int, float] = {}
        rows_match = True
        for size in batch_sizes:
            batch_report, batch_time = run_mode("batch", size)
            batch_times[size] = batch_time
            rows_match = rows_match and list(batch_report.result) == reference
    finally:
        monitor.set_executor(previous_mode, batch_size=previous_size)

    return ColumnarMeasurement(
        query=query.name,
        rows_returned=len(reference),
        row_time=row_time,
        batch_times=batch_times,
        rows_match=rows_match,
    )


def count_checks(scenario: PatientsScenario, sql: str, purpose: str = BENCH_PURPOSE) -> int:
    """The number of ``complieswith`` invocations one execution performs.

    Counted under the per-row evaluation model (optimizer off), matching the
    complexity analysis of Section 5 and Figure 6.
    """
    database = scenario.database
    monitor = scenario.monitor
    previous_mode = monitor.optimizer_mode
    monitor.set_optimizer("off")
    try:
        before = database.function_calls(COMPLIES_WITH)
        monitor.execute(sql, purpose)
        return database.function_calls(COMPLIES_WITH) - before
    finally:
        monitor.set_optimizer(previous_mode)


# -- indexes experiment --------------------------------------------------------


@dataclass
class IndexesMeasurement:
    """One dataset size of the access-path comparison (DESIGN.md §13).

    ``full_scan_time``/``index_time`` time the *unenforced* selective probe
    (an enforced scan keeps its policy guard between the pushed filter and
    the base table, so the index conversion targets plain scans).  The
    ``guard_*`` pair times the same probe under enforcement, where the
    policy-partitioned index prunes non-compliant partitions at the guard.
    """

    rows: int
    rows_returned: int
    full_scan_time: float
    index_time: float
    guard_full_time: float
    guard_partitioned_time: float
    partition_count: int
    partition_skips: int
    rows_match: bool

    @property
    def index_speedup(self) -> float:
        """Sequential-scan latency over index-scan latency."""
        return self.full_scan_time / self.index_time if self.index_time else float("inf")

    @property
    def partitioned_speedup(self) -> float:
        """Guarded full-scan latency over partition-pruned latency."""
        if not self.guard_partitioned_time:
            return float("inf")
        return self.guard_full_time / self.guard_partitioned_time

    def to_dict(self) -> dict:
        """JSON-ready form of this size (for ``BENCH_indexes.json``)."""
        return {
            "rows": self.rows,
            "rows_returned": self.rows_returned,
            "full_scan_time_s": self.full_scan_time,
            "index_time_s": self.index_time,
            "index_speedup": self.index_speedup,
            "guard_full_time_s": self.guard_full_time,
            "guard_partitioned_time_s": self.guard_partitioned_time,
            "partitioned_speedup": self.partitioned_speedup,
            "partition_count": self.partition_count,
            "partition_skips": self.partition_skips,
            "rows_match": self.rows_match,
        }


@dataclass
class IndexesRun:
    """All sizes of the access-path experiment."""

    sizes: tuple[int, ...]
    selectivity: float
    samples_per_patient: int
    measurements: list[IndexesMeasurement] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready form of the whole run (for ``BENCH_indexes.json``)."""
        return {
            "experiment": "indexes",
            "selectivity": self.selectivity,
            "samples_per_patient": self.samples_per_patient,
            "sizes": [m.to_dict() for m in self.measurements],
        }


def measure_indexes(
    scenario: PatientsScenario,
    size: int,
    executions: int = 3,
) -> IndexesMeasurement:
    """Time the selective probe under each access path at one table size.

    The probe is a single-watch equality on ``sensed_data`` — the most
    selective predicate the workload offers (one patient's samples out of
    ``size`` rows).  Every arm runs once cold (building indexes, statistics
    and bitmaps), then times the cached prepared plan, best of
    ``executions``.
    """
    database = scenario.database
    monitor = scenario.monitor
    watch = database.query(
        "select min(watch_id) from sensed_data", indexes="off"
    ).scalar()
    sql = f"select * from sensed_data where watch_id = '{watch}'"

    # The comparison is about access paths, so the pass pipeline itself is
    # pinned on regardless of any REPRO_OPTIMIZER override.
    def time_unenforced(mode: str) -> tuple[list, float]:
        prepared = database.prepare(sql, optimizer="on", indexes=mode)
        rows = list(prepared.execute())
        return rows, time_query(prepared.execute, executions)

    def time_enforced(mode: str) -> float:
        monitor.set_indexes(mode)
        monitor.clear_plan_cache()
        monitor.clear_policy_bitmaps()
        monitor.execute(sql, BENCH_PURPOSE)
        prepared = monitor.prepare(sql, BENCH_PURPOSE)
        return time_query(prepared.execute, executions)

    previous = monitor.indexes_mode
    previous_optimizer = monitor.optimizer_mode
    monitor.set_optimizer("on")
    try:
        full_rows, full_time = time_unenforced("off")

        database.execute(
            "create index bench_watch on sensed_data (watch_id) using hash"
        )
        database.execute("analyze sensed_data")
        index_rows, index_time = time_unenforced("on")

        guard_full_time = time_enforced("off")
        database.execute(
            "create index bench_part on sensed_data (watch_id) "
            f"partition by {database.policy_column}"
        )
        skips_before = database.indexes.stats()["partition_skips"]
        guard_partitioned_time = time_enforced("on")
        skips = database.indexes.stats()["partition_skips"] - skips_before
        partition_count = database.indexes.partition_count("bench_part")
    finally:
        monitor.set_indexes(previous)
        monitor.set_optimizer(previous_optimizer)
        for name in ("bench_watch", "bench_part"):
            if database.indexes.find(name) is not None:
                database.execute(f"drop index {name}")

    return IndexesMeasurement(
        rows=size,
        rows_returned=len(full_rows),
        full_scan_time=full_time,
        index_time=index_time,
        guard_full_time=guard_full_time,
        guard_partitioned_time=guard_partitioned_time,
        partition_count=partition_count,
        partition_skips=skips,
        rows_match=sorted(index_rows) == sorted(full_rows),
    )
