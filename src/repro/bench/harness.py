"""Experiment harness shared by the CLI and the pytest benchmarks.

Builds the evaluation setup of Section 6 — the *patients* scenario with
scattered policies — and measures, per query, execution time of the original
and rewritten variants plus the number of ``compliesWith`` invocations (the
complexity metric of Figure 6).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..core.admin import COMPLIES_WITH
from ..workload import (
    AD_HOC_QUERIES,
    BenchmarkQuery,
    PatientsScenario,
    apply_experiment_policies,
    build_patients_scenario,
    random_queries,
)

#: The selectivity sweep of Experiment 1 (Section 6.3).
PAPER_SELECTIVITIES = (0.0, 0.2, 0.4, 0.6)

#: The purpose the benchmark queries run under (scattered policies are
#: purpose-agnostic, so any registered purpose gives identical behaviour).
BENCH_PURPOSE = "p6"


def scale_factor() -> float:
    """Global dataset scale multiplier, from the ``REPRO_SCALE`` env var.

    ``REPRO_SCALE=1`` reproduces the paper's Experiment 1 sizes (1,000
    patients × 1,000 samples); the default 0.01 keeps the pure-Python engine
    within seconds per query.
    """
    return float(os.environ.get("REPRO_SCALE", "0.01"))


@dataclass(frozen=True)
class ExperimentConfig:
    """Sizing and sweep parameters for the experiments."""

    patients: int = 100
    samples_per_patient: int = 100
    selectivities: tuple[float, ...] = PAPER_SELECTIVITIES
    include_random: bool = True
    random_seed: int = 2015
    policy_seed: int = 411595
    data_seed: int = 20150311
    repeat: int = 1

    @classmethod
    def scaled(cls, **overrides) -> "ExperimentConfig":
        """Paper sizes multiplied by :func:`scale_factor`."""
        factor = scale_factor()
        defaults = {
            "patients": max(10, int(1000 * factor)),
            "samples_per_patient": max(10, int(1000 * factor)),
        }
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class QueryMeasurement:
    """One (query, selectivity) cell of Figures 6 and 7."""

    query: str
    selectivity: float
    original_time: float
    rewritten_time: float
    compliance_checks: int
    original_rows: int
    rewritten_rows: int

    @property
    def overhead(self) -> float:
        """Rewritten minus original execution time (may be negative)."""
        return self.rewritten_time - self.original_time


@dataclass
class ExperimentRun:
    """All measurements of one experiment configuration."""

    config: ExperimentConfig
    measurements: list[QueryMeasurement] = field(default_factory=list)

    def cell(self, query: str, selectivity: float) -> QueryMeasurement:
        """Look up a single measurement."""
        for measurement in self.measurements:
            if (
                measurement.query == query
                and abs(measurement.selectivity - selectivity) < 1e-9
            ):
                return measurement
        raise KeyError((query, selectivity))

    def queries(self) -> list[str]:
        """Distinct query names, in first-seen order."""
        seen: list[str] = []
        for measurement in self.measurements:
            if measurement.query not in seen:
                seen.append(measurement.query)
        return seen

    def selectivities(self) -> list[float]:
        """Distinct selectivity values, in first-seen order."""
        seen: list[float] = []
        for measurement in self.measurements:
            if measurement.selectivity not in seen:
                seen.append(measurement.selectivity)
        return seen


def experiment_queries(config: ExperimentConfig) -> tuple[BenchmarkQuery, ...]:
    """q1-q8 plus (optionally) r1-r20 for the configured sizes."""
    queries = list(AD_HOC_QUERIES)
    if config.include_random:
        queries.extend(
            random_queries(
                config.random_seed, config.patients, config.samples_per_patient
            )
        )
    return tuple(queries)


def build_scenario(config: ExperimentConfig) -> PatientsScenario:
    """The patients scenario at the configured size (no policies yet)."""
    return build_patients_scenario(
        patients=config.patients,
        samples_per_patient=config.samples_per_patient,
        seed=config.data_seed,
    )


def set_selectivity(
    scenario: PatientsScenario, selectivity: float, policy_seed: int
) -> None:
    """(Re)generate scattered policies at a target selectivity (§6.1)."""
    apply_experiment_policies(scenario, selectivity, seed=policy_seed)


def time_query(run, repeat: int = 1) -> float:
    """Best-of-``repeat`` wall time of a zero-argument callable."""
    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def measure_query(
    scenario: PatientsScenario,
    query: BenchmarkQuery,
    selectivity: float,
    repeat: int = 1,
) -> QueryMeasurement:
    """Measure one query under the currently installed policies."""
    monitor = scenario.monitor
    database = scenario.database

    original_rows = len(monitor.execute_unprotected(query.sql))
    original_time = time_query(
        lambda: monitor.execute_unprotected(query.sql), repeat
    )

    report = monitor.execute_with_report(query.sql, BENCH_PURPOSE)
    rewritten_rows = len(report.result)
    checks = report.compliance_checks
    # Time the rewritten statement itself (rewriting cost excluded, like the
    # paper, which compares query execution times).
    rewritten_select = monitor.rewrite(query.sql, BENCH_PURPOSE)
    rewritten_time = time_query(lambda: database.query(rewritten_select), repeat)

    return QueryMeasurement(
        query=query.name,
        selectivity=selectivity,
        original_time=original_time,
        rewritten_time=rewritten_time,
        compliance_checks=checks,
        original_rows=original_rows,
        rewritten_rows=rewritten_rows,
    )


@dataclass
class HotPathMeasurement:
    """One (query, selectivity) cell of the prepared-pipeline experiment.

    ``cold_time`` runs the whole enforcement pipeline on a cold plan cache
    (parse → sign → rewrite → plan → execute); ``prepare_time`` is the same
    pipeline without the execution; ``cached_time`` executes through a
    prepared handle whose plan is already cached, so it isolates the cost
    the cache removes from every repeated query.
    """

    query: str
    selectivity: float
    cold_time: float
    prepare_time: float
    cached_time: float
    cache_hits: int
    cache_lookups: int
    stages: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Cold over cached latency (>1 means the cache pays off)."""
        if self.cached_time <= 0:
            return float("inf")
        return self.cold_time / self.cached_time

    @property
    def hit_rate(self) -> float:
        """Plan-cache hit share during the cached executions."""
        if self.cache_lookups == 0:
            return 1.0
        return self.cache_hits / self.cache_lookups

    def to_dict(self) -> dict:
        """JSON-ready form of this cell (for ``BENCH_hotpath.json``)."""
        return {
            "query": self.query,
            "selectivity": self.selectivity,
            "cold_time_s": self.cold_time,
            "prepare_time_s": self.prepare_time,
            "cached_time_s": self.cached_time,
            "speedup": self.speedup,
            "cache_hits": self.cache_hits,
            "cache_lookups": self.cache_lookups,
            "hit_rate": self.hit_rate,
            "stages_s": dict(self.stages),
        }


@dataclass
class HotPathRun:
    """All hot-path measurements of one experiment configuration."""

    config: ExperimentConfig
    measurements: list[HotPathMeasurement] = field(default_factory=list)

    def cell(self, query: str, selectivity: float) -> HotPathMeasurement:
        """Look up a single measurement."""
        for measurement in self.measurements:
            if (
                measurement.query == query
                and abs(measurement.selectivity - selectivity) < 1e-9
            ):
                return measurement
        raise KeyError((query, selectivity))

    def queries(self) -> list[str]:
        """Distinct query names, in first-seen order."""
        seen: list[str] = []
        for measurement in self.measurements:
            if measurement.query not in seen:
                seen.append(measurement.query)
        return seen

    def selectivities(self) -> list[float]:
        """Distinct selectivity values, in first-seen order."""
        seen: list[float] = []
        for measurement in self.measurements:
            if measurement.selectivity not in seen:
                seen.append(measurement.selectivity)
        return seen

    def hit_rate(self) -> float:
        """Aggregate plan-cache hit rate over all cached executions."""
        lookups = sum(m.cache_lookups for m in self.measurements)
        if lookups == 0:
            return 1.0
        return sum(m.cache_hits for m in self.measurements) / lookups

    def to_dict(self) -> dict:
        """JSON-ready form of the whole run (for ``BENCH_hotpath.json``)."""
        return {
            "config": {
                "patients": self.config.patients,
                "samples_per_patient": self.config.samples_per_patient,
                "selectivities": list(self.config.selectivities),
                "repeat": self.config.repeat,
            },
            "hit_rate": self.hit_rate(),
            "measurements": [m.to_dict() for m in self.measurements],
        }


def measure_hotpath(
    scenario: PatientsScenario,
    query: BenchmarkQuery,
    selectivity: float,
    repeat: int = 1,
    executions: int = 5,
) -> HotPathMeasurement:
    """Measure cold vs cached enforcement latency for one query."""
    monitor = scenario.monitor

    def cold() -> None:
        monitor.clear_plan_cache()
        monitor.execute(query.sql, BENCH_PURPOSE)

    cold_time = time_query(cold, repeat)

    def cold_prepare() -> None:
        monitor.clear_plan_cache()
        monitor.prepare(query.sql, BENCH_PURPOSE)

    prepare_time = time_query(cold_prepare, repeat)

    prepared = monitor.prepare(query.sql, BENCH_PURPOSE)
    before = monitor.plan_cache_info()
    cached_time = time_query(prepared.execute, max(repeat, executions))
    after = monitor.plan_cache_info()
    hits = after["hits"] - before["hits"]
    lookups = hits + (after["misses"] - before["misses"])

    # One traced execution for the per-stage (parse/plan/execute) breakdown.
    # Run outside the timed loops so the instrumentation cannot skew the
    # cold/cached numbers; tracing is restored to its previous state after.
    previous_tracing = monitor.tracing_enabled
    monitor.set_tracing(True)
    try:
        traced = monitor.execute_with_report(query.sql, BENCH_PURPOSE)
        stages = traced.trace.stage_seconds() if traced.trace is not None else {}
    finally:
        monitor.set_tracing(previous_tracing)

    return HotPathMeasurement(
        query=query.name,
        selectivity=selectivity,
        cold_time=cold_time,
        prepare_time=prepare_time,
        cached_time=cached_time,
        cache_hits=hits,
        cache_lookups=lookups,
        stages=stages,
    )


def count_checks(scenario: PatientsScenario, sql: str, purpose: str = BENCH_PURPOSE) -> int:
    """The number of ``complieswith`` invocations one execution performs."""
    database = scenario.database
    before = database.function_calls(COMPLIES_WITH)
    scenario.monitor.execute(sql, purpose)
    return database.function_calls(COMPLIES_WITH) - before
