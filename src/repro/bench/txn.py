"""Readers-under-policy-churn experiment: RW-lock fence vs MVCC snapshots.

Not in the paper — the paper's evaluation is single-threaded — but the
cost model behind the PR-9 concurrency work: what do policy writers do to
reader latency?  Before MVCC, the server fenced every read behind a
shared lock, so each policy recompilation (an exclusive writer) stalled
the whole read side for its full duration.  With MVCC on, readers pin a
snapshot and never wait for writers.

Each sweep point crosses a reader-session count with an engine mode:

``rwlock``
    The pre-MVCC engine (``REPRO_TXN=off``): reads take the server's
    shared lock, policy churn and DML take the exclusive side.  Writes
    cannot abort — they serialize — so the abort rate is 0 by
    construction and the cost shows up as read-latency tail.

``mvcc``
    Snapshot isolation (``REPRO_TXN=on``): reads pin ephemeral
    snapshots, session writes run as ``BEGIN``/``UPDATE``/``COMMIT``
    transactions and lose first-committer-wins races against the policy
    churn (mask stores write the same table), so the cost shows up as a
    non-zero abort rate instead of reader stalls.  The MVCC leg is run
    **twice** — under ``REPRO_CONFLICT=table`` (PR 9's coarse detection:
    any concurrent commit to ``sensed_data`` aborts the session write,
    ~100% abort rate under continuous churn) and ``REPRO_CONFLICT=row``
    (PR 10's primary-key write sets: a session write aborts only when
    the churn actually rewrote *its* rows' masks) — so the artifact
    records the abort-rate delta the granularity change buys.

A dedicated churn thread recompiles a ``sensed_data`` policy in a tight
loop for the whole measurement window (under ``server.exclusive()``,
ordering it like any admin mutation); every reader session interleaves
cached SELECTs with an occasional UPDATE on its own rotating
``watch_id`` slice, so true row overlap with the churn (and with other
sessions) is partial by construction.  The artifact,
``BENCH_txn.json``, reports read p50/p95, read throughput, the policy
writes the churn thread landed, the write/abort counts per
(mode, granularity) point, and an explicit per-reader-count
``abort_rate_delta`` table.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass, field, replace

from ..engine import CONFLICT_ENV, TXN_ENV
from ..errors import RemoteError
from ..server import Client, QueryServer
from ..shard import WorldRecipe
from ..shard.recipe import build_world
from ..workload.policies import scattered_policy
from .harness import BENCH_PURPOSE, ExperimentConfig

#: Reader statement mix — both should hit the plan cache after warmup, so
#: the measured latency is dominated by fencing, not planning.
READ_QUERIES = (
    "select avg(beats) from sensed_data",
    "select watch_id, beats from sensed_data where beats >= 60",
)

#: Every ``WRITE_EVERY``-th iteration the session also attempts an UPDATE.
WRITE_EVERY = 8

#: The sweep legs: engine mode × write-write conflict granularity.
#: ``rwlock`` has no MVCC validation, so granularity does not apply.
LEGS = (("rwlock", "serial"), ("mvcc", "table"), ("mvcc", "row"))

MODES = ("rwlock", "mvcc")

_MODE_ENV = {"rwlock": "off", "mvcc": "on"}


@dataclass
class TxnSample:
    """One sweep point: ``readers`` sessions against one engine mode."""

    mode: str
    readers: int
    reads: int
    elapsed: float
    #: Write-write conflict granularity of this leg: ``"serial"`` for the
    #: rwlock engine (writes cannot race), else ``"table"`` / ``"row"``.
    granularity: str = "serial"
    latencies: list[float] = field(repr=False, default_factory=list)
    writes: int = 0
    aborts: int = 0
    denied_writes: int = 0
    churn_writes: int = 0

    @property
    def read_throughput(self) -> float:
        """Completed reads per second across all sessions."""
        if self.elapsed <= 0:
            return float("inf")
        return self.reads / self.elapsed

    def percentile(self, fraction: float) -> float:
        """Read-latency percentile (seconds)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(
            len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1)
        )
        return ordered[index]

    @property
    def abort_rate(self) -> float:
        """Share of attempted session writes that lost a commit race."""
        if self.writes == 0:
            return 0.0
        return self.aborts / self.writes

    def to_dict(self) -> dict:
        """JSON-ready summary (latency list reduced to percentiles)."""
        return {
            "mode": self.mode,
            "granularity": self.granularity,
            "readers": self.readers,
            "reads": self.reads,
            "elapsed_s": self.elapsed,
            "read_qps": self.read_throughput,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p95_ms": self.percentile(0.95) * 1e3,
            "writes": self.writes,
            "aborts": self.aborts,
            "abort_rate": self.abort_rate,
            "denied_writes": self.denied_writes,
            "churn_writes": self.churn_writes,
        }


@dataclass
class TxnRun:
    """All sweep points of one readers-under-churn experiment."""

    config: ExperimentConfig
    reader_counts: tuple
    reads_per_session: int
    samples: list[TxnSample] = field(default_factory=list)

    def point(
        self, mode: str, readers: int, granularity: str | None = None
    ) -> TxnSample:
        """The sample for one (mode, granularity, reader count) cell.

        ``granularity=None`` matches the mode's only leg (``rwlock``) or
        the first matching one.
        """
        for sample in self.samples:
            if sample.mode != mode or sample.readers != readers:
                continue
            if granularity is None or sample.granularity == granularity:
                return sample
        raise KeyError((mode, granularity, readers))

    def abort_rate_deltas(self) -> list[dict]:
        """Per reader count: the abort rate table granularity pays over row.

        The headline of the PR-10 conflict refactor — coarse detection
        aborts (almost) every session write under continuous policy churn,
        row-level write sets abort only on true overlap.
        """
        deltas = []
        for readers in self.reader_counts:
            try:
                table = self.point("mvcc", readers, "table")
                row = self.point("mvcc", readers, "row")
            except KeyError:
                continue
            deltas.append(
                {
                    "readers": readers,
                    "table_abort_rate": table.abort_rate,
                    "row_abort_rate": row.abort_rate,
                    "delta": table.abort_rate - row.abort_rate,
                }
            )
        return deltas

    def to_dict(self) -> dict:
        """The ``BENCH_txn.json`` payload."""
        return {
            "experiment": "txn",
            "patients": self.config.patients,
            "samples_per_patient": self.config.samples_per_patient,
            "reader_counts": list(self.reader_counts),
            "reads_per_session": self.reads_per_session,
            "write_every": WRITE_EVERY,
            "sweep": [sample.to_dict() for sample in self.samples],
            "abort_rate_delta": self.abort_rate_deltas(),
        }


def _reader_worker(
    address: tuple[str, int],
    user: str,
    mode: str,
    iterations: int,
    sample: TxnSample,
    lock: threading.Lock,
    start_gate: threading.Event,
    watch_offset: int = 0,
    patients: int = 5,
) -> None:
    latencies: list[float] = []
    reads = writes = aborts = denied = 0
    with Client(*address) as client:
        client.hello(user, BENCH_PURPOSE)
        start_gate.wait()
        for iteration in range(iterations):
            sql = READ_QUERIES[iteration % len(READ_QUERIES)]
            begin = time.perf_counter()
            client.query(sql)
            latencies.append(time.perf_counter() - begin)
            reads += 1
            if iteration % WRITE_EVERY:
                continue
            # Each session rotates through its own watch_id slice: the
            # rows one UPDATE writes are a single patient's samples, so
            # overlap with the churn thread's mask rewrites (and with
            # other sessions) is partial — the quantity row-granularity
            # conflict detection is supposed to be proportional to.
            watch = (watch_offset + iteration) % patients
            update = (
                "update sensed_data set beats = 71 "
                f"where watch_id = 'watch{watch}'"
            )
            writes += 1
            try:
                if mode == "mvcc":
                    client.begin()
                    try:
                        client.execute(update)
                    except RemoteError:
                        # Leave the session clean before classifying: a
                        # denied UPDATE must not poison the next BEGIN.
                        client.rollback()
                        raise
                    client.commit()
                else:
                    client.execute(update)
            except RemoteError as exc:
                if exc.code == "txn_conflict":
                    # The server already rolled the loser back.
                    aborts += 1
                elif exc.code in ("unauthorized_purpose", "policy_denied"):
                    denied += 1
                else:
                    raise
        client.bye()
    with lock:
        sample.latencies.extend(latencies)
        sample.reads += reads
        sample.writes += writes
        sample.aborts += aborts
        sample.denied_writes += denied


def _drive_point(
    server: QueryServer,
    admin,
    mode: str,
    granularity: str,
    readers: int,
    reads_per_session: int,
    users: list[str],
    churn_pause: float,
    patients: int,
) -> TxnSample:
    """One measured point: reader threads racing one policy-churn thread."""
    sample = TxnSample(
        mode=mode,
        granularity=granularity,
        readers=readers,
        reads=0,
        elapsed=0.0,
    )
    lock = threading.Lock()
    start_gate = threading.Event()
    stop_churn = threading.Event()

    def churn() -> None:
        # Each step recompiles the policy of ONE patient's sample slice
        # (the paper's per-tuple ``tp`` selector), so the churn's
        # primary-key write set is 1/patients of the table — the row
        # overlap a concurrent session UPDATE aborts against is partial
        # by construction, while table-granularity detection still sees
        # "sensed_data was written" and aborts regardless.
        step = 0
        start_gate.wait()
        while not stop_churn.is_set():
            policy = replace(
                scattered_policy(
                    "sensed_data",
                    compliant=True,
                    rule_count=1 + step % 3,
                    pass_all_position=step % 3,
                ),
                tuple_selector=("watch_id", f"watch{step % patients}"),
            )
            with server.exclusive():
                admin.apply_policy(policy)
            sample.churn_writes += 1
            step += 1
            if churn_pause:
                time.sleep(churn_pause)

    workers = [
        threading.Thread(
            target=_reader_worker,
            args=(
                server.address,
                users[index],
                mode,
                reads_per_session,
                sample,
                lock,
                start_gate,
                # Co-prime-ish stride spreads sessions across the watch
                # space so they do not update the same patient in lockstep.
                index * 3 + 1,
                patients,
            ),
        )
        for index in range(readers)
    ]
    churner = threading.Thread(target=churn)
    for worker in workers:
        worker.start()
    churner.start()
    begin = time.perf_counter()
    start_gate.set()
    for worker in workers:
        worker.join()
    sample.elapsed = time.perf_counter() - begin
    stop_churn.set()
    churner.join()
    return sample


def run_txn(
    config: ExperimentConfig | None = None,
    reader_counts: tuple[int, ...] = (1, 4, 8),
    reads_per_session: int = 40,
    selectivity: float = 0.4,
    churn_pause: float = 0.001,
    max_pending: int = 64,
) -> TxnRun:
    """Sweep reader counts across the engine-mode × granularity legs.

    Each leg rebuilds the same deterministic world under its
    ``REPRO_TXN`` / ``REPRO_CONFLICT`` settings (the transaction manager
    and the server fence are both fixed at construction), then measures
    every reader count against one continuously churning policy writer.
    The sweep is ordered leg-major so each leg's plan caches warm once,
    during its first point — identical treatment for every row of every
    comparison pair.
    """
    config = config or ExperimentConfig.scaled()
    users = [f"bench{index}" for index in range(max(reader_counts))]
    recipe = WorldRecipe.for_patients(
        patients=config.patients,
        samples=config.samples_per_patient,
        selectivity=selectivity,
        policy_seed=config.policy_seed,
        data_seed=config.data_seed,
        grants=tuple((user, BENCH_PURPOSE) for user in users),
    )
    run = TxnRun(
        config=config,
        reader_counts=tuple(reader_counts),
        reads_per_session=reads_per_session,
    )
    saved_txn = os.environ.get(TXN_ENV)
    saved_conflict = os.environ.get(CONFLICT_ENV)
    try:
        for mode, granularity in LEGS:
            os.environ[TXN_ENV] = _MODE_ENV[mode]
            if mode == "mvcc":
                os.environ[CONFLICT_ENV] = granularity
            else:
                os.environ.pop(CONFLICT_ENV, None)
            world = build_world(recipe)
            for readers in reader_counts:
                with QueryServer(
                    world.monitor, workers=readers, max_pending=max_pending
                ) as server:
                    run.samples.append(
                        _drive_point(
                            server,
                            world.admin,
                            mode,
                            granularity,
                            readers,
                            reads_per_session,
                            users,
                            churn_pause,
                            config.patients,
                        )
                    )
    finally:
        for key, value in ((TXN_ENV, saved_txn), (CONFLICT_ENV, saved_conflict)):
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return run
