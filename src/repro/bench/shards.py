"""Scale-out experiment: threaded baseline vs async sharded throughput.

Not in the paper — the paper's evaluation (Section 6.3) is strictly
sequential — but the question the :mod:`repro.server` and
:mod:`repro.shard` subsystems exist to answer: what does the enforcement
pipeline sustain when many authenticated sessions hit it at once, and does
hash-sharding the executors buy anything over a thread pool on one world?

Each sweep point crosses a client count with a server flavor: the
thread-per-connection :class:`~repro.server.QueryServer` over one full
world (the baseline every shard count is judged against), and the asyncio
:class:`~repro.server.async_server.AsyncQueryServer` fronting a
:class:`~repro.shard.ShardCoordinator` at each requested shard count.
All flavors rebuild the *same* deterministic world from one
:class:`~repro.shard.WorldRecipe`, open one session per client and drive
the fixed per-session statement mix (cached SELECTs plus a parameterized
prepared execution), reporting throughput, p50/p95 latency, the cache-hit
share and any ``server_busy`` backpressure hits.  One run therefore folds
the old ``concurrency`` experiment (the ``threaded`` rows) and the new
scale-out question (the ``async`` rows) into a single artifact,
``BENCH_shards.json``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

from ..errors import RemoteError
from ..server import AsyncQueryServer, Client, QueryServer
from ..shard import ShardCoordinator, WorldRecipe
from ..shard.recipe import build_world
from .harness import BENCH_PURPOSE, ExperimentConfig

#: The per-session statement mix: two plain SELECTs that should hit the plan
#: cache after warmup, plus one prepared statement executed under a
#: per-iteration parameter binding.
MIX_QUERIES = (
    "select avg(beats) from sensed_data",
    "select user_id, watch_id from users",
)
MIX_PREPARED = "select beats from sensed_data where watch_id = ?"

#: Statements per mix iteration (used by tests to assert conservation).
MIX_SIZE = len(MIX_QUERIES) + 1


@dataclass
class ShardsSample:
    """One sweep point: ``clients`` parallel sessions against one flavor.

    ``server`` is ``"threaded"`` (the thread-per-connection baseline, where
    ``shards`` is 0) or ``"async"`` (the asyncio front end over ``shards``
    hash-sharded executors).
    """

    server: str
    shards: int
    clients: int
    queries: int
    elapsed: float
    latencies: list[float] = field(repr=False, default_factory=list)
    cache_hits: int = 0
    busy_responses: int = 0

    @property
    def throughput(self) -> float:
        """Completed statements per second across all sessions."""
        if self.elapsed <= 0:
            return float("inf")
        return self.queries / self.elapsed

    def percentile(self, fraction: float) -> float:
        """Latency percentile (seconds) over all completed statements."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(
            len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1)
        )
        return ordered[index]

    @property
    def hit_rate(self) -> float:
        """Share of completed statements answered from a plan cache."""
        if self.queries == 0:
            return 1.0
        return self.cache_hits / self.queries

    def to_dict(self) -> dict:
        """JSON-ready summary (latency list reduced to percentiles)."""
        return {
            "server": self.server,
            "shards": self.shards,
            "clients": self.clients,
            "queries": self.queries,
            "elapsed_s": self.elapsed,
            "throughput_qps": self.throughput,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p95_ms": self.percentile(0.95) * 1e3,
            "hit_rate": self.hit_rate,
            "busy_responses": self.busy_responses,
        }


@dataclass
class ShardsRun:
    """All sweep points of one scale-out experiment."""

    config: ExperimentConfig
    selectivity: float
    queries_per_session: int
    shard_counts: tuple
    backend: str
    samples: list[ShardsSample] = field(default_factory=list)

    def point(self, server: str, shards: int, clients: int) -> ShardsSample:
        """The sample for one (flavor, shard count, client count) cell."""
        for sample in self.samples:
            if (
                sample.server == server
                and sample.shards == shards
                and sample.clients == clients
            ):
                return sample
        raise KeyError((server, shards, clients))

    def to_dict(self) -> dict:
        """The ``BENCH_shards.json`` payload."""
        return {
            "experiment": "shards",
            "patients": self.config.patients,
            "samples_per_patient": self.config.samples_per_patient,
            "selectivity": self.selectivity,
            "queries_per_session": self.queries_per_session,
            "shard_counts": list(self.shard_counts),
            "backend": self.backend,
            "sweep": [sample.to_dict() for sample in self.samples],
        }


def _session_worker(
    address: tuple[str, int],
    user: str,
    iterations: int,
    sample: ShardsSample,
    lock: threading.Lock,
    start_gate: threading.Event,
) -> None:
    latencies: list[float] = []
    completed = 0
    busy = 0
    hits = 0
    with Client(*address) as client:
        client.hello(user, BENCH_PURPOSE)
        statement = client.prepare(MIX_PREPARED)
        start_gate.wait()
        for iteration in range(iterations):
            calls = [
                lambda sql=sql: client.query(sql) for sql in MIX_QUERIES
            ]
            calls.append(
                lambda i=iteration: client.execute_prepared(
                    statement, [f"watch{i % 7}"]
                )
            )
            for call in calls:
                begin = time.perf_counter()
                try:
                    result = call()
                except RemoteError as exc:
                    if exc.code != "server_busy":
                        raise
                    busy += 1
                    continue
                latencies.append(time.perf_counter() - begin)
                completed += 1
                if result.cache_hit:
                    hits += 1
        client.bye()
    with lock:
        sample.latencies.extend(latencies)
        sample.queries += completed
        sample.cache_hits += hits
        sample.busy_responses += busy


def _drive_point(
    address: tuple[str, int],
    server: str,
    shards: int,
    clients: int,
    queries_per_session: int,
    users: list[str],
) -> ShardsSample:
    """One measured point: ``clients`` session threads against ``address``."""
    sample = ShardsSample(
        server=server, shards=shards, clients=clients, queries=0, elapsed=0.0
    )
    lock = threading.Lock()
    start_gate = threading.Event()
    workers = [
        threading.Thread(
            target=_session_worker,
            args=(
                address,
                users[index],
                queries_per_session,
                sample,
                lock,
                start_gate,
            ),
        )
        for index in range(clients)
    ]
    for worker in workers:
        worker.start()
    begin = time.perf_counter()
    start_gate.set()
    for worker in workers:
        worker.join()
    sample.elapsed = time.perf_counter() - begin
    return sample


def run_shards(
    config: ExperimentConfig | None = None,
    client_counts: tuple[int, ...] = (1, 4, 8, 16),
    shard_counts: tuple[int, ...] = (1, 3),
    queries_per_session: int = 8,
    selectivity: float = 0.4,
    backend: str = "inline",
    max_pending: int = 64,
) -> ShardsRun:
    """Sweep client counts across the threaded and async-sharded servers.

    Worlds are built once per flavor from one :class:`WorldRecipe` and
    reused across client counts; each sweep point gets a fresh server
    whose admission width matches the client count, so backpressure and
    latency are comparable across flavors at the same point.  The plan
    caches warm during the first point of each flavor and stay warm —
    every flavor gets the identical warmup treatment.
    """
    config = config or ExperimentConfig.scaled()
    users = [f"bench{index}" for index in range(max(client_counts))]
    recipe = WorldRecipe.for_patients(
        patients=config.patients,
        samples=config.samples_per_patient,
        selectivity=selectivity,
        policy_seed=config.policy_seed,
        data_seed=config.data_seed,
        grants=tuple((user, BENCH_PURPOSE) for user in users),
    )
    run = ShardsRun(
        config=config,
        selectivity=selectivity,
        queries_per_session=queries_per_session,
        shard_counts=tuple(shard_counts),
        backend=backend,
    )

    baseline = build_world(recipe)
    coordinators = {
        count: ShardCoordinator(recipe, count, backend=backend)
        for count in shard_counts
    }
    try:
        for clients in client_counts:
            with QueryServer(
                baseline.monitor, workers=clients, max_pending=max_pending
            ) as server:
                run.samples.append(
                    _drive_point(
                        server.address,
                        "threaded",
                        0,
                        clients,
                        queries_per_session,
                        users,
                    )
                )
            for count in shard_counts:
                with AsyncQueryServer(
                    coordinators[count],
                    max_concurrent=clients,
                    max_pending=max_pending,
                ) as server:
                    run.samples.append(
                        _drive_point(
                            server.address,
                            "async",
                            count,
                            clients,
                            queries_per_session,
                            users,
                        )
                    )
    finally:
        for coordinator in coordinators.values():
            coordinator.close()
    return run
