"""``python -m repro.bench`` dispatches to the CLI."""

from .cli import main

raise SystemExit(main())
