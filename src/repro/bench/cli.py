"""Command-line entry point: ``python -m repro.bench <figure>``.

Regenerates the paper's figures as plain-text tables::

    python -m repro.bench fig6              # compliance checks per query
    python -m repro.bench fig7              # time vs policy selectivity
    python -m repro.bench fig8              # time vs dataset size
    python -m repro.bench optimizer         # per-row checks vs policy bitmaps
    python -m repro.bench columnar          # row vs batch executor latency
    python -m repro.bench shards            # threaded vs async sharded qps
    python -m repro.bench txn               # rwlock fence vs mvcc snapshots
    python -m repro.bench all               # everything
    python -m repro.bench fig7 --patients 1000 --samples 1000   # paper scale

Dataset sizes default to the paper's sizes times ``REPRO_SCALE``
(default 0.01).
"""

from __future__ import annotations

import argparse
import json

from .experiments import (
    INDEXES_SIZES,
    run_columnar,
    run_experiment1,
    run_experiment2,
    run_hotpath,
    run_indexes,
    run_optimizer,
)
from .harness import ExperimentConfig, PAPER_SELECTIVITIES
from .reporting import (
    columnar_table,
    figure6_table,
    figure7_table,
    figure8_table,
    hotpath_table,
    indexes_table,
    optimizer_table,
    shards_table,
    txn_table,
)
from .shards import run_shards
from .txn import run_txn


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    overrides = {}
    if args.patients is not None:
        overrides["patients"] = args.patients
    if args.samples is not None:
        overrides["samples_per_patient"] = args.samples
    if args.selectivities:
        overrides["selectivities"] = tuple(args.selectivities)
    overrides["include_random"] = not args.no_random
    overrides["repeat"] = args.repeat
    return ExperimentConfig.scaled(**overrides)


def _build_columnar_config(args: argparse.Namespace) -> ExperimentConfig:
    """The columnar experiment defaults to unscaled sizes (see run_columnar)."""
    overrides = {}
    if args.patients is not None:
        overrides["patients"] = args.patients
    if args.samples is not None:
        overrides["samples_per_patient"] = args.samples
    overrides["include_random"] = not args.no_random
    overrides["repeat"] = args.repeat
    return ExperimentConfig(**overrides)


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiment(s) and print the figure tables."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figure",
        choices=(
            "fig6",
            "fig7",
            "fig8",
            "cub",
            "hotpath",
            "optimizer",
            "columnar",
            "indexes",
            "shards",
            "txn",
            "all",
        ),
        help=(
            "which figure to regenerate (cub = §5.6 bound vs measured, "
            "hotpath = cold vs cached prepared-pipeline latency, "
            "optimizer = per-row checks vs policy-bitmap pre-filtering, "
            "columnar = row vs batch executor latency sweep, "
            "indexes = full-scan vs index vs partition-pruned access paths, "
            "shards = threaded baseline vs async sharded throughput, "
            "txn = reader latency under policy churn, rwlock vs mvcc)"
        ),
    )
    parser.add_argument("--patients", type=int, default=None)
    parser.add_argument("--samples", type=int, default=None, help="samples per patient")
    parser.add_argument(
        "--selectivities",
        type=float,
        nargs="+",
        default=list(PAPER_SELECTIVITIES),
        help="policy selectivity sweep (default: 0 0.2 0.4 0.6)",
    )
    parser.add_argument(
        "--no-random",
        action="store_true",
        help="run q1-q8 only (skip the r1-r20 random batch)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--clients",
        type=int,
        nargs="+",
        default=[1, 4, 8, 16],
        help="client-session sweep for the shards experiment",
    )
    parser.add_argument(
        "--shard-counts",
        type=int,
        nargs="+",
        default=[1, 3],
        help="shard counts for the async rows of the shards experiment",
    )
    parser.add_argument(
        "--backend",
        choices=("inline", "process"),
        default="inline",
        help="shard transport for the shards experiment",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(INDEXES_SIZES),
        help="sensed_data row counts for the indexes experiment",
    )
    parser.add_argument(
        "--queries-per-session",
        type=int,
        default=8,
        help="statement-mix iterations per session (shards experiment)",
    )
    parser.add_argument(
        "--readers",
        type=int,
        nargs="+",
        default=[1, 4, 8],
        help="reader-session sweep for the txn experiment",
    )
    parser.add_argument(
        "--reads-per-session",
        type=int,
        default=40,
        help="reads per session under policy churn (txn experiment)",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help=(
            "where the shards/hotpath/optimizer/columnar experiments "
            "write their JSON summaries (defaults: BENCH_<figure>.json)"
        ),
    )
    args = parser.parse_args(argv)
    config = _build_config(args)

    if args.figure in ("fig6", "fig7", "all"):
        run = run_experiment1(config)
        if args.figure in ("fig6", "all"):
            print(figure6_table(run))
            print()
        if args.figure in ("fig7", "all"):
            print(figure7_table(run))
            print()
    if args.figure in ("fig8", "all"):
        result = run_experiment2(config)
        print(figure8_table(result))
        if args.figure == "all":
            print()
    if args.figure in ("cub", "all"):
        print(cub_table(config))
        if args.figure == "all":
            print()
    if args.figure in ("hotpath", "all"):
        run = run_hotpath(config)
        print(hotpath_table(run))
        json_path = (
            args.json_out if args.figure == "hotpath" and args.json_out else None
        ) or "BENCH_hotpath.json"
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(run.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {json_path}")
        if args.figure == "all":
            print()
    if args.figure in ("optimizer", "all"):
        run = run_optimizer(config)
        print(optimizer_table(run))
        json_path = (
            args.json_out if args.figure == "optimizer" and args.json_out else None
        ) or "BENCH_optimizer.json"
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(run.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {json_path}")
        if args.figure == "all":
            print()
    if args.figure in ("columnar", "all"):
        run = run_columnar(_build_columnar_config(args))
        print(columnar_table(run))
        json_path = (
            args.json_out if args.figure == "columnar" and args.json_out else None
        ) or "BENCH_columnar.json"
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(run.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {json_path}")
        if args.figure == "all":
            print()
    if args.figure in ("indexes", "all"):
        run = run_indexes(sizes=tuple(args.sizes))
        print(indexes_table(run))
        json_path = (
            args.json_out if args.figure == "indexes" and args.json_out else None
        ) or "BENCH_indexes.json"
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(run.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {json_path}")
        if args.figure == "all":
            print()
    if args.figure in ("shards", "all"):
        run = run_shards(
            config,
            client_counts=tuple(args.clients),
            shard_counts=tuple(args.shard_counts),
            queries_per_session=args.queries_per_session,
            backend=args.backend,
        )
        print(shards_table(run))
        json_path = (
            args.json_out if args.figure == "shards" and args.json_out else None
        ) or "BENCH_shards.json"
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(run.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {json_path}")
        if args.figure == "all":
            print()
    if args.figure in ("txn", "all"):
        run = run_txn(
            config,
            reader_counts=tuple(args.readers),
            reads_per_session=args.reads_per_session,
        )
        print(txn_table(run))
        json_path = (
            args.json_out if args.figure == "txn" and args.json_out else None
        ) or "BENCH_txn.json"
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(run.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {json_path}")
    return 0


def cub_table(config: ExperimentConfig) -> str:
    """Section 5.6: static upper bound vs measured checks per query."""
    import dataclasses

    from ..core import SignatureDeriver, complexity_upper_bound
    from .harness import BENCH_PURPOSE, build_scenario, set_selectivity
    from .reporting import _format_table

    selectivity = 0.4
    scenario = build_scenario(config)
    set_selectivity(scenario, selectivity, config.policy_seed)
    deriver = SignatureDeriver(scenario.admin, scenario.admin)
    from .harness import experiment_queries

    rows = []
    for query in experiment_queries(config):
        signature = deriver.derive(query.sql, BENCH_PURPOSE)
        estimate = complexity_upper_bound(query.sql, signature, scenario.database)
        report = scenario.monitor.execute_with_report(query.sql, BENCH_PURPOSE)
        ratio = (
            f"{report.compliance_checks / estimate.upper_bound:.2f}"
            if estimate.upper_bound
            else "-"
        )
        rows.append(
            [
                query.name,
                str(estimate.upper_bound),
                str(report.compliance_checks),
                ratio,
            ]
        )
    title = (
        f"Section 5.6 — cub(q) vs measured checks at s={selectivity:g} "
        f"(patients={config.patients}, samples={config.samples_per_patient})"
    )
    table = _format_table(["query", "cub", "measured", "measured/cub"], rows)
    return f"{title}\n{table}"


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
