"""Random query generation (Section 6.2, Figure 5).

The paper complements q1-q8 with twenty automatically generated queries
r1-r20 "to show that the framework behavior is consistent with any type of
query".  The generator here mirrors the described approach: it analyzes the
*patients* scheme, randomly selects the tables and attributes to access, and
randomly derives projection / join / where / group by / having expressions
based on attribute types and value domains.

The class of each rI follows Figure 5:

=============  ==================================================
r1, r12, r20   select from a single data source and aggregate data
r2, r7, r17    join sources, aggregate, and filter the grouped data
r3, r4, r14, r16  join multiple data sources
r5, r8, r11, r13, r15, r18  join multiple data sources and aggregate
r6, r9, r10, r19  select from a single data source
=============  ==================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .patients import DIET_TYPES, FOOD_INTOLERANCES, FOOD_PREFERENCES, POSITIONS
from .queries import BenchmarkQuery

#: The query classes of Figure 5, also the method names implementing them.
QUERY_CLASSES: tuple[str, ...] = (
    "single",
    "single_aggregate",
    "join",
    "join_aggregate",
    "join_aggregate_having",
)

#: Figure 5's class of each random query.
RANDOM_QUERY_CLASSES: dict[str, str] = {
    **{name: "single_aggregate" for name in ("r1", "r12", "r20")},
    **{name: "join_aggregate_having" for name in ("r2", "r7", "r17")},
    **{name: "join" for name in ("r3", "r4", "r14", "r16")},
    **{
        name: "join_aggregate"
        for name in ("r5", "r8", "r11", "r13", "r15", "r18")
    },
    **{name: "single" for name in ("r6", "r9", "r10", "r19")},
}


@dataclass(frozen=True)
class _ColumnInfo:
    """Schema + value-domain knowledge driving predicate generation."""

    table: str
    name: str
    kind: str  # "text" | "int" | "float"
    values: tuple = ()
    numeric_range: tuple[float, float] | None = None


def _schema_columns(patients: int, samples: int) -> tuple[_ColumnInfo, ...]:
    """The patients scheme with value domains scaled to the dataset size."""
    return (
        _ColumnInfo("users", "user_id", "text"),
        _ColumnInfo("users", "watch_id", "text"),
        _ColumnInfo(
            "users", "nutritional_profile_id", "int",
            numeric_range=(0, max(patients - 1, 1)),
        ),
        _ColumnInfo("sensed_data", "watch_id", "text"),
        _ColumnInfo(
            "sensed_data", "timestamp", "int", numeric_range=(1, max(samples, 2))
        ),
        _ColumnInfo(
            "sensed_data", "temperature", "float", numeric_range=(35.0, 41.0)
        ),
        _ColumnInfo("sensed_data", "position", "text", values=POSITIONS),
        _ColumnInfo("sensed_data", "beats", "int", numeric_range=(50, 140)),
        _ColumnInfo(
            "nutritional_profiles", "profile_id", "int",
            numeric_range=(0, max(patients - 1, 1)),
        ),
        _ColumnInfo(
            "nutritional_profiles", "food_intolerances", "text",
            values=FOOD_INTOLERANCES,
        ),
        _ColumnInfo(
            "nutritional_profiles", "food_preferences", "text",
            values=FOOD_PREFERENCES,
        ),
        _ColumnInfo("nutritional_profiles", "diet_type", "text", values=DIET_TYPES),
    )

#: Join edges of the patients scheme: (left, right, condition template).
_JOIN_EDGES = (
    ("users", "sensed_data", "users.watch_id=sensed_data.watch_id"),
    (
        "users",
        "nutritional_profiles",
        "users.nutritional_profile_id=nutritional_profiles.profile_id",
    ),
)


def _qualified(column: _ColumnInfo, multi_table: bool) -> str:
    # watch_id exists in two tables; always qualify in multi-table queries.
    return f"{column.table}.{column.name}" if multi_table else column.name


def case_rng(seed: int | str, index: int) -> random.Random:
    """An independent RNG for case ``(seed, index)``.

    Deriving each case's randomness from the pair — rather than advancing
    one stream across cases — makes any single case replayable verbatim
    without regenerating its predecessors, which is what lets a fuzzing
    failure line be re-run in isolation.
    """
    return random.Random(f"{seed}:{index}")


class RandomQueryGenerator:
    """Seeded generator of the Figure 5 query classes.

    ``patients``/``samples`` scale the literal value domains (id ranges,
    timestamps) so that generated predicates stay meaningful at any dataset
    size.

    All randomness comes from the private :class:`random.Random` instance
    seeded in the constructor; the module-level ``random`` state is never
    read or advanced, so interleaving other random consumers can not change
    what a seed produces.
    """

    def __init__(self, seed: int = 2015, patients: int = 1000, samples: int = 1000):
        self.seed = seed
        self.rng = random.Random(seed)
        self.patients = patients
        self.columns = _schema_columns(patients, samples)

    # -- schema helpers ---------------------------------------------------------

    def _table_columns(self, table: str) -> list[_ColumnInfo]:
        return [column for column in self.columns if column.table == table]

    def _columns_of(self, tables: list[str]) -> list[_ColumnInfo]:
        return [column for column in self.columns if column.table in tables]

    def _numeric_columns(self, tables: list[str]) -> list[_ColumnInfo]:
        return [
            column
            for column in self._columns_of(tables)
            if column.kind in ("int", "float")
        ]

    def _group_column(self, tables: list[str]) -> _ColumnInfo:
        candidates = [
            column for column in self._columns_of(tables) if column.kind == "text"
        ]
        return self.rng.choice(candidates)

    def _predicate(self, column: _ColumnInfo, multi_table: bool) -> str:
        rng = self.rng
        name = _qualified(column, multi_table)
        if column.kind == "text":
            if column.values:
                value = rng.choice(column.values)
                if rng.random() < 0.3:
                    return f"not {name} like '{value}'"
                return f"{name} like '{value}'"
            return f"not {name} like 'watch{rng.randrange(self.patients)}'"
        assert column.numeric_range is not None
        low, high = column.numeric_range
        if column.kind == "int":
            pivot = rng.randint(int(low), int(high))
        else:
            pivot = round(rng.uniform(low, high), 1)
        operator = rng.choice((">", "<", ">="))
        return f"{name} {operator} {pivot}"

    def _aggregate(self, column: _ColumnInfo, multi_table: bool) -> str:
        name = _qualified(column, multi_table)
        function = self.rng.choice(("avg", "min", "max", "sum", "count"))
        return f"{function}({name})"

    def _join_clause(self) -> tuple[list[str], str]:
        """Pick a join of two or three tables; returns (tables, FROM text)."""
        if self.rng.random() < 0.3:
            tables = ["users", "sensed_data", "nutritional_profiles"]
            from_sql = (
                "users join sensed_data on users.watch_id=sensed_data.watch_id "
                "join nutritional_profiles "
                "on users.nutritional_profile_id=nutritional_profiles.profile_id"
            )
            return tables, from_sql
        left, right, condition = self.rng.choice(_JOIN_EDGES)
        return [left, right], f"{left} join {right} on {condition}"

    # -- class generators --------------------------------------------------------

    def single(self) -> str:
        """Plain projection from one table, with an optional filter."""
        rng = self.rng
        table = rng.choice(("users", "sensed_data", "nutritional_profiles"))
        columns = self._table_columns(table)
        projected = rng.sample(columns, k=rng.randint(1, min(3, len(columns))))
        sql = f"select {', '.join(c.name for c in projected)} from {table}"
        if rng.random() < 0.7:
            sql += f" where {self._predicate(rng.choice(columns), False)}"
        return sql

    def single_aggregate(self) -> str:
        """Aggregation over one table, optionally grouped and filtered."""
        rng = self.rng
        table = rng.choice(("sensed_data", "nutritional_profiles", "users"))
        numeric = self._numeric_columns([table])
        aggregates = [
            self._aggregate(rng.choice(numeric), False)
            for _ in range(rng.randint(1, 2))
        ]
        group = None
        if rng.random() < 0.6:
            group = self._group_column([table])
            select_list = [group.name, *aggregates]
        else:
            select_list = aggregates
        sql = f"select {', '.join(select_list)} from {table}"
        if rng.random() < 0.5:
            sql += (
                f" where {self._predicate(rng.choice(self._table_columns(table)), False)}"
            )
        if group is not None:
            sql += f" group by {group.name}"
        return sql

    def join(self) -> str:
        """Join two or three tables, project plain columns, filter."""
        rng = self.rng
        tables, from_sql = self._join_clause()
        candidates = self._columns_of(tables)
        projected = rng.sample(candidates, k=rng.randint(2, 4))
        select_list = ", ".join(_qualified(c, True) for c in projected)
        sql = f"select {select_list} from {from_sql}"
        if rng.random() < 0.8:
            sql += f" where {self._predicate(rng.choice(candidates), True)}"
        return sql

    def join_aggregate(self) -> str:
        """Join + GROUP BY + aggregates (no having)."""
        rng = self.rng
        tables, from_sql = self._join_clause()
        group = self._group_column(tables)
        numeric = self._numeric_columns(tables)
        aggregates = [
            self._aggregate(rng.choice(numeric), True)
            for _ in range(rng.randint(1, 2))
        ]
        sql = (
            f"select {_qualified(group, True)}, {', '.join(aggregates)} "
            f"from {from_sql}"
        )
        if rng.random() < 0.6:
            candidates = self._columns_of(tables)
            sql += f" where {self._predicate(rng.choice(candidates), True)}"
        sql += f" group by {_qualified(group, True)}"
        return sql

    def join_aggregate_having(self) -> str:
        """Join + GROUP BY + aggregate filtered by HAVING."""
        rng = self.rng
        tables, from_sql = self._join_clause()
        group = self._group_column(tables)
        numeric = self._numeric_columns(tables)
        target = rng.choice(numeric)
        aggregate = f"avg({_qualified(target, True)})"
        assert target.numeric_range is not None
        low, high = target.numeric_range
        threshold = round((low + high) / 2, 1)
        sql = (
            f"select {_qualified(group, True)}, {aggregate} from {from_sql} "
            f"group by {_qualified(group, True)} "
            f"having {aggregate} > {threshold}"
        )
        return sql

    # -- batch API -----------------------------------------------------------------

    def query_of_class(self, kind: str) -> str:
        """Generate one query of a Figure 5 class (``kind`` ∈ QUERY_CLASSES)."""
        if kind not in QUERY_CLASSES:
            raise ValueError(f"unknown query class {kind!r}")
        return getattr(self, kind)()

    def generate(self) -> tuple[BenchmarkQuery, ...]:
        """Produce r1-r20 with the class assignment of Figure 5."""
        queries = []
        for index in range(1, 21):
            name = f"r{index}"
            kind = RANDOM_QUERY_CLASSES[name]
            sql = getattr(self, kind)()
            queries.append(BenchmarkQuery(name, sql, f"random: {kind}"))
        return tuple(queries)


def random_queries(
    seed: int = 2015, patients: int = 1000, samples: int = 1000
) -> tuple[BenchmarkQuery, ...]:
    """The r1-r20 batch for a seed (deterministic)."""
    return RandomQueryGenerator(seed, patients, samples).generate()
