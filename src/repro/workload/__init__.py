"""Benchmark workload: the patients scenario, policies and query sets."""

from .patients import (
    CATEGORIZATION,
    PatientsScenario,
    build_patients_scenario,
    create_patients_schema,
    populate_patients,
)
from .policies import (
    ScatteredPolicySpec,
    apply_experiment_policies,
    apply_scattered_policies,
    compliance_flags,
    scattered_policy,
)
from .queries import AD_HOC_QUERIES, BenchmarkQuery, get_query
from .randgen import RANDOM_QUERY_CLASSES, RandomQueryGenerator, random_queries

__all__ = [
    "CATEGORIZATION",
    "PatientsScenario",
    "build_patients_scenario",
    "create_patients_schema",
    "populate_patients",
    "ScatteredPolicySpec",
    "apply_experiment_policies",
    "apply_scattered_policies",
    "compliance_flags",
    "scattered_policy",
    "AD_HOC_QUERIES",
    "BenchmarkQuery",
    "get_query",
    "RANDOM_QUERY_CLASSES",
    "RandomQueryGenerator",
    "random_queries",
]
