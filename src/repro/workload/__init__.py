"""Benchmark workload: the patients scenario, policies and query sets."""

from .patients import (
    CATEGORIZATION,
    PatientsScenario,
    build_patients_scenario,
    create_patients_schema,
    populate_patients,
)
from .policies import (
    ScatteredPolicySpec,
    apply_experiment_policies,
    apply_random_policies,
    apply_scattered_policies,
    compliance_flags,
    random_policy,
    random_rule,
    scattered_policy,
)
from .queries import AD_HOC_QUERIES, BenchmarkQuery, get_query
from .randgen import (
    QUERY_CLASSES,
    RANDOM_QUERY_CLASSES,
    RandomQueryGenerator,
    case_rng,
    random_queries,
)

__all__ = [
    "CATEGORIZATION",
    "PatientsScenario",
    "build_patients_scenario",
    "create_patients_schema",
    "populate_patients",
    "ScatteredPolicySpec",
    "apply_experiment_policies",
    "apply_random_policies",
    "apply_scattered_policies",
    "compliance_flags",
    "random_policy",
    "random_rule",
    "scattered_policy",
    "AD_HOC_QUERIES",
    "BenchmarkQuery",
    "get_query",
    "QUERY_CLASSES",
    "RANDOM_QUERY_CLASSES",
    "RandomQueryGenerator",
    "case_rng",
    "random_queries",
]
