"""The *patients* running example (Section 3) and its data generator.

Builds the nursing-home database — ``users``, ``sensed_data``,
``nutritional_profiles`` — populates it following the evaluation setup of
Section 6 ("each patient is described by one tuple in users, one in
nutritional_profile, and multiple tuples in sensed_data"), configures access
control and applies the data categorization of Figure 2.

Table name note: the paper's Section 3 spells the third table
``nutritional_profile`` while its own benchmark queries (Figure 4) use
``nutritional_profiles``; we follow the queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core import (
    AccessControlManager,
    EnforcementMonitor,
    GENERIC,
    IDENTIFIER,
    PolicyManager,
    QUASI_IDENTIFIER,
    SENSITIVE,
    default_purpose_set,
)
from ..engine import Column, Database, SqlType, TableSchema

#: Figure 2's data categorization, per (table, column).
CATEGORIZATION = (
    ("users", "user_id", IDENTIFIER),
    ("users", "watch_id", QUASI_IDENTIFIER),
    ("users", "nutritional_profile_id", QUASI_IDENTIFIER),
    ("sensed_data", "watch_id", QUASI_IDENTIFIER),
    ("sensed_data", "timestamp", GENERIC),
    ("sensed_data", "temperature", SENSITIVE),
    ("sensed_data", "position", SENSITIVE),
    ("sensed_data", "beats", SENSITIVE),
    ("nutritional_profiles", "profile_id", QUASI_IDENTIFIER),
    ("nutritional_profiles", "food_intolerances", SENSITIVE),
    ("nutritional_profiles", "food_preferences", SENSITIVE),
    ("nutritional_profiles", "diet_type", SENSITIVE),
)

FOOD_INTOLERANCES = (
    "no_intolerance", "gluten", "lactose", "nuts", "shellfish", "eggs",
)
FOOD_PREFERENCES = (
    "pasta", "rice", "fish", "poultry", "vegetables", "fruit", "soup",
)
DIET_TYPES = ("vegan", "low_sugar", "low_salt", "mediterranean", "high_protein")
POSITIONS = ("room", "garden", "dining_hall", "gym", "infirmary", "lounge")


@dataclass
class PatientsScenario:
    """A fully configured instance of the running example."""

    database: Database
    admin: AccessControlManager
    manager: PolicyManager
    monitor: EnforcementMonitor
    patients: int
    samples_per_patient: int

    @property
    def sensed_rows(self) -> int:
        """Total rows of ``sensed_data``."""
        return self.patients * self.samples_per_patient


def create_patients_schema(database: Database) -> None:
    """Create the three tables of the running example."""
    database.create_table(
        TableSchema(
            "users",
            [
                Column("user_id", SqlType.TEXT, primary_key=True),
                Column("watch_id", SqlType.TEXT),
                Column("nutritional_profile_id", SqlType.INTEGER),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "sensed_data",
            [
                Column("watch_id", SqlType.TEXT, primary_key=True),
                Column("timestamp", SqlType.INTEGER, primary_key=True),
                Column("temperature", SqlType.DOUBLE),
                Column("position", SqlType.TEXT),
                Column("beats", SqlType.INTEGER),
            ],
        )
    )
    database.create_table(
        TableSchema(
            "nutritional_profiles",
            [
                Column("profile_id", SqlType.INTEGER, primary_key=True),
                Column("food_intolerances", SqlType.TEXT),
                Column("food_preferences", SqlType.TEXT),
                Column("diet_type", SqlType.TEXT),
            ],
        )
    )


def populate_patients(
    database: Database,
    patients: int,
    samples_per_patient: int,
    seed: int = 20150311,
) -> None:
    """Generate synthetic patient data (deterministic for a given seed)."""
    rng = random.Random(seed)
    users = database.table("users")
    sensed = database.table("sensed_data")
    profiles = database.table("nutritional_profiles")
    # Rows are staged per table and bulk-appended once: one version bump per
    # table instead of one per row, so the policy-bitmap cache (keyed on
    # Table.version) is invalidated once per load.  The RNG draw order is
    # unchanged, so generated data matches the old per-row loader exactly.
    user_rows: list[tuple] = []
    profile_rows: list[tuple] = []
    sensed_rows: list[tuple] = []
    for patient in range(patients):
        user_id = f"user{patient}"
        watch_id = f"watch{patient}"
        user_rows.append((user_id, watch_id, patient))
        profile_rows.append(
            (
                patient,
                rng.choice(FOOD_INTOLERANCES),
                rng.choice(FOOD_PREFERENCES),
                rng.choice(DIET_TYPES),
            )
        )
        for sample in range(samples_per_patient):
            sensed_rows.append(
                (
                    watch_id,
                    sample + 1,
                    round(rng.uniform(35.0, 41.0), 2),
                    rng.choice(POSITIONS),
                    rng.randint(50, 140),
                )
            )
    users.append_rows(user_rows, ("user_id", "watch_id", "nutritional_profile_id"))
    profiles.append_rows(
        profile_rows,
        ("profile_id", "food_intolerances", "food_preferences", "diet_type"),
    )
    sensed.append_rows(
        sensed_rows,
        ("watch_id", "timestamp", "temperature", "position", "beats"),
    )


def build_patients_scenario(
    patients: int = 100,
    samples_per_patient: int = 100,
    seed: int = 20150311,
) -> PatientsScenario:
    """Build, populate and configure the full running example.

    The paper's Experiment 1 uses 1,000 patients × 1,000 samples; defaults
    here are scaled down for the pure-Python engine, and every benchmark
    accepts explicit sizes.
    """
    database = Database("patients")
    create_patients_schema(database)
    populate_patients(database, patients, samples_per_patient, seed)

    admin = AccessControlManager(database)
    admin.configure(purposes=default_purpose_set())
    for table, column, category in CATEGORIZATION:
        admin.categorize(table, column, category)

    manager = PolicyManager(admin)
    monitor = EnforcementMonitor(admin)
    return PatientsScenario(
        database=database,
        admin=admin,
        manager=manager,
        monitor=monitor,
        patients=patients,
        samples_per_patient=samples_per_patient,
    )
