"""The ad-hoc benchmark queries q1-q8 (Figure 4).

The SQL text follows the paper verbatim, except that the paper's
``watch100``/``temperature>37`` style literals are kept as-is — they refer
to values the generator of :mod:`repro.workload.patients` produces.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkQuery:
    """A named benchmark query."""

    name: str
    sql: str
    description: str


Q1 = BenchmarkQuery(
    "q1",
    "select distinct watch_id from sensed_data",
    "projection with DISTINCT over the big table",
)
Q2 = BenchmarkQuery(
    "q2",
    "select count(watch_id) from sensed_data",
    "single aggregate over the big table",
)
Q3 = BenchmarkQuery(
    "q3",
    "select count(watch_id) from sensed_data "
    "where not watch_id like 'watch100'",
    "aggregate with a negated LIKE filter",
)
Q4 = BenchmarkQuery(
    "q4",
    "select food_intolerances, count(user_id) from users "
    "join nutritional_profiles "
    "on users.nutritional_profile_id=nutritional_profiles.profile_id "
    "where not food_intolerances like 'no_intolerance' "
    "group by food_intolerances",
    "join + filter + group by on the small tables",
)
Q5 = BenchmarkQuery(
    "q5",
    "select user_id, temperature from users join sensed_data "
    "on users.watch_id=sensed_data.watch_id "
    "where sensed_data.temperature>37 and timestamp>0",
    "join + conjunctive filter, wide result",
)
Q6 = BenchmarkQuery(
    "q6",
    "select user_id, avg(temperature), avg(beats) "
    "from users join sensed_data on users.watch_id=sensed_data.watch_id "
    "where timestamp >0 and nutritional_profile_id in "
    "(select profile_id from nutritional_profiles "
    "where not food_intolerances like 'no_intolerance') "
    "group by user_id",
    "join + IN sub-query + group by with two aggregates",
)
Q7 = BenchmarkQuery(
    "q7",
    "select user_id, avg(beats), food_preferences "
    "from users join sensed_data on users.watch_id=sensed_data.watch_id "
    "join nutritional_profiles "
    "on users.nutritional_profile_id=nutritional_profiles.profile_id "
    "where diet_type like 'low_sugar' group by user_id, food_preferences",
    "three-way join + filter + group by",
)
Q8 = BenchmarkQuery(
    "q8",
    "select user_id, avg(s1.b) from users join "
    "(select watch_id as w, beats as b from sensed_data where beats>100) s1 "
    "on users.watch_id=s1.w group by user_id",
    "derived-table sub-query in FROM",
)

AD_HOC_QUERIES: tuple[BenchmarkQuery, ...] = (Q1, Q2, Q3, Q4, Q5, Q6, Q7, Q8)


def get_query(name: str) -> BenchmarkQuery:
    """Look up an ad-hoc query by name (``"q1"``...``"q8"``)."""
    for query in AD_HOC_QUERIES:
        if query.name == name.lower():
            return query
    raise KeyError(f"unknown benchmark query {name!r}")
