"""Scattered-policy generation with a target selectivity (Section 6.1).

The paper benchmarks enforcement against *scattered* policies: policies
whose rules are all *pass-all* (rule mask of '1's — complies with any action
signature) or *pass-none* ('0's — complies with nothing).  To reach a
selectivity *s* with respect to no-filtering queries over *n* tuples,
``s·n`` tuples receive policies made only of pass-none rules and
``(1-s)·n`` tuples receive policies that include one pass-all rule.  Per the
paper's footnote 15, each policy has 1–3 rules and the position of the
compliant rule varies uniformly.

Policies are assigned per *entity*: one entity per row for ``users`` and
``nutritional_profiles``, one entity per smart watch for ``sensed_data``
(all samples of a watch share a policy — Section 6's data generation rule 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core import Policy, PolicyRule
from ..core.actions import (
    ActionType,
    Aggregation,
    JointAccess,
    Multiplicity,
)
from ..core.admin import AccessControlManager, POLICY_COLUMN
from ..engine.types import BitString


@dataclass(frozen=True)
class ScatteredPolicySpec:
    """Parameters of Section 6.1's policy generator."""

    selectivity: float
    min_rules: int = 1
    max_rules: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError("selectivity must be within [0, 1]")
        if not 1 <= self.min_rules <= self.max_rules:
            raise ValueError("invalid rule-count range")


def scattered_policy(
    table: str, compliant: bool, rule_count: int, pass_all_position: int
) -> Policy:
    """One scattered policy.

    A *compliant* policy places one pass-all rule at ``pass_all_position``
    among ``rule_count`` rules, the rest being pass-none; a non-compliant
    one is all pass-none rules.
    """
    rules: list[PolicyRule] = [PolicyRule.pass_none() for _ in range(rule_count)]
    if compliant:
        rules[pass_all_position % rule_count] = PolicyRule.pass_all()
    return Policy(table=table, rules=tuple(rules))


def compliance_flags(entities: int, selectivity: float, rng: random.Random) -> list[bool]:
    """Shuffled entity→compliant assignment hitting the target selectivity.

    Exactly ``round(selectivity * entities)`` entities are non-compliant.
    """
    non_compliant = round(selectivity * entities)
    flags = [False] * non_compliant + [True] * (entities - non_compliant)
    rng.shuffle(flags)
    return flags


def apply_scattered_policies(
    admin: AccessControlManager,
    table: str,
    spec: ScatteredPolicySpec,
    rng: random.Random,
    entity_column: str | None = None,
) -> dict[object, bool]:
    """Generate and store scattered policies for every tuple of ``table``.

    When ``entity_column`` is given, rows sharing a value of that column
    form one entity and share a policy (the paper's per-watch grouping for
    ``sensed_data``); otherwise each row is its own entity.

    Returns the entity → compliant mapping (keyed by entity value or row
    index), which the benchmarks use to predict expected result sizes.
    """
    admin.require_configured()
    layout = admin.layout(table)
    storage = admin.database.table(table)
    policy_index = storage.schema.column_index(POLICY_COLUMN)

    def make_mask(compliant: bool) -> BitString:
        rule_count = rng.randint(spec.min_rules, spec.max_rules)
        position = rng.randrange(rule_count)
        policy = scattered_policy(table, compliant, rule_count, position)
        return layout.policy_mask(policy)

    if entity_column is None:
        flags = compliance_flags(len(storage), spec.selectivity, rng)
        assignment: dict[object, bool] = {}
        new_rows = []
        for index, (row, compliant) in enumerate(zip(storage.rows, flags)):
            mask = make_mask(compliant)
            new_rows.append(
                (*row[:policy_index], mask, *row[policy_index + 1 :])
            )
            assignment[index] = compliant
        storage.rows = new_rows
        # Masks were written past store_policy_mask, so invalidate cached
        # enforcement plans here.
        admin.bump_policy_epoch()
        return assignment

    entity_index = storage.schema.column_index(entity_column)
    entities: list[object] = []
    seen: set = set()
    for row in storage.rows:
        value = row[entity_index]
        if value not in seen:
            seen.add(value)
            entities.append(value)
    flags = compliance_flags(len(entities), spec.selectivity, rng)
    assignment = dict(zip(entities, flags))
    masks = {value: make_mask(compliant) for value, compliant in assignment.items()}
    storage.rows = [
        (*row[:policy_index], masks[row[entity_index]], *row[policy_index + 1 :])
        for row in storage.rows
    ]
    admin.bump_policy_epoch()
    return assignment


def random_rule(
    columns: tuple[str, ...],
    purpose_ids: tuple[str, ...],
    category_codes: tuple[str, ...],
    rng: random.Random,
) -> PolicyRule:
    """One randomized rule: pass-all, pass-none or a structured ⟨Cl, Pu, At⟩.

    Structured rules draw a non-empty column subset, a non-empty purpose
    subset, a random indirection (direct rules get random multiplicity and
    aggregation) and a random joint-access category set — so generated
    policies exercise every dimension of the Def. 5/6 compliance relation,
    not just the scattered all-ones/all-zeros masks of Section 6.1.
    """
    roll = rng.random()
    if roll < 0.2:
        return PolicyRule.pass_all()
    if roll < 0.4:
        return PolicyRule.pass_none()
    rule_columns = rng.sample(list(columns), k=rng.randint(1, len(columns)))
    rule_purposes = rng.sample(list(purpose_ids), k=rng.randint(1, len(purpose_ids)))
    joint = JointAccess(
        frozenset(code for code in category_codes if rng.random() < 0.5)
    )
    if rng.random() < 0.3:
        action = ActionType.indirect(joint)
    else:
        action = ActionType.direct(
            rng.choice((Multiplicity.SINGLE, Multiplicity.MULTIPLE)),
            rng.choice((Aggregation.AGGREGATION, Aggregation.NO_AGGREGATION)),
            joint,
        )
    return PolicyRule.of(rule_columns, rule_purposes, action)


def random_policy(
    table: str,
    columns: tuple[str, ...],
    purpose_ids: tuple[str, ...],
    category_codes: tuple[str, ...],
    rng: random.Random,
    min_rules: int = 1,
    max_rules: int = 3,
) -> Policy:
    """A policy of 1–3 independently randomized rules (see :func:`random_rule`)."""
    count = rng.randint(min_rules, max_rules)
    return Policy(
        table=table,
        rules=tuple(
            random_rule(columns, purpose_ids, category_codes, rng)
            for _ in range(count)
        ),
    )


def apply_random_policies(
    admin: AccessControlManager,
    table: str,
    rng: random.Random,
    entity_column: str | None = None,
    min_rules: int = 1,
    max_rules: int = 3,
) -> int:
    """Store an independently randomized policy on every entity of ``table``.

    Unlike :func:`apply_scattered_policies` there is no target selectivity:
    every entity (row, or group of rows sharing ``entity_column``) draws its
    own structured policy, which is what the differential fuzzer uses to
    exercise mask compliance beyond the pass-all/pass-none extremes.
    Returns the number of entities assigned.
    """
    admin.require_configured()
    layout = admin.layout(table)
    storage = admin.database.table(table)
    policy_index = storage.schema.column_index(POLICY_COLUMN)
    purpose_ids = layout.purpose_ids
    category_codes = tuple(category.code for category in admin.categories)

    def make_mask() -> BitString:
        policy = random_policy(
            table, layout.columns, purpose_ids, category_codes, rng,
            min_rules, max_rules,
        )
        return layout.policy_mask(policy)

    if entity_column is None:
        storage.rows = [
            (*row[:policy_index], make_mask(), *row[policy_index + 1 :])
            for row in storage.rows
        ]
        admin.bump_policy_epoch()
        return len(storage.rows)

    entity_index = storage.schema.column_index(entity_column)
    masks: dict[object, BitString] = {}
    for row in storage.rows:
        value = row[entity_index]
        if value not in masks:
            masks[value] = make_mask()
    storage.rows = [
        (*row[:policy_index], masks[row[entity_index]], *row[policy_index + 1 :])
        for row in storage.rows
    ]
    admin.bump_policy_epoch()
    return len(masks)


def apply_experiment_policies(
    scenario,
    selectivity: float,
    seed: int = 411595,
    min_rules: int = 1,
    max_rules: int = 3,
) -> dict[str, dict[object, bool]]:
    """Section 6's policy setup: same selectivity on all three tables.

    ``users`` and ``nutritional_profiles`` get per-tuple policies,
    ``sensed_data`` per-watch policies.  Returns per-table assignments.
    """
    rng = random.Random(seed)
    spec = ScatteredPolicySpec(selectivity, min_rules, max_rules)
    return {
        "users": apply_scattered_policies(scenario.admin, "users", spec, rng),
        "nutritional_profiles": apply_scattered_policies(
            scenario.admin, "nutritional_profiles", spec, rng
        ),
        "sensed_data": apply_scattered_policies(
            scenario.admin, "sensed_data", spec, rng, entity_column="watch_id"
        ),
    }
