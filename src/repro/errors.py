"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  The hierarchy mirrors the subsystems: the SQL
front end raises :class:`SqlError` subclasses, the relational engine raises
:class:`EngineError` subclasses, and the access-control core raises
:class:`AccessControlError` subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


# --------------------------------------------------------------------------
# SQL front end
# --------------------------------------------------------------------------


class SqlError(ReproError):
    """Base class for lexing/parsing failures."""


class LexError(SqlError):
    """Raised when the lexer meets a character sequence it cannot tokenize."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the token stream does not form a valid statement."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


# --------------------------------------------------------------------------
# Relational engine
# --------------------------------------------------------------------------


class EngineError(ReproError):
    """Base class for execution-time failures of the relational engine."""


class CatalogError(EngineError):
    """Unknown or duplicate table/column/function, or invalid DDL."""


class AmbiguousColumnError(CatalogError):
    """An unqualified column reference matches more than one source.

    Distinct from the unknown-column case: scope resolution must *not* fall
    back to an enclosing query block when the inner block's reference is
    ambiguous.
    """


class TypeMismatchError(EngineError):
    """An operator or function was applied to operands of the wrong type."""


class ExpressionError(EngineError):
    """An expression cannot be compiled or evaluated (bad column ref, ...)."""


class ExecutionError(EngineError):
    """A query plan failed during execution."""


class TransactionError(EngineError):
    """Transaction protocol misuse (nested BEGIN, COMMIT without BEGIN, ...)."""


class WriteConflictError(TransactionError):
    """First-committer-wins validation failed: another transaction committed
    a write to a table this transaction also wrote since its snapshot."""

    def __init__(self, table: str, snapshot_ts: int, committed_ts: int):
        super().__init__(
            f"write-write conflict on table {table!r}: snapshot ts "
            f"{snapshot_ts} but a conflicting commit landed at ts {committed_ts}"
        )
        self.table = table
        self.snapshot_ts = snapshot_ts
        self.committed_ts = committed_ts


class CatalogConflictError(TransactionError):
    """First-committer-wins validation failed on a *catalog* entry: another
    transaction (or an autocommit DDL statement) committed a change to the
    same schema/index/taxonomy slot since this transaction's snapshot."""

    def __init__(
        self, kind: str, key: str, snapshot_version: int, committed_version: int
    ):
        super().__init__(
            f"catalog conflict on {kind} {key!r}: snapshot pinned catalog "
            f"version {snapshot_version} but a conflicting commit landed at "
            f"version {committed_version}"
        )
        self.kind = kind
        self.key = key
        self.snapshot_version = snapshot_version
        self.committed_version = committed_version


class SnapshotInvalidatedError(TransactionError):
    """The policy *metadata* (purposes, categorization) changed under an open
    snapshot while the engine runs in fail-fast revocation mode
    (``REPRO_REVOCATION=failfast``); the transaction must be rolled back and
    retried.  The default ``versioned`` mode resolves metadata as of the
    snapshot's catalog version instead and never dooms snapshots."""


class WalError(EngineError):
    """The write-ahead log is unreadable, unwritable or corrupt."""


class InjectedFailure(RuntimeError):
    """Raised by a WAL failpoint to simulate a crash mid-commit.

    Deliberately *not* a :class:`ReproError`: production code must never
    catch it, exactly like a real ``kill -9`` cannot be caught.
    """

    def __init__(self, point: str):
        super().__init__(f"injected crash at failpoint {point!r}")
        self.point = point


# --------------------------------------------------------------------------
# Access-control core
# --------------------------------------------------------------------------


class AccessControlError(ReproError):
    """Base class for policy/enforcement configuration failures."""


class PolicyError(AccessControlError):
    """A policy or rule is malformed with respect to its table/purpose set."""


class MaskError(AccessControlError):
    """A bit-mask operation received incompatible operands."""


class SignatureError(AccessControlError):
    """Query-signature derivation failed for a statement."""


class ConfigurationError(AccessControlError):
    """The target database is not (or is inconsistently) configured."""


class UnauthorizedPurposeError(AccessControlError):
    """A user submitted a query for a purpose they are not authorized for."""

    def __init__(self, user_id: str, purpose_id: str):
        super().__init__(
            f"user {user_id!r} is not authorized for purpose {purpose_id!r}"
        )
        self.user_id = user_id
        self.purpose_id = purpose_id


# --------------------------------------------------------------------------
# Query service (repro.server)
# --------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for failures of the concurrent query service."""


class WireProtocolError(ServerError):
    """A frame on the wire is malformed, oversized or truncated."""


class ServerBusyError(ServerError):
    """Admission control rejected the request: the work queue is full."""


class RemoteError(ServerError):
    """An error response received by a client, carrying the server's code.

    ``code`` is one of the protocol's error codes (``policy_denied``,
    ``unauthorized_purpose``, ``parse_error``, ``engine_error``,
    ``server_busy``, ``protocol_error``, ``internal_error``), so client code
    can tell a policy denial from an engine fault without string matching.
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class RemoteTxnConflictError(RemoteError):
    """Typed ``txn_conflict``: the server aborted this session's COMMIT
    because another transaction won the first-committer-wins race on a row
    (or, with ``REPRO_CONFLICT=table``, a table) this transaction wrote."""


class RemoteCatalogConflictError(RemoteError):
    """Typed ``catalog_conflict``: a concurrent DDL/taxonomy commit beat
    this transaction to the same catalog entry."""


class RemoteSnapshotInvalidatedError(RemoteError):
    """Typed ``snapshot_invalidated``: the session's snapshot was doomed by
    a policy-metadata change under fail-fast revocation mode."""
