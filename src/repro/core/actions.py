"""Action types (Def. 1) and their compliance relation (Def. 5).

An action type has four dimensions:

* **indirection** — ``DIRECT`` (the datum contributes values to the result
  set) or ``INDIRECT`` (the datum is only used for filtering / grouping /
  ordering);
* **multiplicity** — ``SINGLE`` (the derived value comes from one data
  field) or ``MULTIPLE`` (combined with other columns);
* **aggregation** — ``AGGREGATION`` (the field is aggregated across tuples)
  or ``NO_AGGREGATION``;
* **joint access** — the set of data categories that may be (for policies)
  or are (for signatures) accessed together with the constrained columns.

Multiplicity and aggregation are undefined (``None``, the paper's ⊥) for
indirect accesses — see the ⊥ entries of Figure 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import PolicyError
from .categories import CategoryRegistry, DataCategory


class Indirection(enum.Enum):
    """First dimension of an action type."""

    DIRECT = "d"
    INDIRECT = "i"


class Multiplicity(enum.Enum):
    """Second dimension; only meaningful for direct accesses."""

    SINGLE = "s"
    MULTIPLE = "m"


class Aggregation(enum.Enum):
    """Third dimension; only meaningful for direct accesses."""

    AGGREGATION = "a"
    NO_AGGREGATION = "n"


@dataclass(frozen=True)
class JointAccess:
    """The joint-access component *Ja*: a set of allowed/performed categories.

    For a policy rule, the set lists categories whose joint access is
    *allowed* (value ``a`` in Def. 1).  For an action signature, it lists the
    categories that the query *actually* accesses jointly with the
    constrained columns (Example 5).
    """

    allowed: frozenset[str] = field(default_factory=frozenset)

    @classmethod
    def of(cls, *categories: "DataCategory | str") -> "JointAccess":
        """Build from category objects or codes."""
        codes = frozenset(
            category.code if isinstance(category, DataCategory) else category
            for category in categories
        )
        return cls(codes)

    @classmethod
    def none(cls) -> "JointAccess":
        """No joint access allowed/performed."""
        return cls(frozenset())

    @classmethod
    def all(cls, registry: CategoryRegistry) -> "JointAccess":
        """Joint access to every registered category."""
        return cls(frozenset(category.code for category in registry))

    def __contains__(self, category: "DataCategory | str") -> bool:
        code = category.code if isinstance(category, DataCategory) else category
        return code in self.allowed

    def union(self, other: "JointAccess") -> "JointAccess":
        """Set union of two joint-access components."""
        return JointAccess(self.allowed | other.allowed)

    def is_subset_of(self, other: "JointAccess") -> bool:
        """Def. 5's joint-access condition: every ``a`` here is ``a`` there."""
        return self.allowed <= other.allowed

    def codes(self, registry: CategoryRegistry) -> str:
        """Render as the paper's tuple notation, e.g. ``"a,a,n,n"``."""
        return ",".join(
            "a" if category.code in self.allowed else "n" for category in registry
        )


@dataclass(frozen=True)
class ActionType:
    """An action type *Ac* (Def. 1).

    ``multiplicity`` and ``aggregation`` are ``None`` (⊥) for indirect
    accesses; constructing a direct action type without them raises
    :class:`PolicyError`.
    """

    indirection: Indirection
    multiplicity: Multiplicity | None
    aggregation: Aggregation | None
    joint_access: JointAccess

    def __post_init__(self) -> None:
        if self.indirection is Indirection.DIRECT:
            if self.multiplicity is None or self.aggregation is None:
                raise PolicyError(
                    "direct action types require multiplicity and aggregation"
                )

    # -- constructors used throughout the tests and examples ----------------------

    @classmethod
    def indirect(cls, joint_access: JointAccess) -> "ActionType":
        """An indirect access (Ms and Ag are ⊥)."""
        return cls(Indirection.INDIRECT, None, None, joint_access)

    @classmethod
    def direct(
        cls,
        multiplicity: Multiplicity,
        aggregation: Aggregation,
        joint_access: JointAccess,
    ) -> "ActionType":
        """A direct access with explicit multiplicity/aggregation."""
        return cls(Indirection.DIRECT, multiplicity, aggregation, joint_access)

    # -- semantics -----------------------------------------------------------------

    def complies_with(self, rule_action: "ActionType") -> bool:
        """Def. 5: does this (signature) action type comply with a rule's?

        The operation dimensions must match exactly and the joint-access set
        must be a subset of the rule's allowed set.
        """
        if self.indirection is not rule_action.indirection:
            return False
        if self.indirection is Indirection.DIRECT:
            if self.multiplicity is not rule_action.multiplicity:
                return False
            if self.aggregation is not rule_action.aggregation:
                return False
        return self.joint_access.is_subset_of(rule_action.joint_access)

    def describe(self, registry: CategoryRegistry) -> str:
        """Render as the paper's tuple notation, e.g. ``⟨d,s,a,⟨a,a,n,n⟩⟩``."""
        multiplicity = self.multiplicity.value if self.multiplicity else "⊥"
        aggregation = self.aggregation.value if self.aggregation else "⊥"
        return (
            f"<{self.indirection.value},{multiplicity},{aggregation},"
            f"<{self.joint_access.codes(registry)}>>"
        )
