"""Data categories (Section 4.1).

The paper works with four categories referred to by privacy regulations —
*identifier*, *quasi identifier*, *sensitive* and *generic* — and notes the
list "is not necessarily complete and administrators can add other
categories with small extensions".  :class:`CategoryRegistry` implements that
extension point: joint-access masks are sized by the registry, so adding a
category grows every subsequently-encoded mask (DESIGN.md §6).

Category order is significant: the joint-access sub-mask of an action type
mask assigns one bit per category, in registry order.  The default order
``i, q, s, g`` matches Def. 1 / Def. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PolicyError


@dataclass(frozen=True)
class DataCategory:
    """A data category: a short code (used in masks) and a display name."""

    code: str
    name: str

    def __post_init__(self) -> None:
        if not self.code:
            raise PolicyError("category code must be non-empty")

    def __str__(self) -> str:
        return self.name


IDENTIFIER = DataCategory("i", "identifier")
QUASI_IDENTIFIER = DataCategory("q", "quasi identifier")
SENSITIVE = DataCategory("s", "sensitive")
GENERIC = DataCategory("g", "generic")

DEFAULT_CATEGORIES = (IDENTIFIER, QUASI_IDENTIFIER, SENSITIVE, GENERIC)


class CategoryRegistry:
    """Ordered registry of the data categories of an application scenario."""

    def __init__(self, categories: tuple[DataCategory, ...] = DEFAULT_CATEGORIES):
        self._categories: list[DataCategory] = []
        self._by_code: dict[str, DataCategory] = {}
        self._by_name: dict[str, DataCategory] = {}
        for category in categories:
            self.add(category)

    def add(self, category: DataCategory) -> None:
        """Register an additional category (appended after existing ones)."""
        if category.code in self._by_code:
            raise PolicyError(f"duplicate category code {category.code!r}")
        if category.name.lower() in self._by_name:
            raise PolicyError(f"duplicate category name {category.name!r}")
        self._categories.append(category)
        self._by_code[category.code] = category
        self._by_name[category.name.lower()] = category

    @property
    def categories(self) -> tuple[DataCategory, ...]:
        """All categories in mask-bit order."""
        return tuple(self._categories)

    def __len__(self) -> int:
        return len(self._categories)

    def __iter__(self):
        return iter(self._categories)

    def __contains__(self, category: DataCategory) -> bool:
        return category.code in self._by_code

    def index(self, category: DataCategory) -> int:
        """Mask-bit position of a category."""
        try:
            return self._categories.index(category)
        except ValueError:
            raise PolicyError(f"unknown category {category!r}") from None

    def by_code(self, code: str) -> DataCategory:
        """Look up by short code (``'i'``, ``'q'``, ...)."""
        try:
            return self._by_code[code]
        except KeyError:
            raise PolicyError(f"unknown category code {code!r}") from None

    def by_name(self, name: str) -> DataCategory:
        """Look up by display name (case-insensitive)."""
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise PolicyError(f"unknown category {name!r}") from None

    @property
    def default(self) -> DataCategory:
        """The fallback category for unclassified data (Section 4.1)."""
        return self.by_code("g") if "g" in self._by_code else self._categories[-1]
