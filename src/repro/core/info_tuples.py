"""Info tuples and phases 1-2 of query-signature derivation (Section 5.2).

Phase 1 walks each clause of the query model and emits one
:class:`InfoTuple` per *attribute occurrence*:

* select-list expressions yield **direct** accesses, with multiplicity
  SINGLE when the expression references a single attribute occurrence and
  MULTIPLE otherwise (Example 2's ``temperature - avg(temperature)`` counts
  two occurrences), and aggregation set per-occurrence depending on whether
  the occurrence sits inside an aggregate call;
* WHERE / GROUP BY / HAVING / ORDER BY / join-ON expressions yield
  **indirect** accesses with ⊥ multiplicity and aggregation (Figure 3).

Phase 2 fills the category *Ct* of each tuple from the administrator's data
categorization and the joint access *Ja* as the union of the categories of
all *other* attributes accessed by the same query block (Example 5 — the
same-named column of another table contributes its category; a second
occurrence of the same attribute does not).

Derived-table columns resolve through provenance to their base column for
categorization but do not themselves produce info tuples in the outer block;
the inner query block is analyzed separately (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..errors import SignatureError
from ..sql import ast
from .actions import Aggregation, Indirection, JointAccess, Multiplicity
from .categories import DataCategory


class SchemaProvider(Protocol):
    """Catalog information needed by the derivation (implemented by admin)."""

    def table_columns(self, table: str) -> tuple[str, ...]:
        """Logical (categorizable) columns of a base table, in schema order."""

    def has_table(self, table: str) -> bool:
        """Whether a base table with this name exists."""


class Categorizer(Protocol):
    """The data categorization of Section 4.1 (table Pm)."""

    def category(self, table: str, column: str) -> DataCategory:
        """The data category of a base-table column."""


@dataclass(frozen=True)
class InfoTuple:
    """Def. 8's info tuple for one attribute occurrence.

    ``source`` is the base table (*Ds*) and ``binding`` the FROM-clause name
    the occurrence was resolved through (alias or table name).  ``category``
    and ``joint_access`` are filled by phase 2 (``None`` beforehand — the
    paper's ⊥ in the upper half of Figure 3).
    """

    column: str
    source: str
    binding: str
    query_id: str
    indirection: Indirection
    multiplicity: Multiplicity | None
    aggregation: Aggregation | None
    purpose: str
    category: DataCategory | None = None
    joint_access: JointAccess | None = None


@dataclass(frozen=True)
class _ResolvedColumn:
    """A column reference resolved to its provenance."""

    binding: str
    column: str
    base_table: str | None  # None for computed derived columns
    base_column: str | None


class BlockResolver:
    """Resolves column references of one query block to base columns.

    Supports the scope chain needed by correlated subqueries: unresolved
    references are retried against the parent block (occurrences that
    resolve in a parent block belong to the *parent's* signature derivation
    context in spirit, but the paper's per-block model attributes them to the
    block where they appear; we follow the paper and attribute them to the
    base table directly).
    """

    def __init__(
        self,
        select: ast.Select,
        schema: SchemaProvider,
        parent: "BlockResolver | None" = None,
    ):
        self.schema = schema
        self.parent = parent
        # binding -> ("table", table_name) | ("derived", {col: (bt, bc)|None})
        self.bindings: dict[str, tuple] = {}
        for source in ast.select_sources(select):
            if isinstance(source, ast.TableName):
                if not schema.has_table(source.name):
                    raise SignatureError(f"unknown table {source.name!r}")
                self.bindings[source.binding.lower()] = (
                    "table",
                    source.name.lower(),
                )
            elif isinstance(source, ast.SubquerySource):
                self.bindings[source.alias.lower()] = (
                    "derived",
                    _derived_provenance(source.select, schema, parent),
                )

    def resolve(self, ref: ast.ColumnRef) -> _ResolvedColumn:
        """Resolve a reference; raises :class:`SignatureError` when unknown."""
        name = ref.name.lower()
        if ref.table is not None:
            binding = ref.table.lower()
            if binding in self.bindings:
                return self._resolve_in(binding, name, ref)
            if self.parent is not None:
                return self.parent.resolve(ref)
            raise SignatureError(f"unknown source {ref.table!r} for column {ref.name!r}")
        matches = [
            binding
            for binding in self.bindings
            if self._has_column(binding, name)
        ]
        if len(matches) > 1:
            raise SignatureError(f"ambiguous column reference {ref.name!r}")
        if matches:
            return self._resolve_in(matches[0], name, ref)
        if self.parent is not None:
            return self.parent.resolve(ref)
        raise SignatureError(f"unknown column {ref.name!r}")

    def _has_column(self, binding: str, name: str) -> bool:
        kind, payload = self.bindings[binding]
        if kind == "table":
            return name in {c.lower() for c in self.schema.table_columns(payload)}
        return name in payload

    def _resolve_in(self, binding: str, name: str, ref: ast.ColumnRef) -> _ResolvedColumn:
        kind, payload = self.bindings[binding]
        if kind == "table":
            columns = {c.lower() for c in self.schema.table_columns(payload)}
            if name not in columns:
                raise SignatureError(
                    f"table {payload!r} has no column {ref.name!r}"
                )
            return _ResolvedColumn(binding, name, payload, name)
        if name not in payload:
            raise SignatureError(
                f"derived table {binding!r} has no column {ref.name!r}"
            )
        provenance = payload[name]
        if provenance is None:
            return _ResolvedColumn(binding, name, None, None)
        return _ResolvedColumn(binding, name, provenance[0], provenance[1])

    def expand_star(self, table: str | None) -> list[ast.ColumnRef]:
        """Expand ``*`` / ``t.*`` into explicit column references."""
        refs: list[ast.ColumnRef] = []
        for binding, (kind, payload) in self.bindings.items():
            if table is not None and binding != table.lower():
                continue
            if kind == "table":
                for column in self.schema.table_columns(payload):
                    refs.append(ast.ColumnRef(column.lower(), table=binding))
            else:
                for column in payload:
                    refs.append(ast.ColumnRef(column, table=binding))
        if not refs:
            raise SignatureError(f"'*' found no columns for {table or '<all>'!r}")
        return refs


def _derived_provenance(
    select: ast.Select, schema: SchemaProvider, parent: "BlockResolver | None"
) -> dict[str, tuple[str, str] | None]:
    """Output column → base provenance mapping for a derived table."""
    inner = BlockResolver(select, schema, parent=None)
    provenance: dict[str, tuple[str, str] | None] = {}
    for item in select.items:
        expression = item.expression
        if isinstance(expression, ast.Star):
            for ref in inner.expand_star(expression.table):
                resolved = inner.resolve(ref)
                if resolved.base_table is not None:
                    provenance[resolved.column] = (
                        resolved.base_table,
                        resolved.base_column,
                    )
                else:
                    provenance[resolved.column] = None
            continue
        if item.alias:
            name = item.alias.lower()
        elif isinstance(expression, ast.ColumnRef):
            name = expression.name.lower()
        elif isinstance(expression, ast.FunctionCall):
            name = expression.name.lower()
        else:
            from ..sql.printer import print_expression

            name = print_expression(expression).lower()
        if isinstance(expression, ast.ColumnRef):
            resolved = inner.resolve(expression)
            provenance[name] = (
                (resolved.base_table, resolved.base_column)
                if resolved.base_table is not None
                else None
            )
        else:
            provenance[name] = None
    return provenance


# ---------------------------------------------------------------------------
# Phase 1: occurrence extraction
# ---------------------------------------------------------------------------


def derive_info_tuples(
    select: ast.Select,
    query_id: str,
    purpose: str,
    schema: SchemaProvider,
    categorizer: Categorizer,
    parent: BlockResolver | None = None,
) -> tuple[list[InfoTuple], BlockResolver]:
    """Run phases 1 and 2 for one query block.

    Returns the completed info tuples of this block (categories and joint
    access filled in) and the block's resolver, which callers pass as the
    ``parent`` of nested blocks.
    """
    resolver = BlockResolver(select, schema, parent)
    raw: list[InfoTuple] = []

    for item in select.items:
        raw.extend(
            _select_item_tuples(item.expression, resolver, query_id, purpose)
        )

    indirect_expressions: list[ast.Expression] = []
    if select.where is not None:
        indirect_expressions.append(select.where)
    indirect_expressions.extend(select.group_by)
    if select.having is not None:
        indirect_expressions.append(select.having)
    for order_item in select.order_by:
        indirect_expressions.append(order_item.expression)
    indirect_expressions.extend(ast.join_conditions(select))

    for expression in indirect_expressions:
        for ref in ast.iter_column_refs(expression):
            resolved = resolver.resolve(ref)
            if resolved.base_table is None:
                continue  # computed derived column: no base attribute access
            raw.append(
                InfoTuple(
                    column=resolved.base_column,
                    source=resolved.base_table,
                    binding=resolved.binding,
                    query_id=query_id,
                    indirection=Indirection.INDIRECT,
                    multiplicity=None,
                    aggregation=None,
                    purpose=purpose,
                )
            )

    completed = _complete_info_tuples(raw, categorizer)
    return completed, resolver


def _select_item_tuples(
    expression: ast.Expression,
    resolver: BlockResolver,
    query_id: str,
    purpose: str,
) -> list[InfoTuple]:
    """Phase 1 for one select-list expression (direct accesses)."""
    if isinstance(expression, ast.Star):
        # `select *` discloses each column individually: one single-source,
        # non-aggregated direct access per expanded column (Example 1's q2
        # is blocked by the *indirection* dimension, not by multiplicity).
        tuples: list[InfoTuple] = []
        for ref in resolver.expand_star(expression.table):
            tuples.extend(
                _select_item_tuples(ref, resolver, query_id, purpose)
            )
        return tuples
    occurrences = _collect_occurrences(expression, resolver, in_aggregate=False)
    multiplicity = (
        Multiplicity.SINGLE if len(occurrences) <= 1 else Multiplicity.MULTIPLE
    )
    tuples = []
    for resolved, aggregated in occurrences:
        if resolved.base_table is None:
            continue  # computed derived column
        tuples.append(
            InfoTuple(
                column=resolved.base_column,
                source=resolved.base_table,
                binding=resolved.binding,
                query_id=query_id,
                indirection=Indirection.DIRECT,
                multiplicity=multiplicity,
                aggregation=(
                    Aggregation.AGGREGATION
                    if aggregated
                    else Aggregation.NO_AGGREGATION
                ),
                purpose=purpose,
            )
        )
    return tuples


def _collect_occurrences(
    expression: ast.Expression,
    resolver: BlockResolver,
    in_aggregate: bool,
) -> list[tuple[_ResolvedColumn, bool]]:
    """Attribute occurrences of an expression with their aggregation flag.

    Does not descend into nested subqueries (they are separate blocks).
    """
    occurrences: list[tuple[_ResolvedColumn, bool]] = []
    if isinstance(expression, ast.ColumnRef):
        occurrences.append((resolver.resolve(expression), in_aggregate))
        return occurrences
    if isinstance(expression, ast.Star):
        for ref in resolver.expand_star(expression.table):
            occurrences.append((resolver.resolve(ref), in_aggregate))
        return occurrences
    nested_aggregate = in_aggregate
    if isinstance(expression, ast.FunctionCall):
        if expression.name.lower() in ast.AGGREGATE_FUNCTIONS:
            nested_aggregate = True
            if len(expression.args) == 1 and isinstance(expression.args[0], ast.Star):
                # count(*) discloses only cardinality: no attribute access.
                return occurrences
    for child in expression.child_expressions():
        occurrences.extend(_collect_occurrences(child, resolver, nested_aggregate))
    return occurrences


# ---------------------------------------------------------------------------
# Phase 2: categories and joint access
# ---------------------------------------------------------------------------


def _complete_info_tuples(
    tuples: list[InfoTuple], categorizer: Categorizer
) -> list[InfoTuple]:
    """Fill *Ct* and *Ja*: Ja is the union of the categories of all *other*
    accessed attributes of the block (per distinct (table, column) pair)."""
    import dataclasses

    accessed: dict[tuple[str, str], DataCategory] = {}
    for info in tuples:
        key = (info.source, info.column)
        if key not in accessed:
            accessed[key] = categorizer.category(info.source, info.column)

    completed = []
    for info in tuples:
        own_key = (info.source, info.column)
        joint = JointAccess(
            frozenset(
                category.code
                for key, category in accessed.items()
                if key != own_key
            )
        )
        completed.append(
            dataclasses.replace(
                info,
                category=accessed[own_key],
                joint_access=joint,
            )
        )
    return completed
