"""Audit logging of enforced executions.

Privacy-aware data management pairs access control with auditability — the
paper's related work (Datta et al. [12]) checks audit logs for compliance
with privacy policies.  :class:`AuditLog` records every execution the
enforcement monitor performs (and every denial), both in memory and in an
``al`` meta-table of the target database so the trail survives with the
data and can itself be queried with SQL.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

from ..engine import Column, Database, SqlType, TableSchema


@dataclass(frozen=True)
class AuditRecord:
    """One audited event."""

    sequence: int
    user: str | None
    purpose: str
    query_id: str
    statement: str
    outcome: str  # "allowed" | "denied" | "purpose_switch"
    rows: int
    compliance_checks: int


class AuditLog:
    """Append-only record of monitored executions."""

    TABLE = "al"

    def __init__(self, database: Database):
        self.database = database
        self.records: list[AuditRecord] = []
        self._sequence = itertools.count(1)
        # One record() = a sequence draw, a list append and a table insert;
        # the lock keeps those atomic when many server threads audit at once
        # (so `al` rows never appear out of sequence order).
        self._lock = threading.Lock()
        if not database.has_table(self.TABLE):
            database.create_table(
                TableSchema(
                    self.TABLE,
                    [
                        Column("seq", SqlType.INTEGER, primary_key=True),
                        Column("ui", SqlType.TEXT),
                        Column("pi", SqlType.TEXT),
                        Column("qi", SqlType.TEXT),
                        Column("stmt", SqlType.TEXT),
                        Column("outcome", SqlType.TEXT),
                        Column("rows", SqlType.INTEGER),
                        Column("checks", SqlType.INTEGER),
                    ],
                )
            )

    def record(
        self,
        user: str | None,
        purpose: str,
        query_id: str,
        statement: str,
        outcome: str,
        rows: int = 0,
        compliance_checks: int = 0,
    ) -> AuditRecord:
        """Append one event to the log (memory + the ``al`` table)."""
        with self._lock:
            entry = AuditRecord(
                sequence=next(self._sequence),
                user=user,
                purpose=purpose,
                query_id=query_id,
                statement=statement,
                outcome=outcome,
                rows=rows,
                compliance_checks=compliance_checks,
            )
            self.records.append(entry)
            self.database.table(self.TABLE).insert_row(
                (
                    entry.sequence, entry.user, entry.purpose, entry.query_id,
                    entry.statement, entry.outcome, entry.rows,
                    entry.compliance_checks,
                )
            )
            return entry

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def for_user(self, user: str) -> list[AuditRecord]:
        """Events attributed to one user."""
        return [record for record in self.records if record.user == user]

    def denials(self) -> list[AuditRecord]:
        """Events that were denied."""
        return [record for record in self.records if record.outcome == "denied"]

    def purpose_switches(self) -> list[AuditRecord]:
        """Session purpose changes (per-session purpose churn)."""
        return [
            record
            for record in self.records
            if record.outcome == "purpose_switch"
        ]

    def by_purpose(self, purpose: str) -> list[AuditRecord]:
        """Events executed under one purpose."""
        return [record for record in self.records if record.purpose == purpose]
