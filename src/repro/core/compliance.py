"""Object-level policy compliance (Defs. 5, 6 and 17).

These checks operate on :class:`~repro.core.policy.Policy` /
:class:`~repro.core.signatures.QuerySignature` objects directly, without the
bit-mask encoding.  The enforcement path uses the masks
(:mod:`repro.core.masks`); this module exists to state the semantics
explicitly and to cross-validate the encodings — the property tests assert
that mask-level and object-level compliance always agree.
"""

from __future__ import annotations

from .policy import Policy, PolicyRule, SpecialRule
from .signatures import ActionSignature, QuerySignature, TableSignature


def action_complies_with_rule(
    signature: ActionSignature, purpose: str, rule: PolicyRule
) -> bool:
    """Def. 5 + the column/purpose conditions of Def. 6, for one rule.

    A signature complies with a rule when the accessed columns are a subset
    of the rule's columns, the query purpose is among the rule's purposes,
    and the action types comply (equal operation dimensions, joint access a
    subset of the allowed set).
    """
    if rule.special is SpecialRule.PASS_ALL:
        return True
    if rule.special is SpecialRule.PASS_NONE:
        return False
    assert rule.action_type is not None
    if not signature.columns <= rule.columns:
        return False
    if purpose not in rule.purposes:
        return False
    return signature.action_type.complies_with(rule.action_type)


def action_complies_with_policy(
    signature: ActionSignature, purpose: str, policy: Policy
) -> bool:
    """Def. 16's object-level counterpart: some rule of the policy complies."""
    return any(
        action_complies_with_rule(signature, purpose, rule)
        for rule in policy.rules
    )


def table_signature_complies(
    table_signature: TableSignature, purpose: str, policy: Policy
) -> bool:
    """Def. 6: every action signature on the table complies with the policy."""
    return all(
        action_complies_with_policy(action, purpose, policy)
        for action in table_signature.actions
    )


def query_complies_with_policy(
    query_signature: QuerySignature, policy: Policy
) -> bool:
    """Def. 17's object-level counterpart, including sub-query signatures.

    The query complies when, in every (sub)query block, every table
    signature whose base table is the policy's table complies.
    """
    table_key = policy.table.lower()
    for block in query_signature.all_signatures():
        for table_signature in block.tables:
            if table_signature.table != table_key:
                continue
            if not table_signature_complies(table_signature, block.purpose, policy):
                return False
    return True
