"""Binary mask encodings (Section 5.3) and compliance checks (Section 5.4).

A :class:`MaskLayout` binds the three ingredients that size a rule mask:

* the ordered attribute list of the table (column mask, Def. 10),
* the purpose set (purpose mask, Def. 9 — alphabetic id order, Example 9),
* the category registry (joint-access bits of the action type mask, Def. 11).

Rule masks are ``Cm + Pm + Am`` (Def. 12), zero-padded to the next byte
boundary — the paper pads its 23-bit rules to 24 bits "to allow the
execution of string manipulation operations", and byte alignment generalizes
that choice to any schema.  Policy masks concatenate rule masks (Def. 13);
action signature masks share the rule layout (Def. 14) so that compliance is
a single bitwise AND per rule (Def. 15): ``asm & rm == asm``.

:func:`complies_with` is the Python port of the paper's ``compliesWith``
PostgreSQL C UDF (Listing 1).
"""

from __future__ import annotations

from ..engine.types import BitString
from ..errors import MaskError, PolicyError
from .actions import ActionType, Aggregation, Indirection, JointAccess, Multiplicity
from .categories import CategoryRegistry, DEFAULT_CATEGORIES
from .policy import Policy, PolicyRule, SpecialRule
from .purposes import PurposeSet

#: Number of bits encoding the operation dimensions of an action type mask:
#: ``i d`` (indirection) + ``s m`` (multiplicity) + ``a n`` (aggregation).
OPERATION_BITS = 6


def action_mask_length(categories: CategoryRegistry | int) -> int:
    """Length of an action type mask for a category registry (paper: 10)."""
    count = categories if isinstance(categories, int) else len(categories)
    return OPERATION_BITS + count


def complies_with(asm: BitString, pm: BitString) -> bool:
    """Listing 1: does an action-signature mask comply with a policy mask?

    ``pm`` is partitioned into rule masks of ``len(asm)`` bits; the signature
    complies when at least one rule mask ``rm`` satisfies
    ``asm & rm == asm``.  A policy mask whose length is not a multiple of the
    signature-mask length cannot match (the paper returns false).
    """
    rule_length = len(asm)
    if rule_length == 0 or len(pm) % rule_length != 0:
        return False
    rule_count = len(pm) // rule_length
    for index in range(rule_count):
        rule_mask = pm.substring(index * rule_length, rule_length)
        if (asm & rule_mask) == asm:
            return True
    return False


class MaskLayout:
    """Mask encoder/decoder for one table under a purpose set and categories."""

    def __init__(
        self,
        table: str,
        columns,
        purposes: PurposeSet,
        categories: CategoryRegistry | None = None,
    ):
        self.table = table
        self.columns: tuple[str, ...] = tuple(c.lower() for c in columns)
        if len(set(self.columns)) != len(self.columns):
            raise MaskError(f"duplicate columns in layout for {table!r}")
        self.purposes = purposes
        self.categories = categories or CategoryRegistry(DEFAULT_CATEGORIES)
        self._column_index = {name: i for i, name in enumerate(self.columns)}
        self._purpose_ids = purposes.ids()
        self._purpose_index = {pid: i for i, pid in enumerate(self._purpose_ids)}

    # -- sizes -------------------------------------------------------------------

    @property
    def purpose_ids(self) -> tuple[str, ...]:
        """The purpose ids this layout encodes, snapshotted at construction.

        The :class:`PurposeSet` passed in is a live object; masks produced by
        this layout always follow this snapshot, which is what the policy
        manager compares when deciding whether masks need migration.
        """
        return self._purpose_ids

    @property
    def action_length(self) -> int:
        """Bits in an action type mask (Def. 11's fixed size *k*)."""
        return action_mask_length(self.categories)

    @property
    def payload_length(self) -> int:
        """Unpadded rule-mask length: |A_T| + |Ps| + k."""
        return len(self.columns) + len(self._purpose_ids) + self.action_length

    @property
    def rule_length(self) -> int:
        """Padded rule-mask length (next multiple of 8)."""
        payload = self.payload_length
        return payload + (-payload) % 8

    @property
    def padding(self) -> int:
        """Number of padding bits appended to each rule/signature mask."""
        return self.rule_length - self.payload_length

    # -- component encoders (Defs. 9-11) -----------------------------------------

    def purpose_mask(self, purpose_ids) -> BitString:
        """Def. 9: one bit per purpose of *Ps*, in mask (alphabetic) order."""
        positions = []
        for purpose_id in purpose_ids:
            try:
                positions.append(self._purpose_index[purpose_id])
            except KeyError:
                raise PolicyError(
                    f"purpose {purpose_id!r} is not in the purpose set"
                ) from None
        return BitString.from_positions(positions, len(self._purpose_ids))

    def column_mask(self, column_names) -> BitString:
        """Def. 10: one bit per attribute of the table, in schema order."""
        positions = []
        for name in column_names:
            try:
                positions.append(self._column_index[name.lower()])
            except KeyError:
                raise PolicyError(
                    f"column {name!r} is not an attribute of {self.table!r}"
                ) from None
        return BitString.from_positions(positions, len(self.columns))

    def action_type_mask(self, action: ActionType) -> BitString:
        """Def. 11: format ``i d s m a n`` + one joint-access bit per category.

        ⊥ multiplicity/aggregation (indirect accesses) encode as ``00``.
        """
        bits = [
            1 if action.indirection is Indirection.INDIRECT else 0,
            1 if action.indirection is Indirection.DIRECT else 0,
            1 if action.multiplicity is Multiplicity.SINGLE else 0,
            1 if action.multiplicity is Multiplicity.MULTIPLE else 0,
            1 if action.aggregation is Aggregation.AGGREGATION else 0,
            1 if action.aggregation is Aggregation.NO_AGGREGATION else 0,
        ]
        for category in self.categories:
            bits.append(1 if category.code in action.joint_access.allowed else 0)
        return BitString.from_bits("".join(str(b) for b in bits))

    # -- rule / policy masks (Defs. 12-13) ------------------------------------------

    def rule_mask(self, rule: PolicyRule) -> BitString:
        """Def. 12: ``Cm + Pm + Am`` plus padding; special rules are 0s/1s."""
        if rule.special is SpecialRule.PASS_ALL:
            return BitString.ones(self.rule_length)
        if rule.special is SpecialRule.PASS_NONE:
            return BitString.zeros(self.rule_length)
        assert rule.action_type is not None  # enforced by PolicyRule
        mask = (
            self.column_mask(rule.columns)
            + self.purpose_mask(rule.purposes)
            + self.action_type_mask(rule.action_type)
        )
        return mask + BitString.zeros(self.padding)

    def policy_mask(self, policy: Policy) -> BitString:
        """Def. 13: concatenation of the policy's rule masks."""
        if policy.table.lower() != self.table.lower():
            raise MaskError(
                f"policy targets {policy.table!r} but layout is for {self.table!r}"
            )
        mask = BitString.zeros(0)
        for rule in policy.rules:
            mask = mask + self.rule_mask(rule)
        return mask

    # -- signature masks (Def. 14) ------------------------------------------------------

    def signature_mask(
        self, column_names, action: ActionType, purpose_id: str
    ) -> BitString:
        """Def. 14: ``Cm + Pm + Am`` for an action signature + query purpose."""
        mask = (
            self.column_mask(column_names)
            + self.purpose_mask([purpose_id])
            + self.action_type_mask(action)
        )
        return mask + BitString.zeros(self.padding)

    # -- decoding (used by tests, tooling and the policy manager) ----------------------

    def split_policy_mask(self, policy_mask: BitString) -> list[BitString]:
        """Partition a policy mask into its rule masks."""
        if len(policy_mask) % self.rule_length != 0:
            raise MaskError(
                f"policy mask length {len(policy_mask)} is not a multiple of "
                f"the rule length {self.rule_length}"
            )
        return [
            policy_mask.substring(i * self.rule_length, self.rule_length)
            for i in range(len(policy_mask) // self.rule_length)
        ]

    def decode_rule_mask(self, rule_mask: BitString) -> dict:
        """Decode a rule mask into its components (for inspection/migration).

        Returns a dict with keys ``columns``, ``purposes``, ``action_bits``
        and ``joint_access`` — the raw sets, without reconstructing a full
        :class:`PolicyRule` (pass-all/pass-none masks decode to the union of
        everything / nothing, which is their meaning).
        """
        if len(rule_mask) != self.rule_length:
            raise MaskError(
                f"rule mask has {len(rule_mask)} bits, expected {self.rule_length}"
            )
        offset = 0
        column_bits = rule_mask.substring(offset, len(self.columns))
        offset += len(self.columns)
        purpose_bits = rule_mask.substring(offset, len(self._purpose_ids))
        offset += len(self._purpose_ids)
        action_bits = rule_mask.substring(offset, self.action_length)
        joint = action_bits.substring(OPERATION_BITS, len(self.categories))
        return {
            "columns": {self.columns[i] for i in column_bits.positions()},
            "purposes": {self._purpose_ids[i] for i in purpose_bits.positions()},
            "action_bits": action_bits,
            "joint_access": JointAccess(
                frozenset(
                    self.categories.categories[i].code for i in joint.positions()
                )
            ),
        }
