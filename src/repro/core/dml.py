"""Enforcement for data-modification statements.

The paper's model regulates SELECT queries, but UPDATE/DELETE *read* data
too: their WHERE predicates filter on column values, and UPDATE's SET
expressions derive new values from stored ones.  An attacker who cannot
``SELECT salary`` could otherwise learn it through
``UPDATE t SET flag=1 WHERE salary > x``.  This module closes that channel
by applying the same signature-derivation + rewriting machinery to the
read-side of DML:

* ``UPDATE t SET c = e WHERE p``  — references in ``p`` are indirect
  accesses, references in each ``e`` are direct accesses (they flow into
  stored values); the statement's WHERE is conjoined with the corresponding
  ``complieswith`` checks, so only policy-compliant tuples are updated
  (PostgreSQL row-level security's USING semantics).
* ``DELETE FROM t WHERE p`` — references in ``p`` are indirect accesses.
* ``INSERT ... SELECT`` — the source SELECT is rewritten exactly like a
  query; plain ``INSERT ... VALUES`` reads nothing and passes through.

The derivation reuses the SELECT pipeline by building a *synthetic* SELECT
whose select list holds the SET expressions and whose WHERE is the
statement's predicate (DESIGN.md §6).
"""

from __future__ import annotations

import dataclasses

from ..errors import AccessControlError
from ..sql import ast
from .actions import ActionType, JointAccess
from .admin import AccessControlManager, COMPLIES_WITH, POLICY_COLUMN
from .rewriter import rewrite_query
from .signatures import QuerySignature, SignatureDeriver


def synthetic_select(statement: ast.Update | ast.Delete) -> ast.Select:
    """The SELECT whose reads are equivalent to the DML statement's."""
    if isinstance(statement, ast.Update):
        items = tuple(
            ast.SelectItem(expression) for _, expression in statement.assignments
        )
        if not items:
            items = (ast.SelectItem(ast.Literal(1)),)
    else:
        items = (ast.SelectItem(ast.Literal(1)),)
    return ast.Select(
        items=items,
        sources=(ast.TableName(statement.table),),
        where=statement.where,
    )


def derive_dml_signature(
    statement: ast.Update | ast.Delete,
    purpose: str,
    deriver: SignatureDeriver,
) -> QuerySignature:
    """Signature of the statement's read-side (via the synthetic SELECT)."""
    return deriver.derive(synthetic_select(statement), purpose)


def _touch_conjunct(
    table: str, purpose: str, admin: AccessControlManager
) -> ast.Expression:
    """The *touch* check appended to every UPDATE/DELETE.

    Even a statement that reads nothing (``UPDATE t SET c = 1``) modifies
    specific tuples; it may only touch tuples whose policy grants the
    statement's purpose for *some* indirect access.  Encoded as an action
    signature with an empty column set — ⟨∅, ⟨i, ⊥, ⊥, ∅⟩⟩ — whose mask sets
    only the purpose and indirection bits, so any indirect grant for the
    purpose (or a pass-all rule) satisfies it while a pass-none policy or a
    NULL policy column blocks the write.
    """
    layout = admin.layout(table)
    mask = layout.signature_mask(
        (), ActionType.indirect(JointAccess.none()), purpose
    )
    return ast.FunctionCall(
        COMPLIES_WITH,
        (
            ast.BitStringLiteral(mask.bits()),
            ast.ColumnRef(POLICY_COLUMN, table=table),
        ),
    )


def _forbid_policy_column_writes(columns, table: str) -> None:
    if any(name.lower() == POLICY_COLUMN for name in columns):
        raise AccessControlError(
            f"the {POLICY_COLUMN!r} column of {table!r} can only be written "
            "through the administration API"
        )


def rewrite_update(
    statement: ast.Update,
    purpose: str,
    deriver: SignatureDeriver,
    admin: AccessControlManager,
) -> ast.Update:
    """Conjoin compliance + touch checks onto an UPDATE's WHERE clause."""
    _forbid_policy_column_writes(
        (name for name, _ in statement.assignments), statement.table
    )
    synthetic = synthetic_select(statement)
    signature = deriver.derive(synthetic, purpose)
    rewritten_select = rewrite_query(synthetic, signature, admin)
    where = ast.conjoin(
        rewritten_select.where, _touch_conjunct(statement.table, purpose, admin)
    )
    return dataclasses.replace(statement, where=where)


def rewrite_delete(
    statement: ast.Delete,
    purpose: str,
    deriver: SignatureDeriver,
    admin: AccessControlManager,
) -> ast.Delete:
    """Conjoin compliance + touch checks onto a DELETE's WHERE clause."""
    synthetic = synthetic_select(statement)
    signature = deriver.derive(synthetic, purpose)
    rewritten_select = rewrite_query(synthetic, signature, admin)
    where = ast.conjoin(
        rewritten_select.where, _touch_conjunct(statement.table, purpose, admin)
    )
    return dataclasses.replace(statement, where=where)


def rewrite_insert(
    statement: ast.Insert,
    purpose: str,
    deriver: SignatureDeriver,
    admin: AccessControlManager,
) -> ast.Insert:
    """Rewrite the source SELECT of ``INSERT ... SELECT``; VALUES pass.

    An INSERT without an explicit column list targets the table's *logical*
    columns — the hidden ``policy`` column stays NULL (the new tuple is
    invisible until an administrator or the owner attaches a policy, §5.3).
    """
    _forbid_policy_column_writes(statement.columns, statement.table)
    columns = statement.columns
    if not columns and admin.has_table(statement.table):
        columns = admin.table_columns(statement.table)
    rewritten_select = statement.select
    if rewritten_select is not None:
        signature = deriver.derive(rewritten_select, purpose)
        rewritten_select = rewrite_query(rewritten_select, signature, admin)
    return dataclasses.replace(
        statement, columns=columns, select=rewritten_select
    )


def rewrite_statement(
    statement: ast.Statement,
    purpose: str,
    deriver: SignatureDeriver,
    admin: AccessControlManager,
) -> ast.Statement:
    """Dispatch to the per-statement rewriters (SELECT handled upstream)."""
    if isinstance(statement, ast.Update):
        return rewrite_update(statement, purpose, deriver, admin)
    if isinstance(statement, ast.Delete):
        return rewrite_delete(statement, purpose, deriver, admin)
    if isinstance(statement, ast.Insert):
        return rewrite_insert(statement, purpose, deriver, admin)
    return statement
