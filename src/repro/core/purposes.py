"""Purposes and purpose sets (Sections 4.2 and 5.1).

A :class:`PurposeSet` is the ordered collection *Ps* of the purposes defined
for an application scenario.  The ordering criterion *Oc* of Def. 9 — used
to assign mask-bit positions — defaults to the paper's choice in Example 9:
alphabetic order of purpose identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PolicyError


@dataclass(frozen=True)
class Purpose:
    """A purpose: identifier (``p1``) and human-readable description."""

    id: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise PolicyError("purpose id must be non-empty")

    def __str__(self) -> str:
        return self.id


class PurposeSet:
    """The scenario's purpose set *Ps*, ordered by the criterion *Oc*.

    Purposes keep insertion for registration but expose a deterministic
    *mask order* (alphabetic by id, per Example 9) used by every purpose
    mask.  Adding or removing a purpose therefore changes mask positions —
    which is exactly the migration problem the Policy Management module
    handles (see :mod:`repro.core.policy_manager`).
    """

    def __init__(self, purposes: list[Purpose] | tuple[Purpose, ...] = ()):
        self._by_id: dict[str, Purpose] = {}
        for purpose in purposes:
            self.add(purpose)

    def add(self, purpose: Purpose) -> None:
        """Register a purpose; duplicate ids raise :class:`PolicyError`."""
        if purpose.id in self._by_id:
            raise PolicyError(f"duplicate purpose id {purpose.id!r}")
        self._by_id[purpose.id] = purpose

    def remove(self, purpose_id: str) -> Purpose:
        """Remove and return a purpose by id."""
        try:
            return self._by_id.pop(purpose_id)
        except KeyError:
            raise PolicyError(f"unknown purpose id {purpose_id!r}") from None

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, purpose: "Purpose | str") -> bool:
        purpose_id = purpose.id if isinstance(purpose, Purpose) else purpose
        return purpose_id in self._by_id

    def get(self, purpose_id: str) -> Purpose:
        """Look up a purpose by id."""
        try:
            return self._by_id[purpose_id]
        except KeyError:
            raise PolicyError(f"unknown purpose id {purpose_id!r}") from None

    def ordered(self) -> tuple[Purpose, ...]:
        """Purposes in mask order (alphabetic by id — the paper's *Oc*)."""
        return tuple(sorted(self._by_id.values(), key=lambda p: p.id))

    def __iter__(self):
        return iter(self.ordered())

    def index(self, purpose: "Purpose | str") -> int:
        """Mask-bit position of a purpose."""
        purpose_id = purpose.id if isinstance(purpose, Purpose) else purpose
        for position, candidate in enumerate(self.ordered()):
            if candidate.id == purpose_id:
                return position
        raise PolicyError(f"unknown purpose id {purpose_id!r}")

    def ids(self) -> tuple[str, ...]:
        """Purpose ids in mask order."""
        return tuple(purpose.id for purpose in self.ordered())


def default_purpose_set() -> PurposeSet:
    """The running example's purpose set (Section 4.2)."""
    return PurposeSet(
        [
            Purpose("p1", "treatment"),
            Purpose("p2", "payment"),
            Purpose("p3", "healthcare-operations"),
            Purpose("p4", "law-enforcement"),
            Purpose("p5", "reporting"),
            Purpose("p6", "research"),
            Purpose("p7", "marketing"),
            Purpose("p8", "sale"),
        ]
    )
