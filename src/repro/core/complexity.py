"""Static complexity analysis (Section 5.6, Equation 1).

``cub(q)`` estimates the upper bound on the number of policy compliance
checks a rewritten query performs: for each base table accessed by a block,
the number of its tuples (n_i) times the number of action signatures derived
for it (j_i), summed recursively over the query's sub-queries.

The measured number of checks (Figure 6) is bounded by ``cub`` and usually
far below it: filters, joins and short-circuit evaluation cut the count —
``benchmarks/test_cub_bounds.py`` verifies both facts experimentally.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import Database
from ..sql import ast, parse_select
from .query_model import query_id as compute_query_id
from .signatures import QuerySignature


@dataclass(frozen=True)
class ComplexityEstimate:
    """The upper bound plus its per-term breakdown."""

    upper_bound: int
    terms: tuple[tuple[str, int, int], ...]
    """One ``(table, n_i, j_i)`` term per base table scanned by any block."""


def complexity_upper_bound(
    query: "str | ast.Select",
    signature: QuerySignature,
    database: Database,
) -> ComplexityEstimate:
    """Equation 1: Σ n_i · j_i for this block + Σ cub(sub-queries).

    Only table signatures whose binding is a *base-table scan* in the
    block's FROM clause contribute (derived-table bindings carry no policy
    column; their base tables are counted inside the sub-query block), which
    mirrors exactly what the rewriter enforces.
    """
    select = parse_select(query) if isinstance(query, str) else query
    terms: list[tuple[str, int, int]] = []
    _accumulate(select, signature, database, terms)
    total = sum(n * j for _, n, j in terms)
    return ComplexityEstimate(total, tuple(terms))


def _accumulate(
    select: ast.Select,
    signature: QuerySignature,
    database: Database,
    terms: list[tuple[str, int, int]],
) -> None:
    base_bindings = {
        source.binding.lower()
        for source in ast.select_sources(select)
        if isinstance(source, ast.TableName)
    }
    for table_signature in signature.tables:
        if table_signature.binding not in base_bindings:
            continue
        tuple_count = len(database.table(table_signature.table))
        terms.append(
            (table_signature.table, tuple_count, len(table_signature.actions))
        )

    for source in ast.select_sources(select):
        if isinstance(source, ast.SubquerySource):
            sub_signature = signature.subquery_signature(
                compute_query_id(source.select)
            )
            _accumulate(source.select, sub_signature, database, terms)
    for expression in _clause_expressions(select):
        for nested in ast.iter_subqueries(expression):
            sub_signature = signature.subquery_signature(compute_query_id(nested))
            _accumulate(nested, sub_signature, database, terms)


def _clause_expressions(select: ast.Select) -> list[ast.Expression]:
    expressions: list[ast.Expression] = [item.expression for item in select.items]
    if select.where is not None:
        expressions.append(select.where)
    expressions.extend(select.group_by)
    if select.having is not None:
        expressions.append(select.having)
    for order_item in select.order_by:
        expressions.append(order_item.expression)
    expressions.extend(ast.join_conditions(select))
    return expressions
