"""Administrative authorization (future-work item 4, first half).

Section 8 plans "mechanisms to regulate the specification of data categories
and policies".  :class:`AdministrationGuard` wraps the management modules
behind an acting-user check: every mutating administrative operation must be
performed by a registered administrator.

The guard is deliberately a wrapper, not a change to the admin API: code
holding the raw :class:`AccessControlManager` is trusted (it models the DBA
console); code holding only the guard is subject to the check.
"""

from __future__ import annotations

from ..errors import AccessControlError
from .admin import AccessControlManager
from .categories import DataCategory
from .policy import Policy
from .policy_manager import PolicyManager
from .purposes import Purpose


class AdministrationError(AccessControlError):
    """Raised when a non-administrator attempts an administrative action."""

    def __init__(self, user_id: str, action: str):
        super().__init__(
            f"user {user_id!r} is not an administrator and may not {action}"
        )
        self.user_id = user_id
        self.action = action


class AdministrationGuard:
    """User-checked façade over the administration and policy modules."""

    def __init__(
        self,
        admin: AccessControlManager,
        manager: PolicyManager | None = None,
        administrators=(),
    ):
        self.admin = admin
        self.manager = manager or PolicyManager(admin)
        self._administrators: set[str] = set(administrators)

    # -- administrator registry -------------------------------------------------

    @property
    def administrators(self) -> frozenset[str]:
        """The current administrator set."""
        return frozenset(self._administrators)

    def add_administrator(self, user_id: str, acting_user: str | None = None) -> None:
        """Register an administrator.

        Bootstrapping: when the set is empty anyone may add the first
        administrator; afterwards only administrators may.
        """
        if self._administrators and acting_user not in self._administrators:
            raise AdministrationError(
                str(acting_user), "register administrators"
            )
        self._administrators.add(user_id)

    def remove_administrator(self, user_id: str, acting_user: str) -> None:
        """Remove an administrator (administrators only; no self-lockout)."""
        self._check(acting_user, "remove administrators")
        if self._administrators == {user_id}:
            raise AdministrationError(
                acting_user, "remove the last administrator"
            )
        self._administrators.discard(user_id)

    def _check(self, acting_user: str, action: str) -> None:
        if acting_user not in self._administrators:
            raise AdministrationError(acting_user, action)

    # -- guarded operations ------------------------------------------------------

    def define_purpose(self, purpose: Purpose, acting_user: str) -> None:
        """Guarded :meth:`AccessControlManager.define_purpose`."""
        self._check(acting_user, "define purposes")
        self.admin.define_purpose(purpose)

    def remove_purpose(self, purpose_id: str, acting_user: str) -> Purpose:
        """Guarded :meth:`AccessControlManager.remove_purpose`."""
        self._check(acting_user, "remove purposes")
        return self.admin.remove_purpose(purpose_id)

    def categorize(
        self, table: str, column: str, category: DataCategory, acting_user: str
    ) -> None:
        """Guarded :meth:`AccessControlManager.categorize`."""
        self._check(acting_user, "categorize data")
        self.admin.categorize(table, column, category)

    def grant_purpose(self, user_id: str, purpose_id: str, acting_user: str) -> None:
        """Guarded :meth:`AccessControlManager.grant_purpose`."""
        self._check(acting_user, "grant purpose authorizations")
        self.admin.grant_purpose(user_id, purpose_id)

    def revoke_purpose(self, user_id: str, purpose_id: str, acting_user: str) -> int:
        """Guarded :meth:`AccessControlManager.revoke_purpose`."""
        self._check(acting_user, "revoke purpose authorizations")
        return self.admin.revoke_purpose(user_id, purpose_id)

    def add_policy(self, policy: Policy, acting_user: str) -> int:
        """Guarded :meth:`PolicyManager.add_policy`.

        Data subjects may always manage policies on their *own* tuples in
        the paper's scenario; modelling ownership is application-specific,
        so the guard restricts whole-table and arbitrary-selector policies
        to administrators and leaves subject-level checks to the caller.
        """
        self._check(acting_user, "install policies")
        return self.manager.add_policy(policy)

    def remove_policies(self, table: str, acting_user: str) -> int:
        """Guarded :meth:`PolicyManager.remove_policies`."""
        self._check(acting_user, "remove policies")
        return self.manager.remove_policies(table)
