"""Action, table and query signatures (Defs. 3-4) — phase 3 of derivation.

Phase 3 groups the completed info tuples of a block by FROM-clause binding
and by action type: occurrences sharing the same ⟨Ia, Ms, Ag, Ja⟩ merge
their columns into one :class:`ActionSignature` (Figure 3 keeps ``user_id``'s
direct and indirect occurrences separate because their action types differ).

Subqueries are analyzed recursively: every nested SELECT (derived tables,
IN/EXISTS/scalar subqueries) gets its own :class:`QuerySignature`, collected
in *Qss* and indexed by query id — which is how Listing 2's ``rwSubQueries``
finds the signature of each sub-query source it rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SignatureError
from ..sql import ast, parse_select
from .actions import ActionType
from .info_tuples import (
    BlockResolver,
    Categorizer,
    InfoTuple,
    SchemaProvider,
    derive_info_tuples,
)
from .query_model import QueryModel, query_id as compute_query_id


@dataclass(frozen=True)
class ActionSignature:
    """Def. 3: a set of columns plus the action type performed on them."""

    columns: frozenset[str]
    action_type: ActionType


@dataclass(frozen=True)
class TableSignature:
    """Def. 4: the action signatures referring to one accessed table.

    ``binding`` is the FROM-clause name (alias or table name) used by the
    rewriter to address the right ``<binding>.policy`` column; ``table`` is
    the underlying base table whose policies apply.
    """

    binding: str
    table: str
    actions: tuple[ActionSignature, ...]


@dataclass(frozen=True)
class QuerySignature:
    """The query signature *Qs* = ⟨Ap, Tss, Qss⟩ of Def. 4."""

    query_id: str
    purpose: str
    tables: tuple[TableSignature, ...]
    subqueries: tuple["QuerySignature", ...] = field(default_factory=tuple)

    def table_signature(self, binding: str) -> TableSignature | None:
        """The table signature for a FROM-clause binding, if any."""
        key = binding.lower()
        for signature in self.tables:
            if signature.binding == key:
                return signature
        return None

    def subquery_signature(self, sub_id: str) -> "QuerySignature":
        """Look up a nested signature by query id (Listing 2's select)."""
        for signature in self.subqueries:
            if signature.query_id == sub_id:
                return signature
        raise SignatureError(f"no sub-query signature with id {sub_id!r}")

    def all_signatures(self) -> list["QuerySignature"]:
        """This signature plus all nested ones, depth-first."""
        result = [self]
        for subquery in self.subqueries:
            result.extend(subquery.all_signatures())
        return result


class SignatureDeriver:
    """Derives query signatures from SQL (the three-phase process, §5.2)."""

    def __init__(self, schema: SchemaProvider, categorizer: Categorizer):
        self.schema = schema
        self.categorizer = categorizer

    def derive(self, query: "str | ast.Select | QueryModel", purpose: str) -> QuerySignature:
        """Derive the full signature tree of a query for an access purpose."""
        if isinstance(query, str):
            select = parse_select(query)
        elif isinstance(query, QueryModel):
            select = query.select_ast
        else:
            select = query
        return self._derive_block(select, purpose, parent=None)

    def _derive_block(
        self,
        select: ast.Select,
        purpose: str,
        parent: BlockResolver | None,
    ) -> QuerySignature:
        block_id = compute_query_id(select)
        tuples, resolver = derive_info_tuples(
            select, block_id, purpose, self.schema, self.categorizer, parent
        )
        tables = _group_into_table_signatures(tuples)

        subqueries: list[QuerySignature] = []
        for source in ast.select_sources(select):
            if isinstance(source, ast.SubquerySource):
                subqueries.append(
                    self._derive_block(source.select, purpose, parent=None)
                )
        for expression in _clause_expressions(select):
            for nested in ast.iter_subqueries(expression):
                subqueries.append(
                    self._derive_block(nested, purpose, parent=resolver)
                )

        return QuerySignature(
            query_id=block_id,
            purpose=purpose,
            tables=tables,
            subqueries=tuple(subqueries),
        )


def _clause_expressions(select: ast.Select) -> list[ast.Expression]:
    expressions: list[ast.Expression] = [item.expression for item in select.items]
    if select.where is not None:
        expressions.append(select.where)
    expressions.extend(select.group_by)
    if select.having is not None:
        expressions.append(select.having)
    for order_item in select.order_by:
        expressions.append(order_item.expression)
    expressions.extend(ast.join_conditions(select))
    return expressions


def _group_into_table_signatures(tuples: list[InfoTuple]) -> tuple[TableSignature, ...]:
    """Phase 3 grouping: binding → action type → merged column sets."""
    by_binding: dict[str, dict] = {}
    binding_order: list[str] = []
    for info in tuples:
        if info.binding not in by_binding:
            by_binding[info.binding] = {"table": info.source, "actions": {}}
            binding_order.append(info.binding)
        action_type = ActionType(
            info.indirection, info.multiplicity, info.aggregation, info.joint_access
        )
        actions = by_binding[info.binding]["actions"]
        if action_type not in actions:
            actions[action_type] = set()
        actions[action_type].add(info.column)

    signatures = []
    for binding in binding_order:
        entry = by_binding[binding]
        actions = tuple(
            ActionSignature(frozenset(columns), action_type)
            for action_type, columns in entry["actions"].items()
        )
        signatures.append(TableSignature(binding, entry["table"], actions))
    return tuple(signatures)
