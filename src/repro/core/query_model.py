"""Query models (Def. 7).

A :class:`QueryModel` is the abstract representation ⟨S, F, W, G, H⟩ of a
SELECT statement that the derivation process of Section 5.2 operates on.  We
derive it from the parsed AST rather than raw text (our parser produces the
clause structure directly), and attach the query identifier *Qi* — per
footnote 12, "the hash of the query string".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..sql import ast, parse_select
from ..sql.printer import print_select


def query_id(select: ast.Select | str) -> str:
    """The identifier *Qi* of a query: an 8-hex-digit hash of its SQL text.

    Hashing the *printed* form makes the id stable across formatting
    variations of the same statement.
    """
    text = select if isinstance(select, str) else print_select(select)
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:8]


@dataclass(frozen=True)
class QueryModel:
    """Def. 7's ⟨S, F, W, G, H⟩ plus the query id and the underlying AST.

    Attributes:
        id: The query identifier *Qi*.
        select_items: *S* — the select-list expressions.
        sources: *F* — the FROM-clause table expressions.
        where: *W* — the WHERE predicate, or None (the paper's ⊥).
        group_by: *G* — the GROUP BY expressions.
        having: *H* — the HAVING predicate, or None.
        select_ast: The full AST node, kept for rewriting and execution.
    """

    id: str
    select_items: tuple[ast.SelectItem, ...]
    sources: tuple[ast.TableSource, ...]
    where: ast.Expression | None
    group_by: tuple[ast.Expression, ...]
    having: ast.Expression | None
    select_ast: ast.Select

    @classmethod
    def from_select(cls, select: ast.Select) -> "QueryModel":
        """Build the model of a parsed SELECT."""
        return cls(
            id=query_id(select),
            select_items=select.items,
            sources=select.sources,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            select_ast=select,
        )

    @classmethod
    def from_sql(cls, sql: str) -> "QueryModel":
        """Parse SQL text and build its model."""
        return cls.from_select(parse_select(sql))

    def subquery_models(self) -> list["QueryModel"]:
        """Models of the directly nested subqueries, clause by clause.

        Covers subqueries in F (derived tables), W, H and S — the components
        Listing 2's ``rwSubQueries`` walks.
        """
        models = []
        for source in ast.select_sources(self.select_ast):
            if isinstance(source, ast.SubquerySource):
                models.append(QueryModel.from_select(source.select))
        expressions: list[ast.Expression] = [
            item.expression for item in self.select_items
        ]
        if self.where is not None:
            expressions.append(self.where)
        if self.having is not None:
            expressions.append(self.having)
        expressions.extend(self.group_by)
        expressions.extend(ast.join_conditions(self.select_ast))
        for expression in expressions:
            for subquery in ast.iter_subqueries(expression):
                models.append(QueryModel.from_select(subquery))
        return models

    def to_sql(self) -> str:
        """The SQL text of the modeled query."""
        return print_select(self.select_ast)
