"""The paper's contribution: action-aware purpose-based access control.

Public surface:

* model — :class:`DataCategory`, :class:`Purpose`, :class:`ActionType`,
  :class:`PolicyRule`, :class:`Policy` (Section 4);
* encoding — :class:`MaskLayout`, :func:`complies_with` (Section 5.3-5.4);
* derivation — :class:`QueryModel`, :class:`SignatureDeriver`,
  :class:`QuerySignature` (Section 5.2);
* enforcement — :func:`rewrite_query`, :class:`EnforcementMonitor`
  (Section 5.5), :class:`AccessControlManager` and :class:`PolicyManager`
  (Section 2);
* analysis — :func:`complexity_upper_bound` (Section 5.6).
"""

from .actions import ActionType, Aggregation, Indirection, JointAccess, Multiplicity
from .admin import AccessControlManager, COMPLIES_WITH, META_TABLES, POLICY_COLUMN
from .categories import (
    CategoryRegistry,
    DataCategory,
    DEFAULT_CATEGORIES,
    GENERIC,
    IDENTIFIER,
    QUASI_IDENTIFIER,
    SENSITIVE,
)
from .compliance import (
    action_complies_with_policy,
    action_complies_with_rule,
    query_complies_with_policy,
    table_signature_complies,
)
from .complexity import ComplexityEstimate, complexity_upper_bound
from .masks import MaskLayout, action_mask_length, complies_with
from .monitor import (
    CompiledEnforcedPlan,
    EnforcementMonitor,
    EnforcementReport,
    PreparedEnforcedQuery,
)
from .policy import Policy, PolicyRule, SpecialRule
from .policy_manager import PolicyManager
from .purposes import Purpose, PurposeSet, default_purpose_set
from .query_model import QueryModel, query_id
from .rewriter import rewrite_query
from .roles import RoleManager, ROLE_TABLES
from .guard import AdministrationError, AdministrationGuard
from .audit import AuditLog, AuditRecord
from .session import Session
from .signatures import (
    ActionSignature,
    QuerySignature,
    SignatureDeriver,
    TableSignature,
)

__all__ = [
    "ActionType", "Aggregation", "Indirection", "JointAccess", "Multiplicity",
    "AccessControlManager", "COMPLIES_WITH", "META_TABLES", "POLICY_COLUMN",
    "CategoryRegistry", "DataCategory", "DEFAULT_CATEGORIES",
    "GENERIC", "IDENTIFIER", "QUASI_IDENTIFIER", "SENSITIVE",
    "action_complies_with_policy", "action_complies_with_rule",
    "query_complies_with_policy", "table_signature_complies",
    "ComplexityEstimate", "complexity_upper_bound",
    "MaskLayout", "action_mask_length", "complies_with",
    "CompiledEnforcedPlan", "EnforcementMonitor", "EnforcementReport",
    "PreparedEnforcedQuery",
    "Policy", "PolicyRule", "SpecialRule", "PolicyManager",
    "Purpose", "PurposeSet", "default_purpose_set",
    "QueryModel", "query_id", "rewrite_query",
    "RoleManager", "ROLE_TABLES",
    "AdministrationError", "AdministrationGuard",
    "AuditLog", "AuditRecord", "Session",
    "ActionSignature", "QuerySignature", "SignatureDeriver", "TableSignature",
]
