"""Role-based purpose authorization (the paper's future-work item 3).

Section 8 lists "extend the framework integrating support for role based
access control" as planned work; the reference purpose-based model of Byun
and Li [3] already combines purposes with roles.  This module implements
that combination on top of the existing Pa mechanism:

* table ``ro(role)`` — the role catalog;
* table ``ur(ui, role)`` — user → role assignments;
* table ``rp(role, pi)`` — role → purpose authorizations, with a one-level
  role hierarchy (``parent``) whose authorizations are inherited.

A user is authorized for a purpose when either the direct Pa grant exists
(:meth:`AccessControlManager.is_authorized`) or one of their roles —
directly or through its parent chain — is authorized for it.
"""

from __future__ import annotations

from ..engine import Column, SqlType, TableSchema
from ..errors import ConfigurationError, PolicyError
from .admin import AccessControlManager

#: Meta-tables added by the role extension.
ROLE_TABLES = frozenset({"ro", "ur", "rp"})


class RoleManager:
    """Manages roles, user assignments and role-purpose authorizations."""

    def __init__(self, admin: AccessControlManager):
        self.admin = admin
        self._parents: dict[str, str | None] = {}
        self._installed = False

    # -- installation ------------------------------------------------------------

    def install(self) -> None:
        """Create the role meta-tables (idempotent-hostile, like configure)."""
        self.admin.require_configured()
        database = self.admin.database
        if self._installed or database.has_table("ro"):
            raise ConfigurationError("role support is already installed")
        database.create_table(
            TableSchema(
                "ro",
                [
                    Column("role", SqlType.TEXT, primary_key=True),
                    Column("parent", SqlType.TEXT),
                ],
            )
        )
        database.create_table(
            TableSchema(
                "ur",
                [Column("ui", SqlType.TEXT), Column("role", SqlType.TEXT)],
            )
        )
        database.create_table(
            TableSchema(
                "rp",
                [Column("role", SqlType.TEXT), Column("pi", SqlType.TEXT)],
            )
        )
        self._installed = True

    def _require_installed(self) -> None:
        if not self._installed:
            raise ConfigurationError("role support is not installed; call install()")

    # -- role catalog -------------------------------------------------------------

    def define_role(self, role: str, parent: str | None = None) -> None:
        """Create a role, optionally inheriting a parent's authorizations."""
        self._require_installed()
        if role in self._parents:
            raise PolicyError(f"role {role!r} already exists")
        if parent is not None and parent not in self._parents:
            raise PolicyError(f"unknown parent role {parent!r}")
        self._parents[role] = parent
        self.admin.database.table("ro").insert_row((role, parent))

    def roles(self) -> tuple[str, ...]:
        """All defined roles."""
        return tuple(self._parents)

    def ancestry(self, role: str) -> list[str]:
        """The role and its parents, nearest first."""
        if role not in self._parents:
            raise PolicyError(f"unknown role {role!r}")
        chain = [role]
        current = self._parents[role]
        while current is not None:
            chain.append(current)
            current = self._parents[current]
        return chain

    # -- assignments -------------------------------------------------------------

    def assign_role(self, user_id: str, role: str) -> None:
        """Give a user a role."""
        self._require_installed()
        if role not in self._parents:
            raise PolicyError(f"unknown role {role!r}")
        self.admin.database.table("ur").insert_row((user_id, role))

    def unassign_role(self, user_id: str, role: str) -> int:
        """Remove a user-role assignment; returns removed-row count."""
        self._require_installed()
        return self.admin.database.table("ur").delete_rows(
            lambda row: row[0] == user_id and row[1] == role
        )

    def user_roles(self, user_id: str) -> list[str]:
        """The roles directly assigned to a user."""
        self._require_installed()
        return [
            row[1] for row in self.admin.database.table("ur") if row[0] == user_id
        ]

    # -- role-purpose authorizations -------------------------------------------------

    def grant_purpose_to_role(self, role: str, purpose_id: str) -> None:
        """Authorize every holder of ``role`` for ``purpose_id``."""
        self._require_installed()
        if role not in self._parents:
            raise PolicyError(f"unknown role {role!r}")
        self.admin.purposes.get(purpose_id)  # validates
        self.admin.database.table("rp").insert_row((role, purpose_id))

    def revoke_purpose_from_role(self, role: str, purpose_id: str) -> int:
        """Remove a role-purpose authorization."""
        self._require_installed()
        return self.admin.database.table("rp").delete_rows(
            lambda row: row[0] == role and row[1] == purpose_id
        )

    def role_purposes(self, role: str) -> set[str]:
        """Purposes a role grants, including inherited ones."""
        self._require_installed()
        granted: set[str] = set()
        rp = self.admin.database.table("rp")
        for ancestor in self.ancestry(role):
            granted.update(row[1] for row in rp if row[0] == ancestor)
        return granted

    # -- the combined check consumed by the monitor --------------------------------------

    def is_authorized(self, user_id: str, purpose_id: str) -> bool:
        """Direct Pa grant OR any assigned role (or ancestor) grants it."""
        if self.admin.is_authorized(user_id, purpose_id):
            return True
        if not self._installed:
            return False
        return any(
            purpose_id in self.role_purposes(role)
            for role in self.user_roles(user_id)
        )

    def known_user(self, user_id: str) -> bool:
        """Direct Pa grant OR at least one role assignment in Ur."""
        if self.admin.known_user(user_id):
            return True
        if not self._installed:
            return False
        return bool(self.user_roles(user_id))
