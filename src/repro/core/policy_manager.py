"""Policy Management module (Section 2).

The paper's Policy Management module "automatically handle[s] updates to the
specified policies as a consequence of modifications to the set of purposes
or to the scheme of database tables".  Purpose masks assign one bit per
purpose in alphabetic order and column masks one bit per attribute in schema
order, so adding/removing a purpose or a column silently shifts the meaning
of every stored mask — :class:`PolicyManager` re-encodes them.

Two mechanisms are provided:

* **source-level** — policies registered through :meth:`add_policy` keep
  their :class:`~repro.core.policy.Policy` object, and :meth:`reapply_all`
  simply re-encodes them under the current layouts;
* **mask-level migration** — :meth:`migrate` decodes the raw masks stored in
  each row under a *snapshot* of the previous layout and re-encodes them
  under the current one, preserving pass-all/pass-none rules verbatim.
  This covers masks inserted directly (e.g. rows INSERTed with policies, as
  Section 5.3 allows) for which no source object exists.
"""

from __future__ import annotations

from ..engine.types import BitString
from ..errors import PolicyError
from .admin import AccessControlManager, POLICY_COLUMN
from .masks import MaskLayout
from .policy import Policy


class PolicyManager:
    """Registers policies and keeps stored masks consistent across changes."""

    def __init__(self, admin: AccessControlManager):
        self.admin = admin
        self._policies: list[Policy] = []
        self._snapshots: dict[str, MaskLayout] = {}

    # -- source-level management ----------------------------------------------------

    @property
    def policies(self) -> tuple[Policy, ...]:
        """All registered policies, in registration order."""
        return tuple(self._policies)

    def add_policy(self, policy: Policy) -> int:
        """Register and apply a policy; returns affected-row count."""
        rows = self.admin.apply_policy(policy)
        self._policies.append(policy)
        return rows

    def remove_policies(self, table: str) -> int:
        """Drop registered policies for a table and clear its stored masks."""
        key = table.lower()
        before = len(self._policies)
        self._policies = [p for p in self._policies if p.table.lower() != key]
        self.admin.database.table(key).set_column_value(POLICY_COLUMN, None)
        self.admin.bump_policy_epoch()
        return before - len(self._policies)

    def reapply_all(self) -> int:
        """Re-encode every registered policy under the current layouts.

        Call after purpose-set or schema changes when all policies were
        registered through this manager.  Returns total rows written.
        """
        self.admin.invalidate_layouts()
        written = 0
        for policy in self._policies:
            written += self.admin.apply_policy(policy)
        return written

    # -- mask-level migration -----------------------------------------------------------

    def snapshot_layouts(self) -> None:
        """Record the current per-table layouts as the migration baseline."""
        self._snapshots = {
            table: self.admin.layout(table) for table in self.admin.target_tables()
        }

    def migrate(self) -> int:
        """Re-encode stored masks from the snapshot layout to the current one.

        Pass-all (all ones) and pass-none (all zeros) rule masks are
        preserved as such; ordinary rules are decoded into their column /
        purpose / action components and re-encoded, dropping references to
        columns or purposes that no longer exist.  Returns the number of
        rewritten rows.  Requires :meth:`snapshot_layouts` to have been
        called before the purpose-set/schema change.
        """
        if not self._snapshots:
            raise PolicyError(
                "no layout snapshot: call snapshot_layouts() before changing "
                "purposes or schemas"
            )
        self.admin.invalidate_layouts()
        rewritten = 0
        for table, old_layout in self._snapshots.items():
            if not self.admin.database.has_table(table):
                continue  # table was dropped; nothing to migrate
            new_layout = self.admin.layout(table)
            if (
                old_layout.rule_length == new_layout.rule_length
                and old_layout.columns == new_layout.columns
                and old_layout.purpose_ids == new_layout.purpose_ids
            ):
                continue  # layout unchanged
            rewritten += self._migrate_table(table, old_layout, new_layout)
        self.snapshot_layouts()
        self.admin.bump_policy_epoch()
        return rewritten

    def _migrate_table(
        self, table: str, old_layout: MaskLayout, new_layout: MaskLayout
    ) -> int:
        storage = self.admin.database.table(table)
        policy_index = storage.schema.column_index(POLICY_COLUMN)
        cache: dict[BitString, BitString] = {}
        rewritten = 0
        new_rows = []
        for row in storage.rows:
            mask = row[policy_index]
            if mask is None:
                new_rows.append(row)
                continue
            migrated = cache.get(mask)
            if migrated is None:
                migrated = self._migrate_mask(mask, old_layout, new_layout)
                cache[mask] = migrated
            if migrated != mask:
                row = (*row[:policy_index], migrated, *row[policy_index + 1 :])
                rewritten += 1
            new_rows.append(row)
        storage.rows = new_rows
        return rewritten

    def _migrate_mask(
        self, mask: BitString, old_layout: MaskLayout, new_layout: MaskLayout
    ) -> BitString:
        migrated = BitString.zeros(0)
        for rule_mask in old_layout.split_policy_mask(mask):
            migrated = migrated + self._migrate_rule_mask(
                rule_mask, old_layout, new_layout
            )
        return migrated

    def _migrate_rule_mask(
        self, rule_mask: BitString, old_layout: MaskLayout, new_layout: MaskLayout
    ) -> BitString:
        if rule_mask == BitString.ones(old_layout.rule_length):
            return BitString.ones(new_layout.rule_length)
        if rule_mask == BitString.zeros(old_layout.rule_length):
            return BitString.zeros(new_layout.rule_length)
        decoded = old_layout.decode_rule_mask(rule_mask)
        surviving_columns = [
            column for column in decoded["columns"] if column in new_layout.columns
        ]
        surviving_purposes = [
            purpose
            for purpose in decoded["purposes"]
            if purpose in new_layout.purpose_ids
        ]
        column_mask = new_layout.column_mask(surviving_columns)
        purpose_mask = new_layout.purpose_mask(surviving_purposes)
        action_bits: BitString = decoded["action_bits"]
        operation_bits = action_bits.substring(0, 6)
        joint_bits = BitString.from_positions(
            [
                new_layout.categories.index(new_layout.categories.by_code(code))
                for code in decoded["joint_access"].allowed
                if _category_known(new_layout, code)
            ],
            len(new_layout.categories),
        )
        payload = column_mask + purpose_mask + operation_bits + joint_bits
        return payload + BitString.zeros(new_layout.rule_length - len(payload))


def _category_known(layout: MaskLayout, code: str) -> bool:
    try:
        layout.categories.by_code(code)
    except PolicyError:
        return False
    return True
