"""Data policies and policy rules (Def. 2, Section 6.1).

A :class:`Policy` groups :class:`PolicyRule` objects and applies either to a
single tuple of a table (``tuple_selector`` set) or to every tuple
(``tuple_selector is None``, the paper's ``tp = ⊥``).

The special *pass-all* / *pass-none* rules of Section 6.1 — used to build
*scattered* policies with a chosen selectivity — are represented by the
:class:`SpecialRule` marker so that their masks can be emitted as all-ones /
all-zeros strings of the correct rule-mask length.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import PolicyError
from .actions import ActionType
from .purposes import Purpose, PurposeSet


class SpecialRule(enum.Enum):
    """Marker for the synthetic rules of Section 6.1."""

    PASS_ALL = "pass-all"    # rule mask of all '1's: complies with anything
    PASS_NONE = "pass-none"  # rule mask of all '0's: complies with nothing


@dataclass(frozen=True)
class PolicyRule:
    """A policy rule *R* = ⟨Cl, Pu, At⟩ (Def. 2).

    Attributes:
        columns: The set *Cl* of constrained column names of the policy's
            table.
        purposes: The set *Pu* of purpose ids for which actions of type
            ``action_type`` are authorized.
        action_type: The action type *At* regulated by this rule.
        special: When set, the rule is a synthetic pass-all/pass-none rule
            and the other components are ignored for encoding.
    """

    columns: frozenset[str] = field(default_factory=frozenset)
    purposes: frozenset[str] = field(default_factory=frozenset)
    action_type: ActionType | None = None
    special: SpecialRule | None = None

    def __post_init__(self) -> None:
        if self.special is None:
            if not self.columns:
                raise PolicyError("a policy rule must constrain at least one column")
            if self.action_type is None:
                raise PolicyError("a policy rule requires an action type")

    @classmethod
    def of(
        cls,
        columns,
        purposes,
        action_type: ActionType,
    ) -> "PolicyRule":
        """Convenience constructor accepting iterables and Purpose objects."""
        return cls(
            columns=frozenset(c.lower() for c in columns),
            purposes=frozenset(
                p.id if isinstance(p, Purpose) else p for p in purposes
            ),
            action_type=action_type,
        )

    @classmethod
    def pass_all(cls) -> "PolicyRule":
        """A rule whose mask is all '1's (complies with any signature)."""
        return cls(special=SpecialRule.PASS_ALL)

    @classmethod
    def pass_none(cls) -> "PolicyRule":
        """A rule whose mask is all '0's (complies with no signature)."""
        return cls(special=SpecialRule.PASS_NONE)


@dataclass(frozen=True)
class Policy:
    """A data policy *PP* = ⟨Rs, Tb, tp⟩ (Def. 2).

    ``tuple_selector`` identifies the tuple(s) the policy covers; ``None``
    is the paper's ⊥ (the policy covers every tuple of ``table``).  The
    selector is interpreted by the administration layer
    (:mod:`repro.core.admin`) as an equality predicate on a key column.
    """

    table: str
    rules: tuple[PolicyRule, ...]
    tuple_selector: tuple[str, object] | None = None

    def __post_init__(self) -> None:
        if not self.rules:
            raise PolicyError("a policy must contain at least one rule")

    def validate(self, column_names, purpose_set: PurposeSet) -> None:
        """Check rule columns/purposes against a table schema and purpose set.

        Raises :class:`PolicyError` on the first inconsistency; synthetic
        pass-all/pass-none rules are always valid.
        """
        known_columns = {name.lower() for name in column_names}
        for rule in self.rules:
            if rule.special is not None:
                continue
            unknown_columns = rule.columns - known_columns
            if unknown_columns:
                raise PolicyError(
                    f"policy on {self.table!r} references unknown columns "
                    f"{sorted(unknown_columns)}"
                )
            for purpose_id in rule.purposes:
                if purpose_id not in purpose_set:
                    raise PolicyError(
                        f"policy on {self.table!r} references unknown purpose "
                        f"{purpose_id!r}"
                    )
