"""Query rewriting enforcement (Section 5.5, Listing 2).

:func:`rewrite_query` implements ``rewriteQuery``: the WHERE clause of the
query — and, recursively, of every sub-query (``rwSubQueries``) — is
conjoined with one ``complieswith(b'<asm>', <binding>.policy)`` call per
action signature, where ``<asm>`` is the action-signature mask of Def. 14.

The original predicate is kept *first* in the conjunction: under the
engine's left-to-right short-circuit evaluation, tuples eliminated by the
query's own filters never pay a policy check, reproducing the
filter-amplification effect discussed with Figure 6.

Table signatures whose FROM-clause binding is a derived table get no
conjunct in the outer block — a derived table has no ``policy`` column; its
base tables are protected by the conjuncts added inside the rewritten
sub-query itself (DESIGN.md §5).
"""

from __future__ import annotations

import dataclasses
from typing import Protocol

from ..sql import ast
from .masks import MaskLayout
from .query_model import query_id as compute_query_id
from .signatures import QuerySignature, TableSignature
from .admin import POLICY_COLUMN, COMPLIES_WITH


class LayoutProvider(Protocol):
    """Where the rewriter gets per-table mask layouts (the admin module)."""

    def layout(self, table: str) -> MaskLayout:
        """Mask layout of a protected base table."""


def rewrite_query(
    select: ast.Select,
    signature: QuerySignature,
    layouts: LayoutProvider,
) -> ast.Select:
    """Rewrite a SELECT (and its sub-queries) to enforce the policies.

    ``signature`` must be the query signature derived for ``select`` with
    the same purpose the query runs under.
    """
    rewritten_sources = tuple(
        _rewrite_source(source, signature, layouts) for source in select.sources
    )
    base_bindings = {
        source.binding.lower()
        for source in ast.select_sources(select)
        if isinstance(source, ast.TableName)
    }

    where = (
        _rewrite_expression(select.where, signature, layouts)
        if select.where is not None
        else None
    )
    having = (
        _rewrite_expression(select.having, signature, layouts)
        if select.having is not None
        else None
    )
    items = tuple(
        dataclasses.replace(
            item,
            expression=_rewrite_expression(item.expression, signature, layouts),
        )
        for item in select.items
    )
    group_by = tuple(
        _rewrite_expression(expression, signature, layouts)
        for expression in select.group_by
    )
    order_by = tuple(
        dataclasses.replace(
            item,
            expression=_rewrite_expression(item.expression, signature, layouts),
        )
        for item in select.order_by
    )

    for table_signature in signature.tables:
        if table_signature.binding not in base_bindings:
            continue  # derived table: enforced inside the sub-query
        for conjunct in _compliance_conjuncts(
            table_signature, signature.purpose, layouts
        ):
            where = ast.conjoin(where, conjunct)

    return dataclasses.replace(
        select,
        items=items,
        sources=rewritten_sources,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
    )


def _compliance_conjuncts(
    table_signature: TableSignature,
    purpose: str,
    layouts: LayoutProvider,
) -> list[ast.Expression]:
    """One ``complieswith`` call per action signature of the table."""
    layout = layouts.layout(table_signature.table)
    conjuncts = []
    for action in table_signature.actions:
        mask = layout.signature_mask(action.columns, action.action_type, purpose)
        conjuncts.append(
            ast.FunctionCall(
                COMPLIES_WITH,
                (
                    ast.BitStringLiteral(mask.bits()),
                    ast.ColumnRef(POLICY_COLUMN, table=table_signature.binding),
                ),
            )
        )
    return conjuncts


def _rewrite_source(
    source: ast.TableSource,
    signature: QuerySignature,
    layouts: LayoutProvider,
) -> ast.TableSource:
    if isinstance(source, ast.SubquerySource):
        sub_signature = signature.subquery_signature(compute_query_id(source.select))
        return dataclasses.replace(
            source, select=rewrite_query(source.select, sub_signature, layouts)
        )
    if isinstance(source, ast.Join):
        return dataclasses.replace(
            source,
            left=_rewrite_source(source.left, signature, layouts),
            right=_rewrite_source(source.right, signature, layouts),
            condition=(
                _rewrite_expression(source.condition, signature, layouts)
                if source.condition is not None
                else None
            ),
        )
    return source


def _rewrite_expression(
    expression: ast.Expression,
    signature: QuerySignature,
    layouts: LayoutProvider,
) -> ast.Expression:
    """Rebuild an expression, rewriting nested sub-queries (rwSubQueries)."""

    def rewrite_sub(select: ast.Select) -> ast.Select:
        sub_signature = signature.subquery_signature(compute_query_id(select))
        return rewrite_query(select, sub_signature, layouts)

    if isinstance(expression, ast.InSubquery):
        return dataclasses.replace(
            expression,
            operand=_rewrite_expression(expression.operand, signature, layouts),
            subquery=rewrite_sub(expression.subquery),
        )
    if isinstance(expression, ast.Exists):
        return dataclasses.replace(expression, subquery=rewrite_sub(expression.subquery))
    if isinstance(expression, ast.ScalarSubquery):
        return dataclasses.replace(expression, subquery=rewrite_sub(expression.subquery))
    if isinstance(expression, ast.UnaryOp):
        return dataclasses.replace(
            expression,
            operand=_rewrite_expression(expression.operand, signature, layouts),
        )
    if isinstance(expression, ast.BinaryOp):
        return dataclasses.replace(
            expression,
            left=_rewrite_expression(expression.left, signature, layouts),
            right=_rewrite_expression(expression.right, signature, layouts),
        )
    if isinstance(expression, ast.FunctionCall):
        return dataclasses.replace(
            expression,
            args=tuple(
                _rewrite_expression(arg, signature, layouts)
                for arg in expression.args
            ),
        )
    if isinstance(expression, ast.Cast):
        return dataclasses.replace(
            expression,
            operand=_rewrite_expression(expression.operand, signature, layouts),
        )
    if isinstance(expression, ast.InList):
        return dataclasses.replace(
            expression,
            operand=_rewrite_expression(expression.operand, signature, layouts),
            items=tuple(
                _rewrite_expression(item, signature, layouts)
                for item in expression.items
            ),
        )
    if isinstance(expression, ast.Between):
        return dataclasses.replace(
            expression,
            operand=_rewrite_expression(expression.operand, signature, layouts),
            low=_rewrite_expression(expression.low, signature, layouts),
            high=_rewrite_expression(expression.high, signature, layouts),
        )
    if isinstance(expression, ast.Like):
        return dataclasses.replace(
            expression,
            operand=_rewrite_expression(expression.operand, signature, layouts),
            pattern=_rewrite_expression(expression.pattern, signature, layouts),
        )
    if isinstance(expression, ast.IsNull):
        return dataclasses.replace(
            expression,
            operand=_rewrite_expression(expression.operand, signature, layouts),
        )
    if isinstance(expression, ast.CaseWhen):
        return dataclasses.replace(
            expression,
            operand=(
                _rewrite_expression(expression.operand, signature, layouts)
                if expression.operand is not None
                else None
            ),
            whens=tuple(
                (
                    _rewrite_expression(condition, signature, layouts),
                    _rewrite_expression(result, signature, layouts),
                )
                for condition, result in expression.whens
            ),
            else_result=(
                _rewrite_expression(expression.else_result, signature, layouts)
                if expression.else_result is not None
                else None
            ),
        )
    # Leaves: literals, column refs, stars.
    return expression
