"""Enforcement Monitor (Section 2).

:class:`EnforcementMonitor` is the façade a client talks to: it receives a
SQL query together with its access purpose (and optionally the submitting
user), verifies the user's purpose authorization against table Pa, derives
the query signature, rewrites the query with ``complieswith`` conjuncts and
executes the rewritten statement against the secured DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import Database, ResultSet
from ..errors import UnauthorizedPurposeError
from ..sql import ast, parse_select
from ..sql.printer import print_select
from .admin import AccessControlManager, COMPLIES_WITH
from .rewriter import rewrite_query
from .signatures import QuerySignature, SignatureDeriver


@dataclass
class EnforcementReport:
    """Everything observable about one monitored execution."""

    original_sql: str
    rewritten_sql: str
    purpose: str
    signature: QuerySignature
    result: ResultSet
    compliance_checks: int


class EnforcementMonitor:
    """Rewrites and executes queries under the access-control policies.

    ``authorizer`` decides user-purpose authorization; it defaults to the
    admin's direct Pa check and can be replaced with a
    :class:`~repro.core.roles.RoleManager` to get role-based authorization
    (the paper's future-work item 3).
    """

    def __init__(self, admin: AccessControlManager, authorizer=None):
        self.admin = admin
        self.authorizer = authorizer if authorizer is not None else admin
        self.deriver = SignatureDeriver(admin, admin)
        self.audit = None

    def attach_audit(self, audit) -> None:
        """Record every execution/denial into an :class:`AuditLog`."""
        self.audit = audit

    def _audit(
        self,
        user: str | None,
        purpose: str,
        query_id: str,
        statement: str,
        outcome: str,
        rows: int = 0,
        checks: int = 0,
    ) -> None:
        if self.audit is not None:
            self.audit.record(
                user, purpose, query_id, statement, outcome, rows, checks
            )

    @property
    def database(self) -> Database:
        """The secured target database."""
        return self.admin.database

    # -- pipeline pieces ------------------------------------------------------------

    def derive_signature(self, query: str | ast.Select, purpose: str) -> QuerySignature:
        """Derive the query signature for an access purpose."""
        self.admin.purposes.get(purpose)  # validates the purpose id
        return self.deriver.derive(query, purpose)

    def rewrite(self, query: str | ast.Select, purpose: str) -> ast.Select:
        """Derive the signature and rewrite the query (no execution)."""
        select = parse_select(query) if isinstance(query, str) else query
        signature = self.derive_signature(select, purpose)
        return rewrite_query(select, signature, self.admin)

    def rewrite_sql(self, query: str | ast.Select, purpose: str) -> str:
        """The rewritten query as SQL text (Listing 3's output)."""
        return print_select(self.rewrite(query, purpose))

    # -- execution --------------------------------------------------------------------

    def execute(
        self,
        query: str | ast.Select,
        purpose: str,
        user: str | None = None,
    ) -> ResultSet:
        """Enforce and run a query; returns the policy-filtered result set."""
        return self.execute_with_report(query, purpose, user).result

    def execute_with_report(
        self,
        query: str | ast.Select,
        purpose: str,
        user: str | None = None,
    ) -> EnforcementReport:
        """Like :meth:`execute` but returns the full enforcement report.

        The report includes the number of ``complieswith`` invocations the
        execution performed — the complexity metric of Figure 6.
        """
        self.admin.require_configured()
        select = parse_select(query) if isinstance(query, str) else query
        original_sql = query if isinstance(query, str) else print_select(query)
        if user is not None and not self.authorizer.is_authorized(user, purpose):
            from .query_model import query_id as compute_query_id

            self._audit(
                user, purpose, compute_query_id(select), original_sql, "denied"
            )
            raise UnauthorizedPurposeError(user, purpose)
        signature = self.derive_signature(select, purpose)
        rewritten = rewrite_query(select, signature, self.admin)

        database = self.admin.database
        checks_before = database.function_calls(COMPLIES_WITH)
        result = database.query(rewritten)
        checks = database.function_calls(COMPLIES_WITH) - checks_before

        self._audit(
            user, purpose, signature.query_id, original_sql, "allowed",
            rows=len(result), checks=checks,
        )
        return EnforcementReport(
            original_sql=(
                query if isinstance(query, str) else print_select(query)
            ),
            rewritten_sql=print_select(rewritten),
            purpose=purpose,
            signature=signature,
            result=result,
            compliance_checks=checks,
        )

    def execute_statement(
        self,
        sql: "str | ast.Statement",
        purpose: str,
        user: str | None = None,
    ) -> ResultSet | int:
        """Enforce and run any SELECT or DML statement.

        SELECT returns the filtered :class:`ResultSet`; UPDATE/DELETE have
        their read-side (WHERE predicate, SET expressions) checked and only
        touch policy-compliant tuples, returning the affected-row count;
        ``INSERT ... SELECT`` enforces the source query.  DDL is rejected —
        schema changes go through the administration modules.
        """
        from ..errors import AccessControlError
        from ..sql import parse_statement
        from .dml import rewrite_statement

        statement = parse_statement(sql) if isinstance(sql, str) else sql
        if isinstance(statement, ast.Select):
            return self.execute(statement, purpose, user)
        if isinstance(statement, ast.SetOperation):
            return self._execute_set_operation(statement, purpose, user)
        if not isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            raise AccessControlError(
                "DDL statements are not executable through the monitor"
            )
        self.admin.require_configured()
        from ..sql.printer import to_sql
        from .query_model import query_id as compute_query_id

        original_sql = sql if isinstance(sql, str) else to_sql(statement)
        statement_id = compute_query_id(original_sql)
        if user is not None and not self.authorizer.is_authorized(user, purpose):
            self._audit(user, purpose, statement_id, original_sql, "denied")
            raise UnauthorizedPurposeError(user, purpose)
        self.admin.purposes.get(purpose)
        rewritten = rewrite_statement(statement, purpose, self.deriver, self.admin)
        database = self.admin.database
        checks_before = database.function_calls(COMPLIES_WITH)
        affected = database.execute(rewritten)
        checks = database.function_calls(COMPLIES_WITH) - checks_before
        self._audit(
            user, purpose, statement_id, original_sql, "allowed",
            rows=affected, checks=checks,
        )
        return affected

    def _execute_set_operation(
        self,
        statement: ast.SetOperation,
        purpose: str,
        user: str | None,
    ) -> ResultSet:
        """Enforce a UNION/INTERSECT/EXCEPT chain branch by branch.

        Each SELECT branch is its own query block: it gets its own
        signature and its own ``complieswith`` conjuncts, then the engine
        combines the branch results with set semantics.
        """
        import dataclasses

        self.admin.require_configured()
        if user is not None and not self.authorizer.is_authorized(user, purpose):
            raise UnauthorizedPurposeError(user, purpose)

        def rewrite_node(node):
            if isinstance(node, ast.SetOperation):
                return dataclasses.replace(
                    node,
                    left=rewrite_node(node.left),
                    right=rewrite_node(node.right),
                )
            signature = self.derive_signature(node, purpose)
            return rewrite_query(node, signature, self.admin)

        return self.admin.database.query(rewrite_node(statement))

    def execute_unprotected(self, query: str | ast.Select) -> ResultSet:
        """Run the *original* query, bypassing enforcement.

        Used by the benchmarks to measure the baseline execution time the
        paper's figures compare against.
        """
        select = parse_select(query) if isinstance(query, str) else query
        return self.admin.database.query(select)
