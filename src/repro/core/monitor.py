"""Enforcement Monitor (Section 2).

:class:`EnforcementMonitor` is the façade a client talks to: it receives a
SQL query together with its access purpose (and optionally the submitting
user), verifies the user's purpose authorization against table Pa, derives
the query signature, rewrites the query with ``complieswith`` conjuncts and
executes the rewritten statement against the secured DBMS.

The parse → sign → rewrite → plan pipeline runs once per distinct
``(query, purpose)`` pair and is cached: :meth:`EnforcementMonitor.prepare`
returns a :class:`PreparedEnforcedQuery` that replays the compiled plan on
every execution, and :meth:`execute` / :meth:`execute_with_report` are thin
wrappers over the same cache.  Cache keys embed the admin's *policy epoch*
(:attr:`~repro.core.admin.AccessControlManager.policy_epoch`), so any
policy, categorization or purpose-set change transparently forces a fresh
rewrite — a prepared query can never replay a plan compiled under policies
that no longer hold.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from ..engine import (
    Database,
    ResultSet,
    current_transaction,
    resolve_batch_size,
    resolve_executor_mode,
    resolve_index_mode,
    resolve_optimizer_mode,
    txn_scope,
)
from ..engine.database import PreparedQuery
from ..errors import ParseError, UnauthorizedPurposeError
from ..obs.tracing import NULL_TRACE, Trace
from ..sql import ast, parse_select, parse_statement
from ..sql.printer import print_select, to_sql
from .admin import AccessControlManager, COMPLIES_WITH
from .query_model import query_id as compute_query_id
from .rewriter import rewrite_query
from .signatures import QuerySignature, SignatureDeriver


@dataclass
class EnforcementReport:
    """Everything observable about one monitored execution.

    ``memo_hits`` is how many of the ``compliance_checks`` were answered
    from the ``complieswith`` memo; ``trace`` is the execution's recorded
    :class:`~repro.obs.tracing.Trace` when the monitor has tracing enabled
    (``None`` otherwise — disabled tracing records nothing).
    """

    original_sql: str
    rewritten_sql: str
    purpose: str
    signature: QuerySignature | None
    result: ResultSet
    compliance_checks: int
    cache_hit: bool = False
    memo_hits: int = 0
    #: Policy bitmaps built / reused by hoisted guards during this execution
    #: (both stay 0 with the optimizer off or no guards hoisted).
    bitmap_built: int = 0
    bitmap_hits: int = 0
    #: Secondary-index probes and policy-partition skips performed by this
    #: execution (both stay 0 with ``REPRO_INDEXES=off`` or no indexes).
    index_hits: int = 0
    partition_skips: int = 0
    trace: "object | None" = None


@dataclass(frozen=True)
class CompiledEnforcedPlan:
    """One plan-cache entry: everything derived from ⟨query, purpose⟩.

    Valid exactly as long as the policy epoch it was compiled under; the
    cache key embeds :attr:`epoch`, so entries from older epochs simply
    stop being found (and are purged on the next insertion).

    ``signature`` is ``None`` for set-operation chains, where each SELECT
    branch carries its own signature inside the rewritten tree.
    """

    query_id: str
    purpose: str
    epoch: int
    optimizer: str
    executor: str
    indexes: str
    original_sql: str
    statement: "ast.Select | ast.SetOperation"
    rewritten: "ast.Select | ast.SetOperation"
    rewritten_sql: str
    signature: QuerySignature | None
    plan: PreparedQuery


class PreparedEnforcedQuery:
    """A ⟨query, purpose⟩ pair prepared for repeated enforced execution.

    The handle itself stores no compiled state: every :meth:`execute`
    resolves the current plan through the monitor's epoch-keyed cache.  As
    long as policies are unchanged that is a dictionary hit replaying the
    compiled plan (no parsing, signature derivation or rewriting); after a
    policy, categorization or purpose-set change the epoch has moved and
    the next execution recompiles against the new state.
    """

    def __init__(
        self,
        monitor: "EnforcementMonitor",
        statement: "ast.Select | ast.SetOperation",
        query_id: str,
        purpose: str,
        original_sql: str | None = None,
    ):
        self.monitor = monitor
        self.statement = statement
        self.query_id = query_id
        self.purpose = purpose
        self.original_sql = original_sql

    @property
    def plan(self) -> CompiledEnforcedPlan:
        """The currently valid compiled plan (recompiled if the epoch moved)."""
        plan, _ = self.monitor._compiled_plan(
            self.statement, self.query_id, self.purpose
        )
        return plan

    @property
    def rewritten_sql(self) -> str:
        """The enforced SQL the next execution will run."""
        return self.plan.rewritten_sql

    @property
    def signature(self) -> QuerySignature | None:
        """The query signature (None for set-operation chains)."""
        return self.plan.signature

    @property
    def parameters(self) -> "list[ast.Parameter]":
        """The placeholders the query declares, in binding order."""
        return self.plan.plan.parameters

    def execute(self, params=None, user: str | None = None) -> ResultSet:
        """Run the prepared query under ``params``; returns filtered rows."""
        return self.execute_with_report(params=params, user=user).result

    def execute_with_report(
        self, params=None, user: str | None = None
    ) -> EnforcementReport:
        """Run the prepared query and return the full enforcement report."""
        return self.monitor._run_cached(
            self.statement,
            self.query_id,
            self.purpose,
            user,
            params,
            text=self.original_sql,
        )


class EnforcementMonitor:
    """Rewrites and executes queries under the access-control policies.

    ``authorizer`` decides user-purpose authorization; it defaults to the
    admin's direct Pa check and can be replaced with a
    :class:`~repro.core.roles.RoleManager` to get role-based authorization
    (the paper's future-work item 3).

    ``plan_cache_size`` bounds the compiled-plan LRU cache (keyed by
    ⟨query id, purpose, policy epoch⟩); ``parse_cache_size`` bounds the
    policy-independent SQL-text → AST memo in front of it.

    The caches and their counters are lock-guarded, so one monitor can serve
    many threads (the :mod:`repro.server` deployment): cache hits and plan
    compilation serialize on the monitor's lock, while the executions
    themselves run outside it.  Callers that interleave reads with policy
    or data *writes* must provide their own exclusion (the server's
    readers–writer lock); the monitor only guarantees its internal state
    stays consistent.
    """

    def __init__(
        self,
        admin: AccessControlManager,
        authorizer=None,
        plan_cache_size: int = 128,
        parse_cache_size: int = 256,
        optimizer: str | None = None,
        executor: str | None = None,
        batch_size: int | None = None,
        indexes: str | None = None,
    ):
        self.admin = admin
        self.authorizer = authorizer if authorizer is not None else admin
        self.deriver = SignatureDeriver(admin, admin)
        self.audit = None
        self.metrics = None
        self.tracing_enabled = False
        self.optimizer_mode = resolve_optimizer_mode(optimizer)
        self.executor_mode = resolve_executor_mode(executor)
        self.batch_size = resolve_batch_size(batch_size)
        self.indexes_mode = resolve_index_mode(indexes)
        self.plan_cache_size = plan_cache_size
        self.parse_cache_size = parse_cache_size
        self._plan_cache: "OrderedDict[tuple, CompiledEnforcedPlan]" = (
            OrderedDict()
        )
        self._parse_memo: "OrderedDict[str, tuple[ast.Select | ast.SetOperation, str]]" = (
            OrderedDict()
        )
        self.cache_hits = 0
        self.cache_misses = 0
        # Guards both OrderedDict caches and the hit/miss counters: their
        # get / move_to_end / popitem sequences are multi-step and corrupt
        # the LRU order (or lose counts) when query threads interleave.
        # Reentrant because a cache miss compiles under the lock and the
        # compile path may consult `_resolve` again for nested statements.
        self._cache_lock = threading.RLock()

    def attach_audit(self, audit) -> None:
        """Record every execution/denial into an :class:`AuditLog`."""
        self.audit = audit

    def attach_metrics(self, registry) -> None:
        """Aggregate this monitor's activity into a
        :class:`~repro.obs.metrics.MetricsRegistry`.

        Families are pre-registered so a scrape taken before any traffic
        still exposes every metric name at zero.
        """
        registry.counter(
            "repro_queries_total", "Enforced data-access statements by outcome"
        )
        registry.counter(
            "repro_complieswith_total",
            "complieswith invocations performed by enforced statements",
        )
        registry.counter(
            "repro_complieswith_memo_hits_total",
            "complieswith invocations answered from the compliance memo",
        )
        registry.counter(
            "repro_plan_cache_total", "Compiled-plan cache lookups by result"
        )
        registry.counter(
            "repro_policy_bitmap_total",
            "Policy bitmaps reused (event=hit) or built (event=built) by "
            "hoisted guards",
        )
        registry.counter(
            "repro_epoch_invalidations_total",
            "Cached plans purged because the policy epoch moved",
        )
        registry.counter(
            "repro_index_total",
            "Secondary-index activity: probes (event=hit), entry rebuilds "
            "(event=rebuild), policy partitions read (event=partition_hit) "
            "or skipped (event=partition_skip)",
        )
        registry.counter(
            "repro_audit_records_total", "Records written to the audit log"
        )
        registry.counter(
            "repro_explain_total",
            "EXPLAIN requests (never counted as data access)",
        )
        registry.counter(
            "repro_txn_total",
            "Transaction lifecycle by outcome (outcome=begin|commit|"
            "rollback|conflict)",
        )
        registry.gauge(
            "repro_catalog_version",
            "Current version of the database's versioned catalog",
        )
        registry.gauge(
            "repro_active_snapshots",
            "Snapshots currently pinned by open transactions",
        )
        registry.counter(
            "repro_wal_total",
            "Write-ahead-log activity (event=append|sync|checkpoint)",
        )
        registry.histogram(
            "repro_query_seconds", "End-to-end enforced execution latency"
        )
        registry.histogram(
            "repro_stage_seconds",
            "Per-stage pipeline latency (tracing-enabled executions only)",
        )
        self.metrics = registry
        self._set_catalog_gauges()

    def set_tracing(self, enabled: bool) -> None:
        """Turn per-execution span recording on or off.

        Off (the default) is the fast path: executions carry no trace, the
        engine skips its row-counting hooks entirely, and results are
        byte-identical to an instrumented run.
        """
        self.tracing_enabled = bool(enabled)

    def set_optimizer(self, mode: str | None) -> None:
        """Switch the plan-rewrite mode for *future* compilations.

        ``"on"`` runs the full pass pipeline (guard hoisting, pruning,
        folding); ``"off"`` replays the legacy executor's plans exactly;
        ``None`` re-resolves from ``$REPRO_OPTIMIZER``.  Plan-cache keys
        embed the mode, so already-compiled plans of the other mode stay
        cached and are simply not hit while this mode is active.
        """
        self.optimizer_mode = resolve_optimizer_mode(mode)

    def set_executor(self, mode: str | None, batch_size: int | None = None) -> None:
        """Switch the physical-execution mode for *future* compilations.

        ``"batch"`` runs the columnar batch-at-a-time operators; ``"row"``
        replays the tuple-at-a-time reference executor; ``None`` re-resolves
        from ``$REPRO_EXECUTOR``.  As with :meth:`set_optimizer`, plan-cache
        keys embed the executor mode, so plans compiled for the other mode
        stay cached and simply stop being hit.  ``batch_size`` optionally
        re-pins the rows-per-batch page size (``None`` re-resolves from
        ``$REPRO_BATCH_SIZE``).
        """
        self.executor_mode = resolve_executor_mode(mode)
        self.batch_size = resolve_batch_size(batch_size)

    def set_indexes(self, mode: str | None) -> None:
        """Switch access-path selection for *future* compilations.

        ``"on"`` lets the optimizer choose index scans, partition-pruned
        policy guards and cost-based build sides; ``"off"`` plans every
        query exactly as the pre-index engine did (the differential
        reference); ``None`` re-resolves from ``$REPRO_INDEXES``.  Plan
        cache keys embed the mode, so plans of the other mode stay cached
        and simply stop being hit.
        """
        self.indexes_mode = resolve_index_mode(mode)

    def clear_policy_bitmaps(self) -> None:
        """Drop the engine's cached policy bitmaps (counters are kept)."""
        self.database.policy_bitmaps.clear()

    def _begin_trace(self) -> Trace:
        return Trace() if self.tracing_enabled else NULL_TRACE

    def _count_query(self, outcome: str) -> None:
        if self.metrics is not None:
            self.metrics.counter("repro_queries_total").inc(outcome=outcome)

    def _audit(
        self,
        user: str | None,
        purpose: str,
        query_id: str,
        statement: str,
        outcome: str,
        rows: int = 0,
        checks: int = 0,
    ) -> None:
        if self.audit is not None:
            # Audit rows are written outside any ambient transaction: the
            # record of an attempt must survive even when the transaction
            # that made it rolls back (and must never be staged).
            with txn_scope(None):
                self.audit.record(
                    user, purpose, query_id, statement, outcome, rows, checks
                )
            if self.metrics is not None:
                self.metrics.counter("repro_audit_records_total").inc()

    @property
    def database(self) -> Database:
        """The secured target database."""
        return self.admin.database

    def _current_txn(self):
        """The context's transaction against this monitor's database, if any.

        A snapshot doomed by a policy *metadata* change fails fast here —
        its enforcement state can no longer be reconstructed, so no query
        may run under it (DESIGN.md §15).
        """
        txn = current_transaction(self.database.transactions)
        if txn is not None:
            txn._check_usable()
        return txn

    def _current_epoch(self) -> int:
        """The policy epoch queries are enforced under *right now*.

        Inside a transaction this is the snapshot's epoch, not the admin's
        live epoch: a reader that began before a policy update keeps
        compiling and hitting plans for its snapshot's policy state
        (DESIGN.md §15).
        """
        txn = self._current_txn()
        if txn is not None:
            return txn.snapshot.epoch
        return self.admin.policy_epoch

    # -- pipeline pieces ------------------------------------------------------------

    def derive_signature(self, query: str | ast.Select, purpose: str) -> QuerySignature:
        """Derive the query signature for an access purpose."""
        self.admin.purposes.get(purpose)  # validates the purpose id
        return self.deriver.derive(query, purpose)

    def rewrite(self, query: str | ast.Select, purpose: str) -> ast.Select:
        """Derive the signature and rewrite the query (no execution)."""
        select = parse_select(query) if isinstance(query, str) else query
        signature = self.derive_signature(select, purpose)
        return rewrite_query(select, signature, self.admin)

    def rewrite_sql(self, query: str | ast.Select, purpose: str) -> str:
        """The rewritten query as SQL text (Listing 3's output)."""
        return print_select(self.rewrite(query, purpose))

    # -- prepared pipeline -----------------------------------------------------------

    def _resolve(
        self, query, allow_set_ops: bool = False
    ) -> "tuple[ast.Select | ast.SetOperation, str, str | None]":
        """Parse (memoized) and identify a query.

        Returns ``(statement, query_id, text)``; ``text`` is the raw SQL
        exactly as the caller wrote it (used in reports and audit records)
        and ``None`` for AST inputs.  The memo is keyed by the raw text and
        holds only policy-independent results, so it never needs epoch
        invalidation; the query id hashes the *printed* form, making it
        stable across formatting variants of the same statement.
        """
        if isinstance(query, str):
            with self._cache_lock:
                cached = self._parse_memo.get(query)
                if cached is None:
                    statement = parse_statement(query)
                    if not isinstance(statement, (ast.Select, ast.SetOperation)):
                        raise ParseError(
                            "expected a SELECT statement, got "
                            f"{type(statement).__name__}"
                        )
                    cached = (statement, compute_query_id(to_sql(statement)))
                    self._parse_memo[query] = cached
                    if len(self._parse_memo) > self.parse_cache_size:
                        self._parse_memo.popitem(last=False)
                else:
                    self._parse_memo.move_to_end(query)
            statement, qid = cached
            text: str | None = query
        else:
            statement, text = query, None
            qid = compute_query_id(to_sql(statement))
        if not allow_set_ops and not isinstance(statement, ast.Select):
            raise ParseError(
                f"expected a SELECT statement, got {type(statement).__name__}"
            )
        return statement, qid, text

    def _compiled_plan(
        self,
        statement: "ast.Select | ast.SetOperation",
        qid: str,
        purpose: str,
    ) -> tuple[CompiledEnforcedPlan, bool]:
        """The compiled plan for ⟨query, purpose⟩ at the current epoch.

        Returns ``(plan, cache_hit)``.  On a miss the full pipeline runs —
        signature derivation, rewriting, printing, engine planning — and
        the result is cached under ⟨query id, purpose, epoch⟩ with LRU
        eviction beyond :attr:`plan_cache_size`.
        """
        with self._cache_lock:
            epoch = self._current_epoch()
            mode = self.optimizer_mode
            executor = self.executor_mode
            batch_size = self.batch_size
            indexes = self.indexes_mode
            key = (qid, purpose, epoch, mode, executor, batch_size, indexes)
            plan = self._plan_cache.get(key)
            if plan is not None:
                self._plan_cache.move_to_end(key)
                self.cache_hits += 1
                return plan, True
            self.cache_misses += 1
            self.admin.purposes.get(purpose)  # validates the purpose id
            if isinstance(statement, ast.SetOperation):
                signature = None
                rewritten: "ast.Select | ast.SetOperation" = (
                    self._rewrite_set_operation(statement, purpose)
                )
            else:
                signature = self.deriver.derive(statement, purpose)
                rewritten = rewrite_query(statement, signature, self.admin)
            plan = CompiledEnforcedPlan(
                query_id=qid,
                purpose=purpose,
                epoch=epoch,
                optimizer=mode,
                executor=executor,
                indexes=indexes,
                original_sql=to_sql(statement),
                statement=statement,
                rewritten=rewritten,
                rewritten_sql=to_sql(rewritten),
                signature=signature,
                plan=self.database.prepare(
                    rewritten, optimizer=mode,
                    executor=executor, batch_size=batch_size,
                    indexes=indexes,
                ),
            )
            # Keys embed the current epoch, so entries compiled under earlier
            # epochs can never be hit again — drop them before LRU eviction
            # starts pushing out live plans.  Epochs still pinned by an
            # active snapshot are kept: their readers can (and should) keep
            # hitting the plans compiled for their policy state.
            pinned = self.database.transactions.pinned_epochs()
            live_epoch = self.admin.policy_epoch
            stale_keys = [
                k
                for k in self._plan_cache
                if k[2] != epoch and k[2] != live_epoch and k[2] not in pinned
            ]
            for stale in stale_keys:
                del self._plan_cache[stale]
            if stale_keys and self.metrics is not None:
                self.metrics.counter("repro_epoch_invalidations_total").inc(
                    len(stale_keys)
                )
            self._plan_cache[key] = plan
            while len(self._plan_cache) > self.plan_cache_size:
                self._plan_cache.popitem(last=False)
            return plan, False

    def _rewrite_set_operation(
        self, node: "ast.Select | ast.SetOperation", purpose: str
    ) -> "ast.Select | ast.SetOperation":
        """Rewrite a UNION/INTERSECT/EXCEPT chain branch by branch.

        Each SELECT branch is its own query block: it gets its own
        signature and its own ``complieswith`` conjuncts, then the engine
        combines the branch results with set semantics.
        """
        import dataclasses

        if isinstance(node, ast.SetOperation):
            return dataclasses.replace(
                node,
                left=self._rewrite_set_operation(node.left, purpose),
                right=self._rewrite_set_operation(node.right, purpose),
            )
        signature = self.deriver.derive(node, purpose)
        return rewrite_query(node, signature, self.admin)

    def prepare(self, query, purpose: str) -> PreparedEnforcedQuery:
        """Parse, sign, rewrite and plan a query once for repeated execution.

        The returned handle's :meth:`~PreparedEnforcedQuery.execute` binds
        parameter values (``?`` / ``$n`` / ``:name`` placeholders) at
        execution time; as long as policies are unchanged, repeated
        executions skip the whole enforcement pipeline and replay the
        compiled plan against current table contents.
        """
        self.admin.require_configured()
        statement, qid, text = self._resolve(query, allow_set_ops=True)
        self._compiled_plan(statement, qid, purpose)  # compile eagerly
        return PreparedEnforcedQuery(self, statement, qid, purpose, text)

    def _run_cached(
        self,
        statement: "ast.Select | ast.SetOperation",
        qid: str,
        purpose: str,
        user: str | None,
        params,
        text: str | None = None,
        trace: "Trace | None" = None,
    ) -> EnforcementReport:
        """Authorize, fetch the compiled plan, execute, audit — the one
        execution path shared by plain/prepared/set-operation entry points.

        ``trace`` lets :meth:`execute_with_report` (which already opened a
        ``parse`` span) and :meth:`explain` thread their trace through;
        other callers get a fresh one (the no-op trace when tracing is
        disabled, so the span bookkeeping below costs nothing).
        """
        self.admin.require_configured()
        started = time.perf_counter() if self.metrics is not None else 0.0
        if trace is None:
            trace = self._begin_trace()
        if user is not None and not self.authorizer.is_authorized(user, purpose):
            self._audit(
                user,
                purpose,
                qid,
                text if text is not None else to_sql(statement),
                "denied",
            )
            self._count_query("denied")
            raise UnauthorizedPurposeError(user, purpose)
        with trace.span("plan") as plan_span:
            plan, hit = self._compiled_plan(statement, qid, purpose)
            plan_span.annotate(cache_hit=hit, nodes=plan.plan.plan_summary())
        original_sql = text if text is not None else plan.original_sql

        database = self.admin.database
        memo_before = self.admin.compliance_memo_info()["hits"]
        checks_before = database.function_calls(COMPLIES_WITH)
        bitmap_before = database.policy_bitmaps.stats()
        index_before = database.indexes.stats()
        with trace.span("execute") as execute_span:
            try:
                result = database.execute_prepared(
                    plan.plan, params, trace=trace if trace.enabled else None
                )
            except Exception:
                self._count_query("error")
                raise
        checks = database.function_calls(COMPLIES_WITH) - checks_before
        memo_hits = self.admin.compliance_memo_info()["hits"] - memo_before
        bitmap_after = database.policy_bitmaps.stats()
        bitmap_built = bitmap_after["built"] - bitmap_before["built"]
        bitmap_hits = bitmap_after["hits"] - bitmap_before["hits"]
        index_after = database.indexes.stats()
        index_hits = index_after["hits"] - index_before["hits"]
        index_rebuilds = index_after["rebuilds"] - index_before["rebuilds"]
        partition_hits = (
            index_after["partition_hits"] - index_before["partition_hits"]
        )
        partition_skips = (
            index_after["partition_skips"] - index_before["partition_skips"]
        )
        execute_span.annotate(
            rows=len(result), checks=checks, memo_hits=memo_hits
        )

        self._audit(
            user, purpose, qid, original_sql, "allowed",
            rows=len(result), checks=checks,
        )
        self._count_query("ok")
        if self.metrics is not None:
            metrics = self.metrics
            metrics.counter("repro_complieswith_total").inc(checks)
            metrics.counter("repro_complieswith_memo_hits_total").inc(memo_hits)
            if bitmap_hits:
                metrics.counter("repro_policy_bitmap_total").inc(
                    bitmap_hits, event="hit"
                )
            if bitmap_built:
                metrics.counter("repro_policy_bitmap_total").inc(
                    bitmap_built, event="built"
                )
            for event, delta in (
                ("hit", index_hits),
                ("rebuild", index_rebuilds),
                ("partition_hit", partition_hits),
                ("partition_skip", partition_skips),
            ):
                if delta:
                    metrics.counter("repro_index_total").inc(delta, event=event)
            metrics.counter("repro_plan_cache_total").inc(
                result="hit" if hit else "miss"
            )
            metrics.histogram("repro_query_seconds").observe(
                time.perf_counter() - started
            )
            if trace.enabled:
                stage_histogram = metrics.histogram("repro_stage_seconds")
                for stage, seconds in trace.stage_seconds().items():
                    stage_histogram.observe(seconds, stage=stage)
        return EnforcementReport(
            original_sql=original_sql,
            rewritten_sql=plan.rewritten_sql,
            purpose=purpose,
            signature=plan.signature,
            result=result,
            compliance_checks=checks,
            cache_hit=hit,
            memo_hits=memo_hits,
            bitmap_built=bitmap_built,
            bitmap_hits=bitmap_hits,
            index_hits=index_hits,
            partition_skips=partition_skips,
            trace=trace if trace.enabled else None,
        )

    # -- cache instrumentation ---------------------------------------------------------

    def plan_cache_info(self) -> dict:
        """Hit/miss counters and current occupancy of the plan cache."""
        with self._cache_lock:
            return {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "size": len(self._plan_cache),
                "maxsize": self.plan_cache_size,
                "epoch": self.admin.policy_epoch,
                "optimizer": self.optimizer_mode,
                "executor": self.executor_mode,
                "batch_size": self.batch_size,
                "indexes": self.indexes_mode,
            }

    def clear_plan_cache(self) -> None:
        """Drop all cached plans and parse results (counters are kept)."""
        with self._cache_lock:
            self._plan_cache.clear()
            self._parse_memo.clear()

    # -- execution --------------------------------------------------------------------

    def execute(
        self,
        query: str | ast.Select,
        purpose: str,
        user: str | None = None,
        params=None,
    ) -> ResultSet:
        """Enforce and run a query; returns the policy-filtered result set."""
        return self.execute_with_report(query, purpose, user, params=params).result

    def execute_with_report(
        self,
        query: str | ast.Select,
        purpose: str,
        user: str | None = None,
        params=None,
    ) -> EnforcementReport:
        """Like :meth:`execute` but returns the full enforcement report.

        The report includes the number of ``complieswith`` invocations the
        execution performed — the complexity metric of Figure 6 — and
        whether the compiled plan came from the cache.  Set-operation chains
        (UNION/INTERSECT/EXCEPT) take the same cached path, each branch
        enforced with its own signature.
        """
        self.admin.require_configured()
        trace = self._begin_trace()
        with trace.span("parse"):
            statement, qid, text = self._resolve(query, allow_set_ops=True)
        return self._run_cached(
            statement, qid, purpose, user, params, text, trace=trace
        )

    def explain(
        self,
        query: "str | ast.Select | ast.SetOperation",
        purpose: str,
        user: str | None = None,
        params=None,
        analyze: bool = False,
    ) -> ResultSet:
        """EXPLAIN [ANALYZE] an enforced query: one ``plan`` column of text.

        Plain EXPLAIN compiles (or fetches) the enforced plan without
        executing anything; ANALYZE executes under a forced trace and
        annotates every plan node with the rows it produced, plus execution
        and per-stage timing summary lines.  Either way the request is
        audited with outcome ``explain`` and counted under
        ``repro_explain_total`` — never as data access, so plan inspection
        cannot skew the Figure-6 accounting (``repro_queries_total``,
        ``repro_complieswith_total``) the tests pin down.
        """
        self.admin.require_configured()
        statement, qid, text = self._resolve(query, allow_set_ops=True)
        original_sql = text if text is not None else to_sql(statement)
        if user is not None and not self.authorizer.is_authorized(user, purpose):
            self._audit(user, purpose, qid, original_sql, "denied")
            raise UnauthorizedPurposeError(user, purpose)
        plan, hit = self._compiled_plan(statement, qid, purpose)

        lines = [f"rewritten: {plan.rewritten_sql}"]
        lines.append(f"Optimizer: mode={plan.optimizer}")
        lines.extend(f"  {note}" for note in plan.plan.optimizer_notes())
        lines.append(
            f"Executor: mode={plan.executor} batch_size={plan.plan.batch_size}"
        )
        lines.append(f"Indexes: mode={plan.indexes}")
        txn = self._current_txn()
        if txn is not None and not txn.ephemeral:
            lines.append(
                f"Snapshot: ts={txn.snapshot.ts} "
                f"catalog={txn.snapshot.catalog_version} txn={txn.txn_id}"
            )
        else:
            # No transaction, or a per-statement read snapshot (which by
            # construction sees the latest committed state).
            lines.append(f"Snapshot: latest catalog={plan.epoch}")
        lines.append("Logical:")
        lines.extend(f"  {line}" for line in plan.plan.logical_lines())
        rows = checks = memo_hits = 0
        if analyze:
            trace = Trace()
            database = self.admin.database
            memo_before = self.admin.compliance_memo_info()["hits"]
            checks_before = database.function_calls(COMPLIES_WITH)
            bitmap_before = database.policy_bitmaps.stats()
            index_before = database.indexes.stats()
            with trace.span("execute"):
                result = database.execute_prepared(plan.plan, params, trace=trace)
            checks = database.function_calls(COMPLIES_WITH) - checks_before
            memo_hits = self.admin.compliance_memo_info()["hits"] - memo_before
            bitmap_after = database.policy_bitmaps.stats()
            index_after = database.indexes.stats()
            rows = len(result)
            lines.extend(plan.plan.describe_arms(annotate=trace.annotation))
            lines.append(
                f"Execution: rows={rows} checks={checks} "
                f"memo_hits={memo_hits} cache_hit={str(hit).lower()} "
                f"bitmap_built={bitmap_after['built'] - bitmap_before['built']} "
                f"bitmap_hits={bitmap_after['hits'] - bitmap_before['hits']} "
                f"index_hits={index_after['hits'] - index_before['hits']} "
                f"partition_skips="
                f"{index_after['partition_skips'] - index_before['partition_skips']}"
            )
            stages = " ".join(
                f"{stage}={seconds * 1000:.3f}ms"
                for stage, seconds in trace.stage_seconds().items()
            )
            lines.append(f"Timing: {stages}")
        else:
            lines.extend(plan.plan.describe_arms())

        self._audit(
            user, purpose, qid, original_sql, "explain", rows=rows, checks=checks
        )
        if self.metrics is not None:
            self.metrics.counter("repro_explain_total").inc(
                analyze="true" if analyze else "false"
            )
        return ResultSet(("plan",), [(line,) for line in lines])

    def execute_statement(
        self,
        sql: "str | ast.Statement",
        purpose: str,
        user: str | None = None,
    ) -> ResultSet | int:
        """Enforce and run any SELECT or DML statement.

        SELECT returns the filtered :class:`ResultSet`; UPDATE/DELETE have
        their read-side (WHERE predicate, SET expressions) checked and only
        touch policy-compliant tuples, returning the affected-row count;
        ``INSERT ... SELECT`` enforces the source query.  DDL is rejected —
        schema changes go through the administration modules.
        """
        from ..errors import AccessControlError
        from .dml import rewrite_statement

        statement = parse_statement(sql) if isinstance(sql, str) else sql
        text = sql if isinstance(sql, str) else None
        if isinstance(statement, ast.Explain):
            return self.explain(
                statement.statement, purpose, user=user, analyze=statement.analyze
            )
        if isinstance(statement, (ast.Begin, ast.Commit, ast.Rollback)):
            return self.execute_txn_control(statement)
        if isinstance(statement, ast.Select):
            return self.execute(statement if text is None else text, purpose, user)
        if isinstance(statement, ast.SetOperation):
            return self._execute_set_operation(statement, purpose, user, text)
        if not isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            raise AccessControlError(
                "DDL statements are not executable through the monitor"
            )
        self.admin.require_configured()
        original_sql = text if text is not None else to_sql(statement)
        statement_id = compute_query_id(original_sql)
        if user is not None and not self.authorizer.is_authorized(user, purpose):
            self._audit(user, purpose, statement_id, original_sql, "denied")
            self._count_query("denied")
            raise UnauthorizedPurposeError(user, purpose)
        self.admin.purposes.get(purpose)
        rewritten = rewrite_statement(statement, purpose, self.deriver, self.admin)
        database = self.admin.database
        checks_before = database.function_calls(COMPLIES_WITH)
        affected = database.execute(rewritten)
        checks = database.function_calls(COMPLIES_WITH) - checks_before
        self._audit(
            user, purpose, statement_id, original_sql, "allowed",
            rows=affected, checks=checks,
        )
        self._count_query("ok")
        if self.metrics is not None:
            self.metrics.counter("repro_complieswith_total").inc(checks)
        return affected

    def execute_txn_control(self, statement: "ast.Begin | ast.Commit | ast.Rollback") -> int:
        """Run BEGIN/COMMIT/ROLLBACK against the context's transaction state.

        Transaction control is not a data access: it is never enforced or
        audited, only counted (``repro_txn_total``).  A COMMIT that loses
        first-committer-wins validation raises
        :class:`~repro.errors.WriteConflictError` after counting the
        conflict.
        """
        from ..errors import WriteConflictError

        database = self.admin.database
        if isinstance(statement, ast.Begin):
            database.begin()
            self._count_txn("begin")
            return 0
        if isinstance(statement, ast.Commit):
            try:
                database.commit()
            except WriteConflictError:
                self._count_txn("conflict")
                raise
            self._count_txn("commit")
            return 0
        database.rollback()
        self._count_txn("rollback")
        return 0

    def _count_txn(self, event: str) -> None:
        if self.metrics is not None:
            self.metrics.counter("repro_txn_total").inc(outcome=event)
            self._set_catalog_gauges()

    def _set_catalog_gauges(self) -> None:
        """Refresh the catalog-version and active-snapshot gauges."""
        if self.metrics is None:
            return
        database = self.admin.database
        self.metrics.gauge("repro_catalog_version").set(
            database.catalog.version
        )
        self.metrics.gauge("repro_active_snapshots").set(
            database.transactions.active_count()
        )

    def _execute_set_operation(
        self,
        statement: ast.SetOperation,
        purpose: str,
        user: str | None,
        text: str | None = None,
        params=None,
    ) -> ResultSet:
        """Enforce a UNION/INTERSECT/EXCEPT chain through the cached path.

        Goes through the same :meth:`_run_cached` as plain SELECTs, so the
        execution is audited and its ``complieswith`` invocations counted
        like every other enforced query.
        """
        self.admin.require_configured()
        statement, qid, resolved_text = (
            self._resolve(text, allow_set_ops=True)
            if text is not None
            else (statement, compute_query_id(to_sql(statement)), None)
        )
        return self._run_cached(
            statement, qid, purpose, user, params, resolved_text
        ).result

    def execute_unprotected(self, query: str | ast.Select) -> ResultSet:
        """Run the *original* query, bypassing enforcement.

        Used by the benchmarks to measure the baseline execution time the
        paper's figures compare against.
        """
        select = parse_select(query) if isinstance(query, str) else query
        return self.admin.database.query(select)
