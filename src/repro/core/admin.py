"""Access Control Management module (Section 2, framework configuration §5.1).

:class:`AccessControlManager` performs the configuration activities of
Section 5.1 against a target :class:`~repro.engine.Database`:

1. defines the purpose set, persisted in table ``Pr(Id, Ds)``;
2. records the data categorization in table ``Pm(At, Tb, Ct)``;
3. records purpose authorizations of users in table ``Pa(Ui, Pi)``;
4. appends a ``policy`` column (``BIT VARYING``) to every target table;
5. registers the ``complieswith`` UDF with the engine.

It also implements the :class:`~repro.core.info_tuples.SchemaProvider` and
:class:`~repro.core.info_tuples.Categorizer` protocols consumed by signature
derivation, and hands out per-table :class:`~repro.core.masks.MaskLayout`
encoders (cached, invalidated on purpose/schema changes).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..engine import Column, Database, SqlType, TableSchema
from ..engine.functions import MemoizedFunction
from ..engine.mvcc import current_transaction
from ..engine.types import BitString
from ..errors import ConfigurationError, ExecutionError, PolicyError
from .categories import CategoryRegistry, DataCategory, DEFAULT_CATEGORIES
from .masks import MaskLayout, complies_with
from .policy import Policy
from .purposes import Purpose, PurposeSet

#: Names of the security meta-data tables: Pr/Pm/Pa from configuration
#: (§5.1), plus the audit log (``al``) and the role extension's tables.
META_TABLES = frozenset({"pr", "pm", "pa", "al", "ro", "ur", "rp"})

#: Environment variable selecting how purpose-taxonomy edits treat open
#: snapshots: ``versioned`` (default — old snapshots keep resolving the
#: taxonomy as of their catalog version) or ``failfast`` (the PR 9
#: semantics — active snapshots are doomed and raise on next use).
REVOCATION_ENV = "REPRO_REVOCATION"

#: The supported revocation modes.
REVOCATION_MODES = ("versioned", "failfast")


def resolve_revocation_mode(explicit: str | None = None) -> str:
    """Resolve the revocation mode: explicit argument beats the env var."""
    mode = (explicit or os.environ.get(REVOCATION_ENV) or "versioned").lower()
    if mode not in REVOCATION_MODES:
        raise ExecutionError(
            f"unknown revocation mode {mode!r} "
            f"(expected one of {REVOCATION_MODES})"
        )
    return mode


@dataclass(frozen=True)
class AcmState:
    """One immutable version of the access-control taxonomy.

    Committed to the database catalog under ``("acm", "state")`` on every
    policy-relevant write, so snapshot-pinned readers resolve purposes and
    categorizations *as of their catalog version* instead of racing live
    mutations (DESIGN.md §16).
    """

    purposes: tuple[Purpose, ...] = ()
    categories: dict = field(default_factory=dict)

#: Name of the per-row policy-mask column appended to target tables.
POLICY_COLUMN = "policy"

#: Name under which the compliance UDF is registered with the engine.
COMPLIES_WITH = "complieswith"


class EpochScoped:
    """Caches whose contents are only valid within one policy epoch.

    Several layers memoize work derived from policy state — the
    ``complieswith`` argument memo, the engine's policy-bitmap cache, and
    anything an extension registers.  They all share one invalidation rule
    ("discard on policy-epoch bump"), so they register here once and
    :meth:`AccessControlManager.bump_policy_epoch` clears them together
    instead of each call site remembering every cache.
    """

    def __init__(self) -> None:
        self._caches: list = []

    def register(self, cache) -> None:
        """Track a cache exposing ``clear()``; duplicates are ignored."""
        if not hasattr(cache, "clear"):
            raise TypeError(
                f"{type(cache).__name__} has no clear() method"
            )
        if any(existing is cache for existing in self._caches):
            return
        self._caches.append(cache)

    def clear_all(self) -> None:
        """Invalidate every registered cache (the epoch just bumped)."""
        for cache in self._caches:
            cache.clear()

    def __len__(self) -> int:
        return len(self._caches)


class AccessControlManager:
    """Configures and serves access-control meta-data for one target DB."""

    def __init__(
        self,
        database: Database,
        categories: CategoryRegistry | None = None,
    ):
        self.database = database
        self.categories = categories or CategoryRegistry(DEFAULT_CATEGORIES)
        self.purposes = PurposeSet()
        self.revocation_mode = resolve_revocation_mode()
        self._category_map: dict[tuple[str, str], DataCategory] = {}
        self._layouts: dict[tuple, MaskLayout] = {}
        self._configured = False
        self._compliance_memo = MemoizedFunction(complies_with)
        self.epoch_scoped = EpochScoped()
        self.epoch_scoped.register(self._compliance_memo)
        self.epoch_scoped.register(database.policy_bitmaps)

    #: Bound on the versioned layout cache (old versions age out by LRU-ish
    #: insertion order; pinned readers just rebuild from catalog state).
    _LAYOUT_CACHE_LIMIT = 32

    # -- policy epoch (catalog version) -------------------------------------------

    @property
    def policy_epoch(self) -> int:
        """The database catalog version (PR 10: the epoch IS the catalog).

        Every mutation that can alter what a rewritten query returns —
        storing policy masks, (re)categorizing columns, changing the purpose
        set, protecting new tables, mask migrations — commits a new
        :class:`AcmState` to the catalog and hence advances this version.
        Cached enforcement plans embed the version they were compiled
        under, so a commit invalidates them without any back-pointers from
        here to the monitors holding the caches.
        """
        return self.database.catalog.version

    def bump_policy_epoch(self, metadata_changed: bool = False) -> None:
        """Commit the current taxonomy to the catalog as a new version.

        ``metadata_changed`` marks changes to the purpose set or schema
        categorization.  Mask churn is ordinary row data and stays
        snapshot-isolated; taxonomy edits are versioned catalog commits
        that open snapshots simply do not see (they keep resolving the
        :class:`AcmState` as of their pinned catalog version).  Under
        ``REPRO_REVOCATION=failfast`` the PR 9 semantics are kept instead:
        a metadata change dooms every active snapshot (DESIGN.md §16).
        """
        self.database.catalog.commit(
            [
                (
                    "acm",
                    "state",
                    AcmState(
                        purposes=tuple(self.purposes.ordered()),
                        categories=dict(self._category_map),
                    ),
                )
            ],
            self.database.transactions.clock,
        )
        self.epoch_scoped.clear_all()
        if metadata_changed and self.revocation_mode == "failfast":
            self.database.transactions.invalidate_active_snapshots(
                f"policy metadata change at catalog version "
                f"{self.database.catalog.version}"
            )

    def _enforcement_version(self) -> int:
        """The catalog version enforcement resolves against *right now*.

        Inside a transaction this is the snapshot's pinned catalog version;
        outside it is the live catalog head.
        """
        txn = current_transaction(self.database.transactions)
        if txn is not None:
            return txn.snapshot.catalog_version
        return self.database.catalog.version

    def _acm_state(self, version: int) -> AcmState | None:
        """The taxonomy as of ``version`` (``None`` before the first commit)."""
        return self.database.catalog.value_at("acm", "state", version)

    def _purposes_at(self, version: int) -> PurposeSet:
        """The purpose set as of ``version`` (the live set when identical)."""
        state = self._acm_state(version)
        if state is None or state.purposes == tuple(self.purposes.ordered()):
            return self.purposes
        pinned = PurposeSet()
        for purpose in state.purposes:
            pinned.add(purpose)
        return pinned

    def compliance_memo_info(self) -> dict[str, int]:
        """Observability snapshot of the ``complieswith`` memo.

        ``hits``/``misses`` are monotonic invocation counters (they survive
        epoch clears); ``cached`` is the current number of memoized
        argument tuples.
        """
        memo = self._compliance_memo
        return {
            "hits": memo.hit_count(),
            "misses": memo.miss_count(),
            "cached": memo.cached_results(),
        }

    # -- configuration (Section 5.1) ---------------------------------------------

    @classmethod
    def from_existing(
        cls,
        database: Database,
        categories: CategoryRegistry | None = None,
    ) -> "AccessControlManager":
        """Rebuild a manager from an already-configured database.

        All administrative state lives in the Pr/Pm meta-tables, so a
        database reloaded from a snapshot (:mod:`repro.engine.persist`) can
        be re-attached: purposes and the categorization are read back and
        the ``complieswith`` UDF is re-registered.  ``categories`` must
        include every category code appearing in Pm (defaults suffice for
        the paper's four).
        """
        if not database.has_table("pr"):
            raise ConfigurationError(
                "database has no Pr table; run configure() instead"
            )
        manager = cls(database, categories=categories)
        manager._configured = True
        for purpose_id, description in database.table("pr").rows:
            manager.purposes.add(Purpose(purpose_id, description or ""))
        for column, table, code in database.table("pm").rows:
            manager._category_map[(table, column)] = manager.categories.by_code(
                code
            )
        database.register_function(
            COMPLIES_WITH, manager._compliance_memo, strict=True
        )
        database.policy_function = COMPLIES_WITH
        database.policy_column = POLICY_COLUMN
        # Seed the catalog with the restored taxonomy so versioned
        # resolution works from the first snapshot on.
        manager.bump_policy_epoch()
        return manager

    def configure(self, purposes: PurposeSet | None = None) -> None:
        """Run the framework-configuration steps against the target DB.

        Idempotent: re-running on a configured database raises
        :class:`ConfigurationError` to avoid clobbering meta-data.
        """
        if self._configured or self.database.has_table("pr"):
            raise ConfigurationError("database is already configured")
        self.database.create_table(
            TableSchema(
                "pr",
                [Column("id", SqlType.TEXT, primary_key=True), Column("ds", SqlType.TEXT)],
            )
        )
        self.database.create_table(
            TableSchema(
                "pm",
                [
                    Column("at", SqlType.TEXT),
                    Column("tb", SqlType.TEXT),
                    Column("ct", SqlType.TEXT),
                ],
            )
        )
        self.database.create_table(
            TableSchema(
                "pa",
                [Column("ui", SqlType.TEXT), Column("pi", SqlType.TEXT)],
            )
        )
        for table_name in self.target_tables():
            table = self.database.table(table_name)
            if POLICY_COLUMN not in table.schema:
                table.add_column(Column(POLICY_COLUMN, SqlType.BIT_VARYING))
        self.database.register_function(
            COMPLIES_WITH, self._compliance_memo, strict=True
        )
        # Tell the engine's optimizer what a rewriter-injected guard looks
        # like, so the policy_guard_hoist pass can recognize and hoist it.
        self.database.policy_function = COMPLIES_WITH
        self.database.policy_column = POLICY_COLUMN
        self._configured = True
        if purposes is not None:
            for purpose in purposes.ordered():
                self.define_purpose(purpose)

    def require_configured(self) -> None:
        """Raise unless :meth:`configure` has run."""
        if not self._configured:
            raise ConfigurationError(
                "access control is not configured; call configure() first"
            )

    def protect_table(self, name: str) -> None:
        """Bring a table created *after* configuration under protection.

        Appends the ``policy`` column (existing rows get NULL — invisible
        until a policy is attached) and invalidates the table's layout.
        """
        self.require_configured()
        key = name.lower()
        if key in META_TABLES:
            raise PolicyError(f"{name!r} is a meta-data table")
        table = self.database.table(key)
        if POLICY_COLUMN not in table.schema:
            table.add_column(Column(POLICY_COLUMN, SqlType.BIT_VARYING))
        self.invalidate_layouts(key)
        self.bump_policy_epoch(metadata_changed=True)

    def target_tables(self) -> list[str]:
        """The protected tables (every table except the meta-data ones)."""
        return [
            name
            for name in self.database.table_names()
            if name.lower() not in META_TABLES
        ]

    # -- purposes ---------------------------------------------------------------------

    def define_purpose(self, purpose: Purpose) -> None:
        """Add a purpose to *Ps* and persist it in Pr."""
        self.require_configured()
        self.purposes.add(purpose)
        self.database.table("pr").insert_row((purpose.id, purpose.description))
        self.bump_policy_epoch(metadata_changed=True)

    def remove_purpose(self, purpose_id: str) -> Purpose:
        """Remove a purpose from *Ps* and from Pr.

        Policy masks referencing the purpose become stale; run the policy
        manager's migration to rewrite them (DESIGN.md §6).
        """
        self.require_configured()
        purpose = self.purposes.remove(purpose_id)
        self.database.table("pr").delete_rows(lambda row: row[0] == purpose_id)
        self.bump_policy_epoch(metadata_changed=True)
        return purpose

    # -- categorization (Pm) -------------------------------------------------------------

    def categorize(self, table: str, column: str, category: DataCategory) -> None:
        """Record that ``table.column`` belongs to ``category``."""
        self.require_configured()
        table_key, column_key = table.lower(), column.lower()
        schema = self.database.table(table_key).schema
        if column_key not in schema:
            raise PolicyError(f"table {table!r} has no column {column!r}")
        if category not in self.categories:
            raise PolicyError(f"category {category!r} is not registered")
        pm = self.database.table("pm")
        pm.delete_rows(lambda row: row[0] == column_key and row[1] == table_key)
        pm.insert_row((column_key, table_key, category.code))
        self._category_map[(table_key, column_key)] = category
        self.bump_policy_epoch(metadata_changed=True)

    def category(self, table: str, column: str) -> DataCategory:
        """Categorizer protocol: Pm lookup with the *generic* fallback (§4.1).

        Resolved as of the enforcement version, so snapshot-pinned readers
        see the categorization their snapshot began under.
        """
        key = (table.lower(), column.lower())
        state = self._acm_state(self._enforcement_version())
        if state is not None:
            return state.categories.get(key, self.categories.default)
        return self._category_map.get(key, self.categories.default)

    # -- purpose authorizations (Pa) ---------------------------------------------------------

    def grant_purpose(self, user_id: str, purpose_id: str) -> None:
        """Authorize a user for a purpose (one Pa row)."""
        self.require_configured()
        self.purposes.get(purpose_id)  # validates existence
        self.database.table("pa").insert_row((user_id, purpose_id))

    def revoke_purpose(self, user_id: str, purpose_id: str) -> int:
        """Remove a user's authorization; returns removed-row count."""
        self.require_configured()
        return self.database.table("pa").delete_rows(
            lambda row: row[0] == user_id and row[1] == purpose_id
        )

    def is_authorized(self, user_id: str, purpose_id: str) -> bool:
        """Whether Pa contains ⟨user, purpose⟩."""
        self.require_configured()
        return any(
            row[0] == user_id and row[1] == purpose_id
            for row in self.database.table("pa")
        )

    def known_user(self, user_id: str) -> bool:
        """Whether the user appears in Pa at all (holds any grant).

        Users are not a first-class catalog entity in the paper — Pa is the
        only place they exist — so "known" means "has at least one purpose
        authorization".  Sessions use this to reject unknown users up front
        instead of at first execution.
        """
        self.require_configured()
        return any(row[0] == user_id for row in self.database.table("pa"))

    # -- schema / layout services -----------------------------------------------------------

    def table_columns(self, table: str) -> tuple[str, ...]:
        """SchemaProvider protocol: logical columns (the policy column hidden)."""
        schema = self.database.table(table).schema
        return tuple(
            column.name.lower()
            for column in schema.columns
            if column.name.lower() != POLICY_COLUMN
        )

    def has_table(self, table: str) -> bool:
        """SchemaProvider protocol: target-table existence."""
        key = table.lower()
        return self.database.has_table(key) and key not in META_TABLES

    def layout(self, table: str) -> MaskLayout:
        """The mask layout of a target table at the enforcement version.

        Cached by *content* — ⟨table, columns, purpose ids⟩ as resolved at
        the enforcement version — so mask churn (which moves the catalog
        version without touching the taxonomy) keeps hitting one cached
        layout, while taxonomy edits and schema changes resolve to a
        different key.  Pinned readers resolve the key as of their snapshot
        and so keep (or rebuild) *their* layout untouched.
        """
        self.require_configured()
        key = table.lower()
        if key in META_TABLES or not self.database.has_table(key):
            raise PolicyError(f"{table!r} is not a protected target table")
        version = self._enforcement_version()
        columns = self.table_columns(key)
        purposes = self._purposes_at(version)
        cache_key = (key, columns, purposes.ids())
        layout = self._layouts.get(cache_key)
        if layout is None:
            layout = MaskLayout(key, columns, purposes, self.categories)
            while len(self._layouts) >= self._LAYOUT_CACHE_LIMIT:
                self._layouts.pop(next(iter(self._layouts)))
            self._layouts[cache_key] = layout
        return layout

    def invalidate_layouts(self, table: str | None = None) -> None:
        """Drop cached layouts after a schema or purpose-set change."""
        if table is None:
            self._layouts.clear()
        else:
            key = table.lower()
            for cache_key in [k for k in self._layouts if k[0] == key]:
                del self._layouts[cache_key]

    # -- policy installation -----------------------------------------------------------------

    def apply_policy(self, policy: Policy) -> int:
        """Encode a policy and store its mask into matching rows.

        Returns the number of rows whose ``policy`` column was written.  A
        ``tuple_selector`` of ``(column, value)`` selects rows by equality;
        ``None`` covers the whole table (the paper's ``tp = ⊥``).
        """
        self.require_configured()
        layout = self.layout(policy.table)
        policy.validate(layout.columns, self.purposes)
        mask = layout.policy_mask(policy)
        return self.store_policy_mask(policy.table, mask, policy.tuple_selector)

    def store_policy_mask(
        self,
        table: str,
        mask: BitString,
        tuple_selector: tuple[str, object] | None = None,
    ) -> int:
        """Store a pre-encoded policy mask (used by the workload generators)."""
        self.require_configured()
        target = self.database.table(table)
        self.bump_policy_epoch()
        if tuple_selector is None:
            return target.set_column_value(POLICY_COLUMN, mask)
        column, value = tuple_selector
        index = target.schema.column_index(column)
        return target.set_column_value(
            POLICY_COLUMN, mask, predicate=lambda row: row[index] == value
        )

    def policy_masks(self, table: str) -> list[BitString | None]:
        """The stored policy masks of a table, in row order."""
        return self.database.table(table).column_values(POLICY_COLUMN)

    def insert_with_policy(
        self,
        table: str,
        values,
        policy: "Policy | BitString",
        columns: tuple[str, ...] = (),
    ) -> None:
        """Insert one record that "already includes the policy" (§5.3).

        ``values`` covers the logical columns (in ``columns`` order, or
        schema order when ``columns`` is empty); ``policy`` is either a
        :class:`~repro.core.policy.Policy` (encoded against this table's
        layout) or a pre-encoded mask.
        """
        self.require_configured()
        layout = self.layout(table)
        if isinstance(policy, BitString):
            mask = policy
            if len(mask) % layout.rule_length != 0:
                raise PolicyError(
                    f"mask length {len(mask)} is not a multiple of the "
                    f"rule length {layout.rule_length} of {table!r}"
                )
        else:
            if policy.table.lower() != table.lower():
                raise PolicyError(
                    f"policy targets {policy.table!r}, not {table!r}"
                )
            policy.validate(layout.columns, self.purposes)
            mask = layout.policy_mask(policy)
        target = self.database.table(table)
        logical = columns or self.table_columns(table)
        if len(tuple(values)) != len(logical):
            raise PolicyError(
                f"expected {len(logical)} values for columns {logical}, "
                f"got {len(tuple(values))}"
            )
        target.insert_row(
            (*values, mask), (*logical, POLICY_COLUMN)
        )
        self.bump_policy_epoch()
