"""User sessions: the client-facing entry point.

A :class:`Session` binds an :class:`~repro.core.monitor.EnforcementMonitor`
to a user and a current access purpose, giving application code the shape a
protected DBMS connection would have::

    session = Session(monitor, user="alice", purpose="p6")
    session.query("select avg(beats) from sensed_data")
    session.set_purpose("p1")
    session.execute("update users set watch_id = 'w' where user_id = 'u'")

Every statement goes through the monitor (signature derivation → rewriting
→ execution), with the session's user checked against the purpose on each
call, so a purpose switch takes effect immediately and is individually
auditable.

Construction validates both ends of the binding: the purpose must exist in
*Ps* and the user must be known to the authorizer (hold at least one Pa
grant, or a role assignment under the role extension) — an unknown user is
rejected up front rather than at first execution.  Purpose switches are
recorded in the monitor's audit log, so per-session purpose churn is
traceable after the fact.
"""

from __future__ import annotations

from ..engine import ResultSet
from ..errors import PolicyError
from .monitor import EnforcementMonitor


class Session:
    """A user's connection-like handle onto the protected database."""

    def __init__(self, monitor: EnforcementMonitor, user: str, purpose: str):
        self.monitor = monitor
        self.user = user
        self._purpose = purpose
        monitor.admin.purposes.get(purpose)  # validates
        knows = getattr(monitor.authorizer, "known_user", None)
        if knows is None:
            knows = monitor.admin.known_user
        if not knows(user):
            raise PolicyError(
                f"unknown user {user!r}: no purpose authorization on record"
            )

    @property
    def purpose(self) -> str:
        """The session's current access purpose."""
        return self._purpose

    def set_purpose(self, purpose: str) -> None:
        """Switch the declared access purpose for subsequent statements.

        The switch itself is audited (outcome ``purpose_switch``) under the
        *new* purpose, with the old one recorded in the statement text.
        """
        self.monitor.admin.purposes.get(purpose)
        previous, self._purpose = self._purpose, purpose
        self.monitor._audit(
            self.user,
            purpose,
            "-",
            f"set purpose {previous} -> {purpose}",
            "purpose_switch",
        )

    # -- statement execution ------------------------------------------------------

    def query(self, sql: str) -> ResultSet:
        """Run a SELECT under the session's user and purpose."""
        return self.monitor.execute(sql, self._purpose, user=self.user)

    def execute(self, sql: str) -> ResultSet | int:
        """Run any SELECT/DML statement under the session's user/purpose."""
        return self.monitor.execute_statement(sql, self._purpose, user=self.user)

    def explain(self, sql: str) -> str:
        """The rewritten query's plan, as the engine will execute it."""
        rewritten = self.monitor.rewrite(sql, self._purpose)
        return self.monitor.database.explain(rewritten)

    def rewritten_sql(self, sql: str) -> str:
        """What the monitor would actually submit for this statement."""
        return self.monitor.rewrite_sql(sql, self._purpose)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session(user={self.user!r}, purpose={self._purpose!r})"
