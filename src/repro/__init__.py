"""repro — action-aware purpose-based access control for relational DBMSs.

A from-scratch reproduction of Colombo & Ferrari, "Efficient Enforcement of
Action-Aware Purpose-Based Access Control within Relational Database
Management Systems" (IEEE TKDE, DOI 10.1109/TKDE.2015.2411595).

Quickstart::

    from repro import Database, AccessControlManager, EnforcementMonitor
    from repro.core import Purpose, PurposeSet

    db = Database("mydb")
    db.execute("create table t(a integer, b text)")
    admin = AccessControlManager(db)
    admin.configure(purposes=PurposeSet([Purpose("p1", "research")]))
    monitor = EnforcementMonitor(admin)
    result = monitor.execute("select a from t", purpose="p1")

See :mod:`repro.workload` for the paper's running example and
:mod:`repro.bench` for the evaluation harness.
"""

from .engine import BitString, Column, Database, ResultSet, SqlType, TableSchema
from .core import (
    AccessControlManager,
    ActionType,
    Aggregation,
    CategoryRegistry,
    DataCategory,
    EnforcementMonitor,
    Indirection,
    JointAccess,
    MaskLayout,
    Multiplicity,
    Policy,
    PolicyManager,
    PolicyRule,
    Purpose,
    PurposeSet,
    QuerySignature,
    SignatureDeriver,
    complies_with,
    rewrite_query,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "BitString", "Column", "Database", "ResultSet", "SqlType", "TableSchema",
    "AccessControlManager", "ActionType", "Aggregation", "CategoryRegistry",
    "DataCategory", "EnforcementMonitor", "Indirection", "JointAccess",
    "MaskLayout", "Multiplicity", "Policy", "PolicyManager", "PolicyRule",
    "Purpose", "PurposeSet", "QuerySignature", "SignatureDeriver",
    "complies_with", "rewrite_query", "ReproError", "__version__",
]
