"""Client for the enforced-query service.

:class:`Client` speaks the wire protocol of :mod:`repro.server.protocol`
synchronously over one TCP connection: every call sends a frame and blocks
for its response.  Error responses are raised as
:class:`~repro.errors.RemoteError` carrying the protocol code, so callers
can distinguish a policy denial from a parse or engine failure::

    with Client(*server.address) as client:
        client.hello("alice", "p6")
        result = client.query("select avg(beats) from sensed_data")
        try:
            client.query("select * from users")
        except RemoteError as exc:
            if exc.code == "server_busy":
                ...  # back off and retry

Used by the test suite, the ``shards`` benchmark and
``examples/server_demo.py``; it is deliberately the only supported way to
talk to the server in-process or across machines.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass

from ..errors import (
    RemoteCatalogConflictError,
    RemoteError,
    RemoteSnapshotInvalidatedError,
    RemoteTxnConflictError,
    WireProtocolError,
)
from .protocol import (
    E_CATALOG_CONFLICT,
    E_SNAPSHOT_INVALIDATED,
    E_TXN_CONFLICT,
    recv_message,
    rows_from_wire,
    send_message,
)

#: Wire code → typed exception; anything unlisted raises plain RemoteError.
_TYPED_ERRORS: dict = {
    E_TXN_CONFLICT: RemoteTxnConflictError,
    E_CATALOG_CONFLICT: RemoteCatalogConflictError,
    E_SNAPSHOT_INVALIDATED: RemoteSnapshotInvalidatedError,
}


@dataclass
class QueryResult:
    """One SELECT's answer: columns, row tuples, cache/check metadata.

    ``route`` and ``epoch`` are populated only by the sharded
    :class:`~repro.server.async_server.AsyncQueryServer` (the scatter
    route taken and the policy epoch the scatter executed under); the
    thread-per-connection server leaves them ``None``.
    """

    columns: list[str]
    rows: list[tuple]
    cache_hit: bool
    checks: int
    route: "str | None" = None
    epoch: "int | None" = None

    def __len__(self) -> int:
        return len(self.rows)


class Client:
    """A synchronous connection to a :class:`~repro.server.QueryServer`."""

    def __init__(self, host: str, port: int, timeout: float | None = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.session_id: str | None = None

    # -- plumbing -----------------------------------------------------------------

    def _call(self, request: dict) -> dict:
        send_message(self._sock, request)
        response = recv_message(self._sock)
        if response is None:
            raise WireProtocolError("server closed the connection")
        if not response.get("ok"):
            error = response.get("error") or {}
            code = str(error.get("code", "internal_error"))
            raise _TYPED_ERRORS.get(code, RemoteError)(
                code, str(error.get("message", ""))
            )
        return response

    @staticmethod
    def _result(response: dict) -> QueryResult:
        payload = response["result"]
        return QueryResult(
            columns=list(payload["columns"]),
            rows=rows_from_wire(payload),
            cache_hit=bool(response.get("cache_hit", False)),
            checks=int(response.get("checks", 0)),
            route=response.get("route"),
            epoch=response.get("epoch"),
        )

    # -- session ------------------------------------------------------------------

    def hello(self, user: str, purpose: str) -> str:
        """Authenticate the connection; returns the server session id."""
        response = self._call({"op": "hello", "user": user, "purpose": purpose})
        self.session_id = str(response["session"])
        return self.session_id

    def set_purpose(self, purpose: str) -> None:
        """Switch the session's access purpose for subsequent statements."""
        self._call({"op": "set_purpose", "purpose": purpose})

    def bye(self) -> None:
        """Close the session server-side (the socket stays usable to close)."""
        try:
            self._call({"op": "bye"})
        finally:
            self.session_id = None

    def close(self) -> None:
        """Drop the TCP connection (the server reaps the session)."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- statements ---------------------------------------------------------------

    def query(self, sql: str, params=None) -> QueryResult:
        """Run an enforced SELECT (or set-operation chain)."""
        request: dict = {"op": "query", "sql": sql}
        if params is not None:
            request["params"] = params
        return self._result(self._call(request))

    def execute(self, sql: str) -> "QueryResult | int":
        """Run any statement; DML returns the affected-row count.

        Transaction control (``BEGIN``/``COMMIT``/``ROLLBACK``) is accepted
        here too and returns ``0``, mirroring
        :meth:`repro.engine.database.Database.execute`; the dedicated
        :meth:`begin`/:meth:`commit`/:meth:`rollback` methods expose the
        transaction id and commit timestamp.
        """
        response = self._call({"op": "execute", "sql": sql})
        if "rowcount" in response:
            return int(response["rowcount"])
        if "result" in response:
            return self._result(response)
        return 0  # transaction control: acknowledged, no rows affected

    # -- transactions ---------------------------------------------------------------

    def begin(self) -> int:
        """Open a snapshot-isolation transaction; returns its id."""
        response = self._call({"op": "execute", "sql": "begin"})
        return int(response["txn"])

    def commit(self) -> int:
        """Commit the open transaction; returns its commit timestamp.

        A first-committer-wins loss surfaces as
        :class:`~repro.errors.RemoteTxnConflictError` (code
        ``txn_conflict``) for row/table data or
        :class:`~repro.errors.RemoteCatalogConflictError` (code
        ``catalog_conflict``) for DDL racing on a catalog entry — the
        transaction is already rolled back server-side; retry the whole
        transaction.  Under ``REPRO_REVOCATION=failfast`` a doomed snapshot
        raises :class:`~repro.errors.RemoteSnapshotInvalidatedError`.
        """
        response = self._call({"op": "execute", "sql": "commit"})
        return int(response["commit_ts"])

    def rollback(self) -> None:
        """Abort the open transaction, discarding its staged writes."""
        self._call({"op": "execute", "sql": "rollback"})

    def prepare(self, sql: str) -> str:
        """Prepare a statement under the current purpose; returns its id."""
        response = self._call({"op": "prepare", "sql": sql})
        return str(response["statement"])

    def execute_prepared(self, statement_id: str, params=None) -> QueryResult:
        """Execute a previously prepared statement under ``params``."""
        request: dict = {"op": "execute_prepared", "statement": statement_id}
        if params is not None:
            request["params"] = params
        return self._result(self._call(request))

    def close_prepared(self, statement_id: str) -> None:
        """Release a prepared statement server-side."""
        self._call({"op": "close_prepared", "statement": statement_id})

    # -- observability ------------------------------------------------------------

    def stats(self) -> dict:
        """The server's stats object (sessions, admission, plan cache)."""
        return self._call({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The server's Prometheus-style metrics text exposition."""
        return str(self._call({"op": "stats"})["metrics"])

    def explain(self, sql: str, analyze: bool = False) -> list[str]:
        """EXPLAIN [ANALYZE] an enforced query; returns the plan lines."""
        prefix = "explain analyze" if analyze else "explain"
        result = self._result(self._call({"op": "execute", "sql": f"{prefix} {sql}"}))
        return [row[0] for row in result.rows]
