"""Per-connection session state and its registry.

A :class:`ServerSession` is the server-side face of one authenticated
connection: the underlying :class:`~repro.core.session.Session` (user +
current purpose, both validated at ``hello`` time), the connection's open
prepared statements, and per-session counters surfaced by ``stats``.

Prepared statements are owned by the session that created them — statement
ids are meaningless on other connections and everything is released when the
session closes (``bye`` or disconnect).  A prepared statement keeps the
purpose it was prepared under; a later ``set_purpose`` affects subsequent
``query``/``execute``/``prepare`` calls but never silently repurposes an
existing plan (re-prepare to pick up the new purpose).
"""

from __future__ import annotations

import itertools
import threading

from ..core.monitor import EnforcementMonitor, PreparedEnforcedQuery
from ..core.session import Session
from ..errors import WireProtocolError


class ServerSession:
    """One connection's authenticated state."""

    def __init__(self, session_id: str, session: Session):
        self.id = session_id
        self.session = session
        self.prepared: dict[str, PreparedEnforcedQuery] = {}
        self._statement_ids = itertools.count(1)
        self.statements = 0
        self.denials = 0
        #: The session's open transaction handle
        #: (:class:`~repro.engine.mvcc.Transaction`), or ``None``.  Held
        #: here rather than in a context var because each statement of the
        #: session may run on a different pool worker thread; the server
        #: activates it per statement with
        #: :func:`~repro.engine.mvcc.txn_scope`.
        self.txn = None
        self.commits = 0
        self.rollbacks = 0
        self.conflicts = 0

    @property
    def user(self) -> str:
        return self.session.user

    @property
    def purpose(self) -> str:
        return self.session.purpose

    def add_prepared(self, prepared: PreparedEnforcedQuery) -> str:
        """Register a prepared statement; returns its connection-local id."""
        statement_id = f"s{next(self._statement_ids)}"
        self.prepared[statement_id] = prepared
        return statement_id

    def get_prepared(self, statement_id: str) -> PreparedEnforcedQuery:
        """Look up a statement id, raising on unknown/closed ids."""
        try:
            return self.prepared[statement_id]
        except KeyError:
            raise WireProtocolError(
                f"unknown prepared statement {statement_id!r}"
            ) from None

    def close_prepared(self, statement_id: str) -> None:
        """Release one prepared statement."""
        self.get_prepared(statement_id)
        del self.prepared[statement_id]

    def describe(self) -> dict:
        """The session's row in the ``stats`` response."""
        return {
            "user": self.user,
            "purpose": self.purpose,
            "prepared": len(self.prepared),
            "statements": self.statements,
            "denials": self.denials,
            "txn_open": self.txn is not None,
            "commits": self.commits,
            "rollbacks": self.rollbacks,
            "conflicts": self.conflicts,
        }

    def abandon_txn(self) -> None:
        """Roll back the open transaction, if any (disconnect path)."""
        txn = self.txn
        self.txn = None
        if txn is not None:
            txn.manager.rollback(txn)


class SessionManager:
    """Registry of live sessions, keyed by server-assigned session id."""

    def __init__(self, monitor: EnforcementMonitor):
        self.monitor = monitor
        self._sessions: dict[str, ServerSession] = {}
        self._session_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._opened = 0

    def open(self, user: str, purpose: str) -> ServerSession:
        """Authenticate and register a session (``hello``).

        Validation is the core :class:`Session`'s: the purpose must exist
        and the user must be known to the authorizer — failures surface as
        :class:`~repro.errors.PolicyError` before any session state exists.
        """
        core_session = Session(self.monitor, user=user, purpose=purpose)
        with self._lock:
            session = ServerSession(f"c{next(self._session_ids)}", core_session)
            self._sessions[session.id] = session
            self._opened += 1
        return session

    def close(self, session_id: str) -> None:
        """Drop a session and everything it holds; unknown ids are ignored.

        An open transaction is rolled back — a disconnected client can
        never leave staged writes pinning snapshots alive.
        """
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is not None:
            session.abandon_txn()

    def get(self, session_id: str) -> ServerSession | None:
        """The live session for an id, or ``None``."""
        with self._lock:
            return self._sessions.get(session_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> dict:
        """Open/lifetime counts plus a per-session breakdown."""
        with self._lock:
            return {
                "open": len(self._sessions),
                "opened_total": self._opened,
                "sessions": {
                    session.id: session.describe()
                    for session in self._sessions.values()
                },
            }
