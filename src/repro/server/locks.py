"""A writer-preferring readers–writer lock.

The server's concurrency discipline in one object: enforced SELECT traffic
holds the lock in *read* mode and runs in parallel, while DML and policy
mutations (anything that bumps the policy epoch or rewrites table contents)
hold it in *write* mode and run alone.  Writer preference — arriving readers
queue behind a waiting writer — keeps a steady SELECT stream from starving
policy changes indefinitely.

The lock is not reentrant in either mode, and upgrades (read → write while
holding read) deadlock by construction; the server never nests acquisitions.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Shared/exclusive lock with writer preference."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._readers_ok = threading.Condition(self._mutex)
        self._writer_ok = threading.Condition(self._mutex)
        self._active_readers = 0
        self._waiting_writers = 0
        self._writer_active = False

    # -- read side ---------------------------------------------------------------

    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then enter shared."""
        with self._mutex:
            while self._writer_active or self._waiting_writers:
                self._readers_ok.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        """Leave shared mode, waking a waiting writer when last out."""
        with self._mutex:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._writer_ok.notify()

    # -- write side --------------------------------------------------------------

    def acquire_write(self) -> None:
        """Block until the lock is free, then enter exclusive mode."""
        with self._mutex:
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers:
                    self._writer_ok.wait()
            finally:
                self._waiting_writers -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Leave exclusive mode, preferring a queued writer over readers."""
        with self._mutex:
            self._writer_active = False
            if self._waiting_writers:
                self._writer_ok.notify()
            else:
                self._readers_ok.notify_all()

    # -- context managers --------------------------------------------------------

    @contextmanager
    def read_locked(self):
        """``with lock.read_locked(): ...`` — shared section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked(): ...`` — exclusive section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (for stats/tests) ----------------------------------------

    def state(self) -> dict:
        """A point-in-time snapshot of the lock's occupancy."""
        with self._mutex:
            return {
                "active_readers": self._active_readers,
                "waiting_writers": self._waiting_writers,
                "writer_active": self._writer_active,
            }
