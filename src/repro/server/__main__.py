"""Command-line entry point: ``python -m repro.server --port 7878``.

Serves the *patients* running example over the wire protocol: builds the
scenario, installs scattered policies at the requested selectivity, grants
the demo users their purposes, attaches an audit log and listens until
interrupted.  Connect with :class:`repro.server.Client`::

    from repro.server import Client
    with Client("127.0.0.1", 7878) as client:
        client.hello("demo", "p6")
        print(client.query("select avg(beats) from sensed_data").rows)
"""

from __future__ import annotations

import argparse

from ..core import AuditLog, default_purpose_set
from ..workload import apply_experiment_policies, build_patients_scenario
from .async_server import AsyncQueryServer
from .server import QueryServer


def _parse_grants(raw: list[str]) -> list[tuple[str, str]]:
    """``user=p1,p6`` option values → (user, purpose) pairs."""
    grants: list[tuple[str, str]] = []
    for entry in raw:
        user, _, purposes = entry.partition("=")
        if not user or not purposes:
            raise SystemExit(f"--grant expects user=p1,p2,... got {entry!r}")
        for purpose in purposes.split(","):
            grants.append((user, purpose.strip()))
    return grants


def main(argv: list[str] | None = None) -> int:
    """Build the demo scenario and serve it until interrupted."""
    parser = argparse.ArgumentParser(
        prog="repro-server",
        description="Serve the patients scenario over the query protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7878)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--max-pending", type=int, default=32,
        help="admission queue bound; overload answers server_busy",
    )
    parser.add_argument("--patients", type=int, default=50)
    parser.add_argument("--samples", type=int, default=20)
    parser.add_argument(
        "--selectivity", type=float, default=0.4,
        help="scattered-policy selectivity installed at startup",
    )
    parser.add_argument(
        "--grant", action="append", default=[],
        metavar="USER=P1,P2",
        help="purpose grants (default: user 'demo' gets every purpose)",
    )
    parser.add_argument(
        "--async", dest="use_async", action="store_true",
        help="serve with the asyncio event-loop front end (implies sharding)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="shard-worker count for the async server (implies --async)",
    )
    parser.add_argument(
        "--backend", choices=("inline", "process"), default="inline",
        help="shard transport: in-process workers or one process per shard",
    )
    args = parser.parse_args(argv)
    use_async = args.use_async or args.shards > 1

    grants = _parse_grants(args.grant) or [
        ("demo", purpose.id) for purpose in default_purpose_set().ordered()
    ]
    if use_async:
        from ..shard import ShardCoordinator, WorldRecipe

        recipe = WorldRecipe.for_patients(
            patients=args.patients,
            samples=args.samples,
            selectivity=args.selectivity,
            grants=tuple(grants),
        )
        coordinator = ShardCoordinator(
            recipe, max(1, args.shards), backend=args.backend
        )
        coordinator.monitor.attach_audit(AuditLog(coordinator.database))
        server: "AsyncQueryServer | QueryServer" = AsyncQueryServer(
            coordinator,
            host=args.host,
            port=args.port,
            max_concurrent=args.workers,
            max_pending=args.max_pending,
        )
        flavor = (
            f"asyncio, {coordinator.shard_count} {args.backend} shard(s)"
        )
    else:
        scenario = build_patients_scenario(
            patients=args.patients, samples_per_patient=args.samples
        )
        apply_experiment_policies(scenario, args.selectivity, seed=411595)
        for user, purpose in grants:
            scenario.admin.grant_purpose(user, purpose)
        scenario.monitor.attach_audit(AuditLog(scenario.database))
        server = QueryServer(
            scenario.monitor,
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_pending=args.max_pending,
        )
        flavor = f"threaded, {args.workers} workers"

    with server:
        host, port = server.address
        users = sorted({user for user, _ in grants})
        print(f"repro.server listening on {host}:{port} ({flavor})")
        print(
            f"scenario: {args.patients} patients x {args.samples} samples, "
            f"selectivity {args.selectivity:g}; users: {', '.join(users)}"
        )
        try:
            import threading

            threading.Event().wait()  # serve until interrupted
        except KeyboardInterrupt:
            print("\nshutting down")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
