"""Admission control: a bounded work queue in front of a thread pool.

Every statement a connection submits runs on one of ``workers`` pool
threads; at most ``max_pending`` submissions may wait in the queue.  A
submission that finds the queue full is rejected *immediately* with
:class:`~repro.errors.ServerBusyError` — the connection thread turns that
into a ``server_busy`` response, so overload degrades into fast, explicit
backpressure instead of unbounded thread/queue growth or client hangs.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future

from ..errors import ServerBusyError

#: Queue sentinel that tells a worker thread to exit.
_STOP = object()


class WorkerPool:
    """Fixed worker threads draining a bounded submission queue."""

    def __init__(
        self,
        workers: int = 4,
        max_pending: int = 32,
        name: str = "repro-server",
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.workers = workers
        self.max_pending = max_pending
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_pending)
        self._accepting = True
        self._stats_lock = threading.Lock()
        self._submitted = 0
        self._rejected = 0
        self._completed = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"{name}-worker-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, fn, *args) -> "Future":
        """Queue ``fn(*args)``; raises :class:`ServerBusyError` when full."""
        if not self._accepting:
            raise ServerBusyError("worker pool is shut down")
        future: Future = Future()
        try:
            self._queue.put_nowait((future, fn, args))
        except queue.Full:
            with self._stats_lock:
                self._rejected += 1
            raise ServerBusyError(
                f"admission queue full ({self.max_pending} pending)"
            ) from None
        with self._stats_lock:
            self._submitted += 1
        return future

    def run(self, fn, *args):
        """Submit and wait: the connection thread's synchronous entry point."""
        return self.submit(fn, *args).result()

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            future, fn, args = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # delivered to the submitter
                future.set_exception(exc)
            finally:
                with self._stats_lock:
                    self._completed += 1

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work, let queued work drain, stop the workers."""
        self._accepting = False
        for _ in self._threads:
            self._queue.put(_STOP)
        if wait:
            for thread in self._threads:
                thread.join()

    def stats(self) -> dict:
        """Submission/rejection/completion counters and queue occupancy."""
        with self._stats_lock:
            return {
                "workers": self.workers,
                "max_pending": self.max_pending,
                "pending": self._queue.qsize(),
                "submitted": self._submitted,
                "rejected": self._rejected,
                "completed": self._completed,
            }
