"""Wire protocol: length-prefixed JSON frames and the error-code mapping.

One message is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Requests are objects with an ``op`` field (the verb)
plus verb-specific arguments; responses carry ``ok: true`` with result
fields, or ``ok: false`` with an ``error: {code, message}`` object.

The error codes make enforcement outcomes *observable* rather than
exceptional: a policy denial (``unauthorized_purpose`` / ``policy_denied``)
is an expected answer a client can branch on, distinct from a malformed
query (``parse_error``), an engine fault (``engine_error``), overload
backpressure (``server_busy``) or a protocol violation (``protocol_error``).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

from ..engine import ResultSet
from ..errors import (
    AccessControlError,
    CatalogConflictError,
    EngineError,
    ServerBusyError,
    SnapshotInvalidatedError,
    SqlError,
    TransactionError,
    UnauthorizedPurposeError,
    WireProtocolError,
    WriteConflictError,
)

#: Frame header: one big-endian u32 payload length.
HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload, to keep a misbehaving (or
#: misframed) peer from making the server buffer arbitrary amounts.
MAX_FRAME = 8 * 1024 * 1024

# -- error codes ---------------------------------------------------------------

E_UNAUTHORIZED = "unauthorized_purpose"
E_POLICY = "policy_denied"
E_PARSE = "parse_error"
E_ENGINE = "engine_error"
E_BUSY = "server_busy"
E_PROTOCOL = "protocol_error"
E_NO_SESSION = "no_session"
E_INTERNAL = "internal_error"
E_TXN_CONFLICT = "txn_conflict"
E_CATALOG_CONFLICT = "catalog_conflict"
E_SNAPSHOT_INVALIDATED = "snapshot_invalidated"
E_TXN = "txn_error"

#: Codes a client should treat as an enforcement decision, not a fault.
DENIAL_CODES = frozenset({E_UNAUTHORIZED, E_POLICY})

#: Codes that mean "retry the whole transaction": the statement was valid
#: but lost a first-committer-wins race (row/table data, a catalog entry)
#: or its snapshot was revoked under ``REPRO_REVOCATION=failfast``.
RETRYABLE_CODES = frozenset(
    {E_TXN_CONFLICT, E_CATALOG_CONFLICT, E_SNAPSHOT_INVALIDATED}
)


def error_code_for(exc: BaseException) -> str:
    """Map an exception from the enforcement stack to a protocol code.

    Order matters: :class:`UnauthorizedPurposeError` is an
    :class:`AccessControlError`, and :class:`SqlError` / :class:`EngineError`
    are siblings under :class:`ReproError`.
    """
    if isinstance(exc, UnauthorizedPurposeError):
        return E_UNAUTHORIZED
    if isinstance(exc, AccessControlError):
        return E_POLICY
    if isinstance(exc, SqlError):
        return E_PARSE
    if isinstance(exc, CatalogConflictError):
        return E_CATALOG_CONFLICT
    if isinstance(exc, WriteConflictError):
        return E_TXN_CONFLICT
    if isinstance(exc, SnapshotInvalidatedError):
        return E_SNAPSHOT_INVALIDATED
    if isinstance(exc, TransactionError):
        return E_TXN
    if isinstance(exc, EngineError):
        return E_ENGINE
    if isinstance(exc, ServerBusyError):
        return E_BUSY
    return E_INTERNAL


def ok_response(**fields: object) -> dict:
    """A success response frame."""
    return {"ok": True, **fields}


def error_response(code: str, message: str) -> dict:
    """An error response frame."""
    return {"ok": False, "error": {"code": code, "message": message}}


def result_to_wire(result: ResultSet) -> dict:
    """Serialize a result set (columns + row tuples) for the wire."""
    return {
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
    }


def rows_from_wire(payload: dict) -> list[tuple]:
    """The inverse of :func:`result_to_wire`'s row encoding."""
    return [tuple(row) for row in payload["rows"]]


def _jsonable(value: object) -> str:
    # BitString policy masks (and anything else non-JSON) degrade to text;
    # the protocol is for query results, not for round-tripping masks.
    return str(value)


def send_message(sock: socket.socket, payload: dict) -> None:
    """Frame and send one message."""
    data = json.dumps(payload, separators=(",", ":"), default=_jsonable).encode(
        "utf-8"
    )
    if len(data) > MAX_FRAME:
        raise WireProtocolError(
            f"outgoing frame of {len(data)} bytes exceeds MAX_FRAME"
        )
    sock.sendall(HEADER.pack(len(data)) + data)


def recv_message(sock: socket.socket) -> dict | None:
    """Receive one message; ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exactly(sock, HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireProtocolError(f"incoming frame of {length} bytes exceeds MAX_FRAME")
    data = _recv_exactly(sock, length, allow_eof=False)
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(payload, dict):
        raise WireProtocolError(
            f"expected a JSON object frame, got {type(payload).__name__}"
        )
    return payload


async def send_message_async(writer, payload: dict) -> None:
    """:func:`send_message` for an :class:`asyncio.StreamWriter`."""
    data = json.dumps(payload, separators=(",", ":"), default=_jsonable).encode(
        "utf-8"
    )
    if len(data) > MAX_FRAME:
        raise WireProtocolError(
            f"outgoing frame of {len(data)} bytes exceeds MAX_FRAME"
        )
    writer.write(HEADER.pack(len(data)) + data)
    await writer.drain()


async def recv_message_async(reader) -> dict | None:
    """:func:`recv_message` for an :class:`asyncio.StreamReader`."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF at a frame boundary
        raise WireProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{HEADER.size} bytes)"
        ) from None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireProtocolError(f"incoming frame of {length} bytes exceeds MAX_FRAME")
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from None
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(payload, dict):
        raise WireProtocolError(
            f"expected a JSON object frame, got {type(payload).__name__}"
        )
    return payload


def _recv_exactly(
    sock: socket.socket, count: int, allow_eof: bool
) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise WireProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
