"""Concurrent enforced-query service (DESIGN.md §8).

The paper's monitor is evaluated one query at a time on one connection; this
package is the subsystem that serves the same enforcement pipeline to many
clients at once:

* :class:`QueryServer` — TCP service: length-prefixed JSON protocol, a
  worker pool behind a bounded admission queue, and a readers–writer lock
  giving parallel SELECTs / exclusive DML+policy writes;
* :class:`SessionManager` / :class:`ServerSession` — per-connection
  authenticated state (user, purpose, open prepared statements);
* :class:`Client` — the matching synchronous client;
* :class:`ReadWriteLock`, :class:`WorkerPool` — the concurrency primitives,
  importable on their own.

``python -m repro.server --port 7878`` serves the patients scenario.
"""

from .admission import WorkerPool
from .client import Client, QueryResult
from .locks import ReadWriteLock
from .protocol import (
    DENIAL_CODES,
    E_BUSY,
    E_ENGINE,
    E_INTERNAL,
    E_NO_SESSION,
    E_PARSE,
    E_POLICY,
    E_PROTOCOL,
    E_UNAUTHORIZED,
    MAX_FRAME,
    error_code_for,
    recv_message,
    send_message,
)
from .server import QueryServer
from .sessions import ServerSession, SessionManager

__all__ = [
    "Client",
    "QueryResult",
    "QueryServer",
    "ReadWriteLock",
    "ServerSession",
    "SessionManager",
    "WorkerPool",
    "DENIAL_CODES",
    "E_BUSY",
    "E_ENGINE",
    "E_INTERNAL",
    "E_NO_SESSION",
    "E_PARSE",
    "E_POLICY",
    "E_PROTOCOL",
    "E_UNAUTHORIZED",
    "MAX_FRAME",
    "error_code_for",
    "recv_message",
    "send_message",
]
