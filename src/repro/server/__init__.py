"""Concurrent enforced-query service (DESIGN.md §8).

The paper's monitor is evaluated one query at a time on one connection; this
package is the subsystem that serves the same enforcement pipeline to many
clients at once:

* :class:`QueryServer` — TCP service: length-prefixed JSON protocol, a
  worker pool behind a bounded admission queue, and a readers–writer lock
  giving parallel SELECTs / exclusive DML+policy writes;
* :class:`SessionManager` / :class:`ServerSession` — per-connection
  authenticated state (user, purpose, open prepared statements);
* :class:`Client` — the matching synchronous client;
* :class:`ReadWriteLock`, :class:`WorkerPool` — the concurrency primitives,
  importable on their own;
* :class:`AsyncQueryServer` — the asyncio front end over a hash-sharded
  deployment (:mod:`repro.shard`, DESIGN.md §14): same protocol, one event
  loop instead of a thread per connection, scatter-gather execution.

``python -m repro.server --port 7878`` serves the patients scenario
(add ``--async --shards 3`` for the sharded event-loop server).
"""

from .admission import WorkerPool
from .async_server import AsyncQueryServer
from .client import Client, QueryResult
from .locks import ReadWriteLock
from .protocol import (
    DENIAL_CODES,
    E_BUSY,
    E_ENGINE,
    E_INTERNAL,
    E_NO_SESSION,
    E_PARSE,
    E_POLICY,
    E_PROTOCOL,
    E_UNAUTHORIZED,
    MAX_FRAME,
    error_code_for,
    recv_message,
    recv_message_async,
    send_message,
    send_message_async,
)
from .server import QueryServer
from .sessions import ServerSession, SessionManager

__all__ = [
    "AsyncQueryServer",
    "Client",
    "QueryResult",
    "QueryServer",
    "ReadWriteLock",
    "ServerSession",
    "SessionManager",
    "WorkerPool",
    "DENIAL_CODES",
    "E_BUSY",
    "E_ENGINE",
    "E_INTERNAL",
    "E_NO_SESSION",
    "E_PARSE",
    "E_POLICY",
    "E_PROTOCOL",
    "E_UNAUTHORIZED",
    "MAX_FRAME",
    "error_code_for",
    "recv_message",
    "recv_message_async",
    "send_message",
    "send_message_async",
]
