"""The asyncio front end over a sharded deployment.

:class:`AsyncQueryServer` speaks exactly the wire protocol of
:class:`~repro.server.server.QueryServer` — same verbs, same error codes,
same response shapes — but replaces the thread-per-connection model with
one event loop multiplexing every connection, and replaces the local
monitor with a :class:`~repro.shard.coordinator.ShardCoordinator`:

* SELECTs scatter to the shard workers (or run on the coordinator's local
  replica when the router says ``LOCAL``); DML and policy writes go through
  the coordinator's fenced two-phase epoch broadcast.
* ``BEGIN``/``COMMIT``/``ROLLBACK`` pin a session transaction on the
  coordinator's **local replica**: a shard worker cannot share the
  coordinator's snapshot, so every statement inside an open transaction
  runs locally under :func:`~repro.engine.mvcc.txn_scope` (reported as
  route ``"txn-local"``), and ``COMMIT`` takes the write fence and pushes
  the re-partitioned rows of every written table down to the shards —
  the same resync the autocommit DML path performs.
* Concurrency control is the coordinator's *async* readers–writer fence
  instead of the sync server's thread lock; admission control is a
  semaphore + bounded pending count instead of a worker pool, answering
  overload with the same ``server_busy`` code.
* The event loop runs on one daemon thread, so the blocking
  ``start()``/``stop()``/context-manager lifecycle — and the existing
  synchronous :class:`~repro.server.client.Client` — work unchanged.

The ``stats`` verb gains a ``shards`` section (routing counts, epochs,
fence occupancy, per-shard rows) next to the sections shared with the sync
server.
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import asynccontextmanager
from typing import TYPE_CHECKING

from ..engine import txn_scope
from ..errors import (
    CatalogConflictError,
    ReproError,
    ServerBusyError,
    TransactionError,
    WireProtocolError,
    WriteConflictError,
)
from ..sql import ast, parse_statement

if TYPE_CHECKING:  # import at runtime would close a package cycle:
    # repro.shard.coordinator imports repro.server.protocol, whose package
    # __init__ imports this module.
    from ..shard.coordinator import ShardCoordinator
from .protocol import (
    DENIAL_CODES,
    E_BUSY,
    E_INTERNAL,
    E_NO_SESSION,
    E_PROTOCOL,
    error_code_for,
    error_response,
    ok_response,
    recv_message_async,
    result_to_wire,
    send_message_async,
)
from .server import _wire_params
from .sessions import ServerSession, SessionManager


class AsyncQueryServer:
    """An asyncio TCP query service over a shard coordinator."""

    def __init__(
        self,
        coordinator: "ShardCoordinator",
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrent: int = 8,
        max_pending: int = 32,
    ):
        self.coordinator = coordinator
        self.monitor = coordinator.monitor
        self.host = host
        self.port = port
        self.max_concurrent = max_concurrent
        self.max_pending = max_pending
        self.metrics = coordinator.metrics
        self.metrics.counter(
            "repro_requests_total", "Wire-protocol requests by verb"
        )
        self.metrics.counter(
            "repro_admission_rejections_total",
            "Statements rejected with server_busy by admission control",
        )
        self.metrics.counter(
            "repro_denials_total", "Requests denied by access control"
        )
        self.metrics.gauge(
            "repro_connections", "Currently open client connections"
        )
        self.sessions = SessionManager(self.monitor)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._semaphore: asyncio.Semaphore | None = None
        self._writers: set = set()
        self._conn_tasks: set = set()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._running = False
        self._requests = 0
        self._denials = 0
        self._busy_responses = 0
        self._pending = 0
        self._admitted_total = 0
        self._completed = 0

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "AsyncQueryServer":
        """Start the event-loop thread; returns once the port is bound."""
        if self._running:
            raise RuntimeError("server is already running")
        self._ready.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-async-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("async server failed to start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Signal the loop to shut down and join its thread."""
        if not self._running:
            return
        self._running = False
        assert self._loop is not None and self._stop_event is not None
        self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "AsyncQueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is reachable at (port 0 → assigned)."""
        return (self.host, self.port)

    def submit(self, coro):
        """Run a coroutine on the server's loop from synchronous code.

        The bridge tests and the differential battery use this to drive
        :meth:`~repro.shard.coordinator.ShardCoordinator.policy_write` (and
        friends) so coordinator mutations order against in-flight client
        traffic on the one true loop.  Returns a
        :class:`concurrent.futures.Future`.
        """
        assert self._loop is not None, "server is not running"
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                raise

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._semaphore = asyncio.Semaphore(self.max_concurrent)
        server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._running = True
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            self._running = False
            for writer in list(self._writers):
                writer.close()
            # Drain connection tasks: closed transports end their reads, so
            # they exit on their own — cancellation is a last resort only.
            if self._conn_tasks:
                _done, pending = await asyncio.wait(
                    list(self._conn_tasks), timeout=5
                )
                for task in pending:  # pragma: no cover - stuck statements
                    task.cancel()

    # -- connection loop --------------------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        session: ServerSession | None = None
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await recv_message_async(reader)
                except (WireProtocolError, OSError):
                    return
                if request is None:
                    return
                response, session, keep_open = await self._handle(
                    session, request
                )
                try:
                    await send_message_async(writer, response)
                except (OSError, ConnectionError):
                    return
                if not keep_open:
                    return
        finally:
            if session is not None:
                self.sessions.close(session.id)
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    # -- admission ---------------------------------------------------------------------

    @asynccontextmanager
    async def _admitted(self):
        """Bounded admission: at most ``max_concurrent`` statements run and
        at most ``max_pending`` more wait; everything beyond is ``server_busy``."""
        assert self._semaphore is not None
        if self._pending >= self.max_concurrent + self.max_pending:
            raise ServerBusyError(
                f"admission queue full ({self._pending} statements pending)"
            )
        self._pending += 1
        self._admitted_total += 1
        try:
            async with self._semaphore:
                yield
            self._completed += 1
        finally:
            self._pending -= 1

    # -- dispatch -----------------------------------------------------------------------

    async def _handle(
        self, session: ServerSession | None, request: dict
    ) -> tuple[dict, ServerSession | None, bool]:
        """One request → ``(response, session, keep_connection_open)``."""
        self._requests += 1
        op = request.get("op")
        self.metrics.counter("repro_requests_total").inc(verb=str(op))
        try:
            if op == "hello":
                return self._op_hello(session, request)
            if op == "bye":
                if session is not None:
                    self.sessions.close(session.id)
                return ok_response(goodbye=True), None, False
            if op == "stats":
                self.metrics.gauge("repro_connections").set(len(self._writers))
                return (
                    ok_response(
                        stats=await self.stats(), metrics=self.metrics.render()
                    ),
                    session,
                    True,
                )
            if not isinstance(op, str):
                return (
                    error_response(E_PROTOCOL, "request has no 'op' field"),
                    session,
                    True,
                )
            if session is None:
                return (
                    error_response(
                        E_NO_SESSION, f"{op!r} requires a session; send 'hello'"
                    ),
                    session,
                    True,
                )
            handler = {
                "set_purpose": self._op_set_purpose,
                "query": self._op_query,
                "execute": self._op_execute,
                "prepare": self._op_prepare,
                "execute_prepared": self._op_execute_prepared,
                "close_prepared": self._op_close_prepared,
            }.get(op)
            if handler is None:
                return (
                    error_response(E_PROTOCOL, f"unknown verb {op!r}"),
                    session,
                    True,
                )
            response = handler(session, request)
            if asyncio.iscoroutine(response):
                response = await response
            return response, session, True
        except ServerBusyError as exc:
            self._busy_responses += 1
            self.metrics.counter("repro_admission_rejections_total").inc()
            return error_response(E_BUSY, str(exc)), session, True
        except WireProtocolError as exc:
            return error_response(E_PROTOCOL, str(exc)), session, True
        except ReproError as exc:
            code = error_code_for(exc)
            if code in DENIAL_CODES:
                self._denials += 1
                if session is not None:
                    session.denials += 1
                self.metrics.counter("repro_denials_total").inc()
            return error_response(code, str(exc)), session, True
        except Exception as exc:  # keep the connection alive on server bugs
            return error_response(E_INTERNAL, f"{type(exc).__name__}: {exc}"), (
                session
            ), True

    @staticmethod
    def _required(request: dict, field: str) -> object:
        try:
            return request[field]
        except KeyError:
            raise WireProtocolError(
                f"{request.get('op')!r} requires a {field!r} field"
            ) from None

    # -- session verbs ------------------------------------------------------------------

    def _op_hello(
        self, session: ServerSession | None, request: dict
    ) -> tuple[dict, ServerSession, bool]:
        if session is not None:
            return (
                error_response(
                    E_PROTOCOL, "session already established on this connection"
                ),
                session,
                True,
            )
        user = str(self._required(request, "user"))
        purpose = str(self._required(request, "purpose"))
        opened = self.sessions.open(user, purpose)
        return (
            ok_response(session=opened.id, user=user, purpose=purpose),
            opened,
            True,
        )

    def _op_set_purpose(self, session: ServerSession, request: dict) -> dict:
        purpose = str(self._required(request, "purpose"))
        session.session.set_purpose(purpose)
        return ok_response(purpose=purpose)

    def _op_close_prepared(self, session: ServerSession, request: dict) -> dict:
        statement_id = str(self._required(request, "statement"))
        session.close_prepared(statement_id)
        return ok_response(closed=statement_id)

    # -- statement verbs (admission-controlled, coordinator-executed) --------------------

    async def _op_query(self, session: ServerSession, request: dict) -> dict:
        sql = str(self._required(request, "sql"))
        params = _wire_params(request.get("params"))
        async with self._admitted():
            return await self._run_select(session, sql, params)

    async def _op_execute(self, session: ServerSession, request: dict) -> dict:
        sql = str(self._required(request, "sql"))
        statement = parse_statement(sql)  # parse errors answered inline
        async with self._admitted():
            if isinstance(statement, (ast.Begin, ast.Commit, ast.Rollback)):
                return await self._run_txn(session, statement)
            if isinstance(statement, ast.Explain):
                if session.txn is not None:
                    with txn_scope(session.txn):
                        result = self.monitor.explain(
                            statement.statement,
                            session.purpose,
                            user=session.user,
                            analyze=statement.analyze,
                        )
                    return ok_response(
                        result=result_to_wire(result), explain=True
                    )
                result = await self.coordinator.explain(
                    statement.statement,
                    session.purpose,
                    user=session.user,
                    analyze=statement.analyze,
                )
                return ok_response(result=result_to_wire(result), explain=True)
            if isinstance(statement, (ast.Select, ast.SetOperation)):
                return await self._run_select(session, sql, None)
            if session.txn is not None:
                # Transactional DML stages privately on the local replica —
                # no fence needed; the write-write race is settled at COMMIT
                # (first committer wins) and shards see the rows at resync.
                await asyncio.sleep(0)
                with txn_scope(session.txn):
                    affected = self.monitor.execute_statement(
                        sql, session.purpose, user=session.user
                    )
                session.statements += 1
                return ok_response(rowcount=int(affected))
            affected = await self.coordinator.execute(
                sql, session.purpose, user=session.user
            )
            session.statements += 1
            return ok_response(rowcount=affected)

    async def _op_prepare(self, session: ServerSession, request: dict) -> dict:
        sql = str(self._required(request, "sql"))
        async with self._admitted():
            # Validation and parameter extraction are plan-level work, so
            # they run on the coordinator's local replica under the fence.
            async with self.coordinator.fence.read_locked():
                prepared = self.monitor.prepare(sql, session.purpose)
        statement_id = session.add_prepared(prepared)
        return ok_response(
            statement=statement_id,
            parameters=[p.placeholder for p in prepared.parameters],
        )

    async def _op_execute_prepared(
        self, session: ServerSession, request: dict
    ) -> dict:
        statement_id = str(self._required(request, "statement"))
        prepared = session.get_prepared(statement_id)
        params = _wire_params(request.get("params"))
        async with self._admitted():
            if session.txn is not None:
                await asyncio.sleep(0)
                with txn_scope(session.txn):
                    report = self.monitor.execute_with_report(
                        prepared.original_sql,
                        prepared.purpose,
                        user=session.user,
                        params=params,
                    )
                session.statements += 1
                return ok_response(
                    result=result_to_wire(report.result),
                    cache_hit=report.cache_hit,
                    checks=report.compliance_checks,
                )
            # Re-dispatch through the coordinator so the bound statement
            # scatters exactly like the equivalent ad-hoc query; the purpose
            # stays the one the statement was prepared under.
            report = await self.coordinator.query(
                prepared.original_sql,
                prepared.purpose,
                user=session.user,
                params=params,
            )
        session.statements += 1
        return ok_response(
            result=result_to_wire(report.result),
            cache_hit=report.cache_hit,
            checks=report.compliance_checks,
        )

    async def _run_select(self, session: ServerSession, sql: str, params) -> dict:
        if session.txn is not None:
            # Snapshot reads cannot scatter — the shard replicas do not
            # share the coordinator's version chains — so an open
            # transaction reads the local replica under its snapshot,
            # fence-free (that is the point of MVCC).
            await asyncio.sleep(0)
            with txn_scope(session.txn):
                report = self.monitor.execute_with_report(
                    sql, session.purpose, user=session.user, params=params
                )
            session.statements += 1
            return ok_response(
                result=result_to_wire(report.result),
                cache_hit=report.cache_hit,
                checks=report.compliance_checks,
                route="txn-local",
                epoch=session.txn.snapshot.epoch,
            )
        report = await self.coordinator.query(
            sql, session.purpose, user=session.user, params=params
        )
        session.statements += 1
        return ok_response(
            result=result_to_wire(report.result),
            cache_hit=report.cache_hit,
            checks=report.compliance_checks,
            route=report.route,
            epoch=report.epoch,
        )

    async def _run_txn(
        self, session: ServerSession, statement: "ast.Statement"
    ) -> dict:
        """BEGIN/COMMIT/ROLLBACK against the coordinator's local replica."""
        transactions = self.monitor.database.transactions
        if isinstance(statement, ast.Begin):
            if session.txn is not None:
                raise TransactionError("a transaction is already in progress")
            # Under the read fence so the snapshot never begins between the
            # two phases of an in-flight epoch broadcast.
            async with self.coordinator.fence.read_locked():
                session.txn = transactions.begin()
            self.monitor._count_txn("begin")
            return ok_response(
                txn=session.txn.txn_id,
                snapshot_ts=session.txn.snapshot.ts,
                epoch=session.txn.snapshot.epoch,
            )
        if isinstance(statement, ast.Commit):
            if session.txn is None:
                raise TransactionError("COMMIT without an active transaction")
            txn = session.txn
            session.txn = None
            written = txn.written_tables()
            try:
                # The write fence drains in-flight scatters so no scatter
                # straddles the commit + resync of the written tables.
                async with self.coordinator.fence.write_locked():
                    ts = transactions.commit(txn)
                    if written:
                        self.coordinator._route_cache.clear()
                        await self.coordinator._resync(tuple(written))
            except (CatalogConflictError, WriteConflictError):
                session.conflicts += 1
                self.monitor._count_txn("conflict")
                raise
            session.commits += 1
            self.monitor._count_txn("commit")
            return ok_response(committed=True, commit_ts=ts)
        if session.txn is None:
            raise TransactionError("ROLLBACK without an active transaction")
        txn = session.txn
        session.txn = None
        transactions.rollback(txn)
        session.rollbacks += 1
        self.monitor._count_txn("rollback")
        return ok_response(rolled_back=True)

    # -- observability --------------------------------------------------------------------

    async def stats(self) -> dict:
        """The sync server's ``stats`` shape plus a ``shards`` section."""
        return {
            "server": {
                "host": self.host,
                "port": self.port,
                "running": self._running,
                "connections": len(self._writers),
                "requests": self._requests,
                "denials": self._denials,
                "busy_responses": self._busy_responses,
                "loop": "asyncio",
            },
            "sessions": self.sessions.stats(),
            "admission": {
                "workers": self.max_concurrent,
                "max_pending": self.max_pending,
                "pending": self._pending,
                "submitted": self._admitted_total,
                "rejected": self._busy_responses,
                "completed": self._completed,
            },
            "plan_cache": self.monitor.plan_cache_info(),
            "optimizer": {
                "mode": self.monitor.optimizer_mode,
                "bitmaps": self.monitor.database.policy_bitmaps.stats(),
            },
            "executor": {
                "mode": self.monitor.executor_mode,
                "batch_size": self.monitor.batch_size,
            },
            "indexes": {
                "mode": self.monitor.indexes_mode,
                "manager": self.monitor.database.indexes.stats(),
                "catalog": self.monitor.database.indexes.describe(),
                "statistics": {
                    "collections": (
                        self.monitor.database.statistics.stats()["collections"]
                    ),
                    "tables": self.monitor.database.statistics.summary(),
                },
            },
            "lock": self.coordinator.fence.state(),
            "transactions": self._txn_stats(),
            "catalog": self._catalog_stats(),
            "shards": await self.coordinator.stats(),
        }

    def _catalog_stats(self) -> dict:
        database = self.monitor.database
        stats = database.catalog.stats()
        stats["active_snapshots"] = database.transactions.active_count()
        return stats

    def _txn_stats(self) -> dict:
        database = self.monitor.database
        stats = {
            "mode": "on" if database.transactions.enabled else "off",
            "manager": database.transactions.stats_dict(),
        }
        if database.durability is not None:
            stats["wal"] = database.durability.stats()
        return stats
