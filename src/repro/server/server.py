"""The concurrent enforced-query service.

:class:`QueryServer` fronts one :class:`~repro.core.monitor.EnforcementMonitor`
with a TCP listener speaking the length-prefixed JSON protocol of
:mod:`repro.server.protocol`.  Three mechanisms make concurrent traffic safe
and bounded:

* **Snapshot handoff (MVCC)** — enforced SELECTs (``query``, ``prepare``,
  ``execute_prepared``) pin a snapshot (commit ts × policy epoch) and read
  lock-free, so DML and policy updates never stall readers; writers still
  serialize on the writer side of the readers–writer lock, and multi-
  statement transactions (``BEGIN``/``COMMIT``/``ROLLBACK`` through
  ``execute``) settle write-write races first-committer-wins at COMMIT.
  With ``REPRO_TXN=off`` reads fall back to holding the lock shared — the
  pre-MVCC fence, where a reader never observes a half-applied write
  because writes exclude readers entirely.
* **Admission control** — statement work runs on a fixed
  :class:`~repro.server.admission.WorkerPool` behind a bounded queue;
  overload is answered with ``server_busy`` instead of queueing without
  bound (connections are kept open, clients retry).
* **Session manager** — per-connection authenticated state (user, purpose,
  prepared statements) lives in :class:`~repro.server.sessions.SessionManager`;
  a dropped connection releases everything it held.

Cheap control verbs (``hello``, ``set_purpose``, ``close_prepared``,
``stats``, ``bye``) are answered on the connection thread and bypass
admission — backpressure applies to statement execution, not to session
control.
"""

from __future__ import annotations

import socket
import threading
from contextlib import contextmanager

from ..core.monitor import EnforcementMonitor
from ..engine import resolve_txn_mode, txn_scope
from ..errors import (
    CatalogConflictError,
    ReproError,
    ServerBusyError,
    TransactionError,
    WireProtocolError,
    WriteConflictError,
)
from ..obs.metrics import MetricsRegistry
from ..sql import ast, parse_statement
from .admission import WorkerPool
from .locks import ReadWriteLock
from .protocol import (
    DENIAL_CODES,
    E_BUSY,
    E_INTERNAL,
    E_NO_SESSION,
    E_PROTOCOL,
    error_code_for,
    error_response,
    ok_response,
    recv_message,
    result_to_wire,
    send_message,
)
from .sessions import ServerSession, SessionManager


def _wire_params(params):
    """Decode parameter bindings off the wire.

    JSON object keys are always strings; digit keys were positional indexes
    (``$1``-style) on the client, so they are restored to ints before they
    reach :func:`repro.engine.database.bind_parameters`.
    """
    if params is None or isinstance(params, list):
        return params
    if isinstance(params, dict):
        return {
            int(key) if isinstance(key, str) and key.isdigit() else key: value
            for key, value in params.items()
        }
    raise WireProtocolError(
        f"params must be an array or object, got {type(params).__name__}"
    )


class QueryServer:
    """A TCP query service enforcing purpose-based access control."""

    def __init__(
        self,
        monitor: EnforcementMonitor,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        max_pending: int = 32,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.monitor = monitor
        self.host = host
        self.port = port
        self.workers = workers
        self.max_pending = max_pending
        # One process-wide registry: explicit > already-attached > fresh.
        # The monitor aggregates into the same registry, so a `stats` scrape
        # sees enforcement and wire-level counters side by side.
        self.metrics = metrics or monitor.metrics or MetricsRegistry()
        monitor.attach_metrics(self.metrics)
        self.metrics.counter(
            "repro_requests_total", "Wire-protocol requests by verb"
        )
        self.metrics.counter(
            "repro_admission_rejections_total",
            "Statements rejected with server_busy by admission control",
        )
        self.metrics.counter(
            "repro_denials_total", "Requests denied by access control"
        )
        self.metrics.gauge(
            "repro_connections", "Currently open client connections"
        )
        self.sessions = SessionManager(monitor)
        self.rwlock = ReadWriteLock()
        # With MVCC on, reads run under a pinned snapshot instead of the
        # read side of the lock (snapshot handoff): policy writes and DML
        # never stall readers.  REPRO_TXN=off restores the pre-MVCC
        # reader/writer fence.
        self.txn_mode = resolve_txn_mode(None)
        self._pool: WorkerPool | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._conn_threads: set[threading.Thread] = set()
        self._state_lock = threading.Lock()
        self._running = False
        self._requests = 0
        self._denials = 0
        self._busy_responses = 0

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "QueryServer":
        """Bind, listen and start accepting connections; returns ``self``."""
        if self._running:
            raise RuntimeError("server is already running")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._pool = WorkerPool(
            workers=self.workers, max_pending=self.max_pending
        )
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, drop connections, drain the pool, join threads."""
        if not self._running:
            return
        self._running = False
        assert self._listener is not None and self._pool is not None
        try:
            self._listener.close()
        except OSError:
            pass
        with self._state_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for thread in list(self._conn_threads):
            thread.join(timeout=5)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is reachable at (port 0 → assigned)."""
        return (self.host, self.port)

    @contextmanager
    def exclusive(self):
        """Exclusive access for administrative mutations.

        Policy changes go through the admin API in-process, not over the
        wire; wrapping them in ``with server.exclusive():`` orders them
        against in-flight query traffic exactly like DML — no reader runs
        while the mutation is mid-flight, and every later read sees the
        bumped policy epoch.
        """
        with self.rwlock.write_locked():
            yield

    # -- accept / connection loops --------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            with self._state_lock:
                if not self._running:
                    conn.close()
                    return
                self._connections.add(conn)
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name="repro-server-conn",
                    daemon=True,
                )
                self._conn_threads.add(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        session: ServerSession | None = None
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    request = recv_message(conn)
                except (WireProtocolError, OSError):
                    return
                if request is None:
                    return
                response, session, keep_open = self._handle(session, request)
                try:
                    send_message(conn, response)
                except OSError:
                    return
                if not keep_open:
                    return
        finally:
            if session is not None:
                self.sessions.close(session.id)
            with self._state_lock:
                self._connections.discard(conn)
                self._conn_threads.discard(threading.current_thread())
            try:
                conn.close()
            except OSError:
                pass

    # -- dispatch -------------------------------------------------------------------

    def _handle(
        self, session: ServerSession | None, request: dict
    ) -> tuple[dict, ServerSession | None, bool]:
        """One request → ``(response, session, keep_connection_open)``."""
        with self._state_lock:
            self._requests += 1
            connections = len(self._connections)
        op = request.get("op")
        self.metrics.counter("repro_requests_total").inc(verb=str(op))
        try:
            if op == "hello":
                return self._op_hello(session, request)
            if op == "bye":
                if session is not None:
                    self.sessions.close(session.id)
                return ok_response(goodbye=True), None, False
            if op == "stats":
                self.metrics.gauge("repro_connections").set(connections)
                return (
                    ok_response(stats=self.stats(), metrics=self.metrics.render()),
                    session,
                    True,
                )
            if not isinstance(op, str):
                return (
                    error_response(E_PROTOCOL, "request has no 'op' field"),
                    session,
                    True,
                )
            if session is None:
                return (
                    error_response(
                        E_NO_SESSION, f"{op!r} requires a session; send 'hello'"
                    ),
                    session,
                    True,
                )
            handler = {
                "set_purpose": self._op_set_purpose,
                "query": self._op_query,
                "execute": self._op_execute,
                "prepare": self._op_prepare,
                "execute_prepared": self._op_execute_prepared,
                "close_prepared": self._op_close_prepared,
            }.get(op)
            if handler is None:
                return (
                    error_response(E_PROTOCOL, f"unknown verb {op!r}"),
                    session,
                    True,
                )
            return handler(session, request), session, True
        except ServerBusyError as exc:
            with self._state_lock:
                self._busy_responses += 1
            self.metrics.counter("repro_admission_rejections_total").inc()
            return error_response(E_BUSY, str(exc)), session, True
        except WireProtocolError as exc:
            return error_response(E_PROTOCOL, str(exc)), session, True
        except ReproError as exc:
            code = error_code_for(exc)
            if code in DENIAL_CODES:
                with self._state_lock:
                    self._denials += 1
                if session is not None:
                    session.denials += 1
                self.metrics.counter("repro_denials_total").inc()
            return error_response(code, str(exc)), session, True
        except Exception as exc:  # keep the connection alive on server bugs
            return error_response(E_INTERNAL, f"{type(exc).__name__}: {exc}"), (
                session
            ), True

    @staticmethod
    def _required(request: dict, field: str) -> object:
        try:
            return request[field]
        except KeyError:
            raise WireProtocolError(
                f"{request.get('op')!r} requires a {field!r} field"
            ) from None

    # -- session verbs ---------------------------------------------------------------

    def _op_hello(
        self, session: ServerSession | None, request: dict
    ) -> tuple[dict, ServerSession, bool]:
        if session is not None:
            return (
                error_response(
                    E_PROTOCOL, "session already established on this connection"
                ),
                session,
                True,
            )
        user = str(self._required(request, "user"))
        purpose = str(self._required(request, "purpose"))
        opened = self.sessions.open(user, purpose)
        return (
            ok_response(session=opened.id, user=user, purpose=purpose),
            opened,
            True,
        )

    def _op_set_purpose(self, session: ServerSession, request: dict) -> dict:
        purpose = str(self._required(request, "purpose"))
        session.session.set_purpose(purpose)
        return ok_response(purpose=purpose)

    def _op_close_prepared(self, session: ServerSession, request: dict) -> dict:
        statement_id = str(self._required(request, "statement"))
        session.close_prepared(statement_id)
        return ok_response(closed=statement_id)

    # -- statement verbs (admission-controlled) --------------------------------------

    def _op_query(self, session: ServerSession, request: dict) -> dict:
        sql = str(self._required(request, "sql"))
        params = _wire_params(request.get("params"))
        assert self._pool is not None
        return self._pool.run(self._run_select, session, sql, params)

    def _op_execute(self, session: ServerSession, request: dict) -> dict:
        sql = str(self._required(request, "sql"))
        statement = parse_statement(sql)  # parse errors answered inline
        assert self._pool is not None
        if isinstance(statement, (ast.Begin, ast.Commit, ast.Rollback)):
            return self._pool.run(self._run_txn, session, statement)
        if isinstance(statement, ast.Explain):
            return self._pool.run(self._run_explain, session, statement)
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            return self._pool.run(self._run_select, session, sql, None)
        return self._pool.run(self._run_dml, session, sql)

    def _op_prepare(self, session: ServerSession, request: dict) -> dict:
        sql = str(self._required(request, "sql"))
        assert self._pool is not None
        return self._pool.run(self._run_prepare, session, sql)

    def _op_execute_prepared(self, session: ServerSession, request: dict) -> dict:
        statement_id = str(self._required(request, "statement"))
        prepared = session.get_prepared(statement_id)
        params = _wire_params(request.get("params"))
        assert self._pool is not None
        return self._pool.run(
            self._run_execute_prepared, session, prepared, params
        )

    # -- worker-side execution --------------------------------------------------------

    @contextmanager
    def _read_scope(self, session: ServerSession):
        """Consistency scope for one read statement.

        Inside an open transaction: activate the session's transaction on
        this worker thread (its snapshot pins both data versions and the
        policy epoch).  Otherwise, with MVCC on, pin an ephemeral read
        snapshot — the *snapshot handoff* that replaces the read fence, so
        writers never block this read.  With ``REPRO_TXN=off``: the
        pre-MVCC shared lock.
        """
        if session.txn is not None:
            with txn_scope(session.txn):
                yield
        elif self.txn_mode == "on":
            # Pin the snapshot under the read side of the lock — a snapshot
            # can never begin in the middle of an exclusive admin batch or
            # a DML write — then release it and execute lock-free: writers
            # never block the read itself (the snapshot handoff).
            scope = self.monitor.database.transactions.read_snapshot()
            with self.rwlock.read_locked():
                scope.__enter__()
            try:
                yield
            finally:
                scope.__exit__(None, None, None)
        else:
            with self.rwlock.read_locked():
                yield

    def _run_select(
        self, session: ServerSession, sql: str, params
    ) -> dict:
        with self._read_scope(session):
            report = self.monitor.execute_with_report(
                sql, session.purpose, user=session.user, params=params
            )
        session.statements += 1
        return ok_response(
            result=result_to_wire(report.result),
            cache_hit=report.cache_hit,
            checks=report.compliance_checks,
        )

    def _run_explain(self, session: ServerSession, statement: ast.Explain) -> dict:
        with self._read_scope(session):
            result = self.monitor.explain(
                statement.statement,
                session.purpose,
                user=session.user,
                analyze=statement.analyze,
            )
        # Deliberately not counted in session.statements: EXPLAIN is plan
        # inspection, not data access, and must not skew per-session stats.
        return ok_response(result=result_to_wire(result), explain=True)

    def _run_dml(self, session: ServerSession, sql: str) -> dict:
        if session.txn is not None:
            # Transactional DML stages privately — no lock needed; the
            # write-write race is settled at COMMIT (first committer wins).
            with txn_scope(session.txn):
                affected = self.monitor.execute_statement(
                    sql, session.purpose, user=session.user
                )
        else:
            with self.rwlock.write_locked():
                affected = self.monitor.execute_statement(
                    sql, session.purpose, user=session.user
                )
        session.statements += 1
        return ok_response(rowcount=affected)

    def _run_txn(self, session: ServerSession, statement: ast.Statement) -> dict:
        """BEGIN/COMMIT/ROLLBACK against the session's transaction handle."""
        transactions = self.monitor.database.transactions
        if isinstance(statement, ast.Begin):
            if session.txn is not None:
                raise TransactionError("a transaction is already in progress")
            # Under the read lock: a transaction cannot pin its snapshot
            # in the middle of an exclusive admin batch (see _read_scope).
            with self.rwlock.read_locked():
                session.txn = transactions.begin()
            self.monitor._count_txn("begin")
            return ok_response(
                txn=session.txn.txn_id,
                snapshot_ts=session.txn.snapshot.ts,
                epoch=session.txn.snapshot.epoch,
            )
        if isinstance(statement, ast.Commit):
            if session.txn is None:
                raise TransactionError("COMMIT without an active transaction")
            txn = session.txn
            session.txn = None
            try:
                # Under the write lock: commits order against autocommit
                # DML and in-process admin mutations (`exclusive()`).
                with self.rwlock.write_locked():
                    ts = transactions.commit(txn)
            except (CatalogConflictError, WriteConflictError):
                session.conflicts += 1
                self.monitor._count_txn("conflict")
                raise
            session.commits += 1
            self.monitor._count_txn("commit")
            return ok_response(committed=True, commit_ts=ts)
        if session.txn is None:
            raise TransactionError("ROLLBACK without an active transaction")
        txn = session.txn
        session.txn = None
        transactions.rollback(txn)
        session.rollbacks += 1
        self.monitor._count_txn("rollback")
        return ok_response(rolled_back=True)

    def _run_prepare(self, session: ServerSession, sql: str) -> dict:
        with self._read_scope(session):
            prepared = self.monitor.prepare(sql, session.purpose)
        statement_id = session.add_prepared(prepared)
        return ok_response(
            statement=statement_id,
            parameters=[p.placeholder for p in prepared.parameters],
        )

    def _run_execute_prepared(
        self, session: ServerSession, prepared, params
    ) -> dict:
        with self._read_scope(session):
            report = prepared.execute_with_report(
                params=params, user=session.user
            )
        session.statements += 1
        return ok_response(
            result=result_to_wire(report.result),
            cache_hit=report.cache_hit,
            checks=report.compliance_checks,
        )

    # -- observability ----------------------------------------------------------------

    def stats(self) -> dict:
        """Everything observable about the service, one JSON object."""
        assert self._pool is not None
        with self._state_lock:
            server = {
                "host": self.host,
                "port": self.port,
                "running": self._running,
                "connections": len(self._connections),
                "requests": self._requests,
                "denials": self._denials,
                "busy_responses": self._busy_responses,
            }
        return {
            "server": server,
            "sessions": self.sessions.stats(),
            "admission": self._pool.stats(),
            "plan_cache": self.monitor.plan_cache_info(),
            "optimizer": {
                "mode": self.monitor.optimizer_mode,
                "bitmaps": self.monitor.database.policy_bitmaps.stats(),
            },
            "executor": {
                "mode": self.monitor.executor_mode,
                "batch_size": self.monitor.batch_size,
            },
            "indexes": {
                "mode": self.monitor.indexes_mode,
                "manager": self.monitor.database.indexes.stats(),
                "catalog": self.monitor.database.indexes.describe(),
                "statistics": {
                    "collections": (
                        self.monitor.database.statistics.stats()["collections"]
                    ),
                    "tables": self.monitor.database.statistics.summary(),
                },
            },
            "lock": self.rwlock.state(),
            "transactions": self._txn_stats(),
            "catalog": self._catalog_stats(),
        }

    def _catalog_stats(self) -> dict:
        database = self.monitor.database
        stats = database.catalog.stats()
        stats["active_snapshots"] = database.transactions.active_count()
        return stats

    def _txn_stats(self) -> dict:
        database = self.monitor.database
        stats = {
            "mode": self.txn_mode,
            "manager": database.transactions.stats_dict(),
        }
        if database.durability is not None:
            stats["wal"] = database.durability.stats()
        return stats
