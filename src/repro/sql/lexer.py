"""Hand-written SQL lexer.

Turns a SQL source string into a list of :class:`~repro.sql.tokens.Token`.
Supports:

* line comments (``-- ...``) and block comments (``/* ... */``),
* single-quoted string literals with ``''`` escaping,
* double-quoted identifiers,
* bit-string literals ``b'0101'`` (used for policy masks in rewritten
  queries, mirroring PostgreSQL's syntax),
* integer and floating point numeric literals,
* query parameter placeholders — ``?`` (positional), ``$n`` (numbered,
  PostgreSQL style) and ``:name`` (named) — used by prepared statements,
* the operator and punctuation inventory of :mod:`repro.sql.tokens`.
"""

from __future__ import annotations

from ..errors import LexError
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` and return the token list (terminated by EOF)."""
    return Lexer(sql).tokenize()


class Lexer:
    """Single-pass scanner over a SQL source string."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1
        self.tokens: list[Token] = []
        self._token_line = 1
        self._token_column = 1

    # -- public API --------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Scan the whole source and return the token list."""
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                break
            self._scan_token()
        self._emit(TokenType.EOF, "")
        return self.tokens

    # -- internals ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _emit(self, token_type: TokenType, value: str, start: int | None = None) -> None:
        position = self.pos if start is None else start
        self.tokens.append(
            Token(token_type, value, position, self._token_line, self._token_column)
        )

    def _error(self, message: str) -> LexError:
        return LexError(message, self.pos, self.line, self.column)

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _scan_token(self) -> None:
        start = self.pos
        self._token_line = self.line
        self._token_column = self.column
        ch = self._peek()

        # Bit-string literal: b'0101' / B'0101'
        if ch in "bB" and self._peek(1) == "'":
            self._scan_bitstring(start)
            return
        if ch.isalpha() or ch == "_":
            self._scan_word(start)
            return
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            self._scan_number(start)
            return
        if ch == "'":
            self._scan_string(start)
            return
        if ch == '"':
            self._scan_quoted_identifier(start)
            return
        # Parameter placeholders.  The token value encodes the flavour:
        # "" for a positional "?", digits for "$n", a word for ":name".
        if ch == "?":
            self._advance()
            self._emit(TokenType.PARAMETER, "", start)
            return
        if ch == "$" and self._peek(1).isdigit():
            self._advance()
            digits_start = self.pos
            while self._peek().isdigit():
                self._advance()
            self._emit(TokenType.PARAMETER, self.source[digits_start : self.pos], start)
            return
        if ch == ":" and (self._peek(1).isalpha() or self._peek(1) == "_"):
            self._advance()
            name_start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            self._emit(TokenType.PARAMETER, self.source[name_start : self.pos], start)
            return
        for op in MULTI_CHAR_OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                self._emit(TokenType.OPERATOR, op, start)
                return
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            self._emit(TokenType.OPERATOR, ch, start)
            return
        if ch in PUNCTUATION:
            self._advance()
            self._emit(TokenType.PUNCTUATION, ch, start)
            return
        raise self._error(f"unexpected character {ch!r}")

    def _scan_word(self, start: int) -> None:
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        upper = text.upper()
        if upper in KEYWORDS:
            self._emit(TokenType.KEYWORD, upper, start)
        else:
            self._emit(TokenType.IDENTIFIER, text, start)

    def _scan_number(self, start: int) -> None:
        seen_dot = False
        seen_exp = False
        while True:
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not seen_dot and not seen_exp:
                # A trailing '.' followed by a non-digit belongs to
                # qualified names (e.g. "1." never appears in our SQL).
                if not self._peek(1).isdigit():
                    break
                seen_dot = True
                self._advance()
            elif ch in "eE" and not seen_exp and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                seen_exp = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
            else:
                break
        self._emit(TokenType.NUMBER, self.source[start : self.pos], start)

    def _scan_string(self, start: int) -> None:
        self._advance()  # opening quote
        chunks: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    chunks.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    break
            else:
                chunks.append(ch)
                self._advance()
        self._emit(TokenType.STRING, "".join(chunks), start)

    def _scan_bitstring(self, start: int) -> None:
        self._advance(2)  # b'
        bits_start = self.pos
        # NB: compare against a tuple — `"" in "01"` is True, and _peek()
        # returns "" at end of input.
        while self._peek() in ("0", "1"):
            self._advance()
        bits = self.source[bits_start : self.pos]
        if self._peek() != "'":
            raise self._error("unterminated bit-string literal")
        self._advance()
        self._emit(TokenType.BITSTRING, bits, start)

    def _scan_quoted_identifier(self, start: int) -> None:
        self._advance()  # opening quote
        chunks: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated quoted identifier")
            ch = self._peek()
            if ch == '"':
                if self._peek(1) == '"':
                    chunks.append('"')
                    self._advance(2)
                else:
                    self._advance()
                    break
            else:
                chunks.append(ch)
                self._advance()
        self._emit(TokenType.IDENTIFIER, "".join(chunks), start)
