"""Token model for the SQL lexer.

The lexer produces a flat list of :class:`Token` objects.  Keywords are
recognized case-insensitively and normalized to upper case in
:attr:`Token.value`; identifiers keep their original spelling (SQL
identifiers are matched case-insensitively downstream, like PostgreSQL's
default folding, but we preserve the source text for round-tripping).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.sql.lexer.Lexer`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    BITSTRING = "bitstring"  # b'0101' literals (policy masks)
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"  # ( ) , . ;
    PARAMETER = "parameter"  # ? / $n / :name placeholders
    EOF = "eof"


#: Reserved words recognized by the parser.  This list covers the SQL subset
#: used by the paper's workload (SELECT queries with joins, grouping and
#: subqueries) plus the DDL/DML needed to build and maintain the target DB.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
        "LIMIT", "OFFSET", "AS", "ON", "JOIN", "INNER", "LEFT", "RIGHT",
        "FULL", "OUTER", "CROSS", "AND", "OR", "NOT", "IN", "IS", "NULL",
        "LIKE", "BETWEEN", "EXISTS", "DISTINCT", "ALL", "ANY", "SOME",
        "CASE", "WHEN", "THEN", "ELSE", "END", "ASC", "DESC", "TRUE",
        "FALSE", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
        "CREATE", "TABLE", "DROP", "ALTER", "ADD", "PRIMARY",
        "DEFAULT", "UNION", "INTERSECT", "EXCEPT", "CAST", "ESCAPE",
    }
)
# NOTE: type names (INTEGER, TEXT, TIMESTAMP, BIT, ...) and the words
# COLUMN/KEY/PRECISION/VARYING are deliberately *soft* keywords — they are
# lexed as identifiers so that schemas like the paper's
# sensed_data(watch_id, timestamp, ...) can use them as column names.

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_OPERATORS = ("<>", "<=", ">=", "!=", "||")

SINGLE_CHAR_OPERATORS = frozenset("+-*/%<>=&|")

PUNCTUATION = frozenset("(),.;")


@dataclass(frozen=True)
class Token:
    """A single lexical unit.

    Attributes:
        type: The lexical category.
        value: Normalized text — upper case for keywords, raw text for
            identifiers/operators, decoded content for string literals.
        position: Offset of the first character in the source string.
        line: 1-based source line.
        column: 1-based source column.
    """

    type: TokenType
    value: str
    position: int
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        """Return ``True`` if this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"
