"""SQL front end: lexer, parser, AST and printer.

This package replaces the commercial "SQL General Parser" used by the paper
(Section 5.2, footnote 11).  The supported dialect covers the paper's whole
workload: SELECT with joins, subqueries in FROM/WHERE/select list, GROUP BY,
HAVING, ORDER BY, DISTINCT, LIMIT/OFFSET, plus INSERT/UPDATE/DELETE and
CREATE/ALTER/DROP TABLE for framework configuration.
"""

from . import ast
from .lexer import tokenize
from .parser import parse_expression, parse_select, parse_statement
from .printer import print_expression, print_select, to_sql

__all__ = [
    "ast",
    "tokenize",
    "parse_expression",
    "parse_select",
    "parse_statement",
    "print_expression",
    "print_select",
    "to_sql",
]
