"""Abstract syntax tree for the supported SQL subset.

Nodes are plain frozen dataclasses; the rewriter builds modified copies with
:func:`dataclasses.replace`.  Every expression node implements
``child_expressions()`` (direct sub-expressions) and the module offers
:func:`walk_expression` / :func:`iter_column_refs` / :func:`iter_subqueries`
helpers that the signature-derivation pipeline relies on.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expression:
    """Base class of all expression nodes."""

    def child_expressions(self) -> tuple["Expression", ...]:
        """Direct sub-expressions of this node (not descending into subqueries)."""
        return ()

    def child_selects(self) -> tuple["Select", ...]:
        """Subqueries nested directly under this node."""
        return ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean or NULL (``value is None``)."""

    value: object


@dataclass(frozen=True)
class BitStringLiteral(Expression):
    """A ``b'0101'`` literal; ``bits`` is the raw 0/1 text."""

    bits: str


@dataclass(frozen=True)
class Parameter(Expression):
    """A query parameter placeholder: ``?``, ``$n`` or ``:name``.

    Positional/numbered parameters carry a 1-based ``index``; named
    parameters carry a lower-cased ``name``.  Exactly one of the two is set.
    The value is supplied at execution time through the parameter
    environment, which is what lets one prepared plan serve many bindings.
    """

    index: int | None = None
    name: str | None = None

    @property
    def key(self) -> int | str:
        """The binding key: the index for positional, the name for named."""
        return self.name if self.name is not None else self.index

    @property
    def placeholder(self) -> str:
        """The canonical SQL spelling of this parameter."""
        if self.name is not None:
            return f":{self.name}"
        return f"${self.index}"


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference such as ``t.col`` or ``col``."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``t.*`` in a select list or inside ``count(*)``."""

    table: str | None = None


@dataclass(frozen=True)
class UnaryOp(Expression):
    """``NOT x``, ``-x`` or ``+x``."""

    op: str
    operand: Expression

    def child_expressions(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator application (arithmetic, comparison, AND/OR, ``||``)."""

    op: str
    left: Expression
    right: Expression

    def child_expressions(self) -> tuple[Expression, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar or aggregate function call.

    ``count(*)`` is represented with a single :class:`Star` argument.
    """

    name: str
    args: tuple[Expression, ...] = ()
    distinct: bool = False

    def child_expressions(self) -> tuple[Expression, ...]:
        return self.args


@dataclass(frozen=True)
class Cast(Expression):
    """``CAST(expr AS type)``."""

    operand: Expression
    type_name: str

    def child_expressions(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (item, item, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def child_expressions(self) -> tuple[Expression, ...]:
        return (self.operand, *self.items)


@dataclass(frozen=True)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expression
    subquery: "Select"
    negated: bool = False

    def child_expressions(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def child_selects(self) -> tuple["Select", ...]:
        return (self.subquery,)


@dataclass(frozen=True)
class Exists(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "Select"
    negated: bool = False

    def child_selects(self) -> tuple["Select", ...]:
        return (self.subquery,)


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """A parenthesized SELECT used as a scalar value."""

    subquery: "Select"

    def child_selects(self) -> tuple["Select", ...]:
        return (self.subquery,)


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def child_expressions(self) -> tuple[Expression, ...]:
        return (self.operand, self.low, self.high)


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern``."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def child_expressions(self) -> tuple[Expression, ...]:
        return (self.operand, self.pattern)


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def child_expressions(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class CaseWhen(Expression):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    whens: tuple[tuple[Expression, Expression], ...]
    operand: Expression | None = None
    else_result: Expression | None = None

    def child_expressions(self) -> tuple[Expression, ...]:
        children: list[Expression] = []
        if self.operand is not None:
            children.append(self.operand)
        for condition, result in self.whens:
            children.append(condition)
            children.append(result)
        if self.else_result is not None:
            children.append(self.else_result)
        return tuple(children)


# ---------------------------------------------------------------------------
# FROM sources
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableSource:
    """Base class of FROM-clause sources."""


@dataclass(frozen=True)
class TableName(TableSource):
    """A base-table reference with optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this source is visible as in the query."""
        return self.alias or self.name


@dataclass(frozen=True)
class SubquerySource(TableSource):
    """A derived table: ``(SELECT ...) alias``."""

    select: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass(frozen=True)
class Join(TableSource):
    """A join of two sources.  ``kind`` is INNER/LEFT/RIGHT/CROSS."""

    left: TableSource
    right: TableSource
    kind: str = "INNER"
    condition: Expression | None = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One entry of a select list."""

    expression: Expression
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    """One entry of an ORDER BY clause."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class Statement:
    """Base class of all statements."""


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT statement (also used for subqueries)."""

    items: tuple[SelectItem, ...]
    sources: tuple[TableSource, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class SetOperation(Statement):
    """``<query> UNION|INTERSECT|EXCEPT [ALL] <select>``.

    Set operations are supported at statement level (and are enforced
    branch-by-branch by the monitor); they cannot appear as subqueries.
    ``left`` may itself be a :class:`SetOperation` (left-associative chain).
    """

    left: "Select | SetOperation"
    right: Select
    op: str  # "UNION" | "INTERSECT" | "EXCEPT"
    all: bool = False

    def branches(self) -> list[Select]:
        """The plain SELECT branches, left to right."""
        left_branches = (
            self.left.branches()
            if isinstance(self.left, SetOperation)
            else [self.left]
        )
        return [*left_branches, self.right]


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO t (cols) VALUES (...), (...)`` or ``INSERT ... SELECT``."""

    table: str
    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Expression, ...], ...] = ()
    select: Select | None = None


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE t SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: tuple[tuple[str, Expression], ...] = ()
    where: Expression | None = None


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM t [WHERE ...]``."""

    table: str
    where: Expression | None = None


@dataclass(frozen=True)
class ColumnDef:
    """A column definition in CREATE TABLE / ALTER TABLE ADD COLUMN."""

    name: str
    type_name: str
    primary_key: bool = False
    not_null: bool = False
    default: Expression | None = None


@dataclass(frozen=True)
class CreateTable(Statement):
    """``CREATE TABLE t (coldefs...)``."""

    name: str
    columns: tuple[ColumnDef, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class DropTable(Statement):
    """``DROP TABLE t``."""

    name: str


@dataclass(frozen=True)
class AlterTableAddColumn(Statement):
    """``ALTER TABLE t ADD COLUMN coldef``."""

    table: str
    column: ColumnDef


@dataclass(frozen=True)
class AlterTableDropColumn(Statement):
    """``ALTER TABLE t DROP COLUMN name``."""

    table: str
    column_name: str


@dataclass(frozen=True)
class CreateIndex(Statement):
    """``CREATE INDEX name ON table (cols) [USING kind] [PARTITION BY col]``.

    ``kind`` selects the structure (``btree`` default, or ``hash``);
    ``partitioned_by`` names the policy column when the index additionally
    groups its row ids by policy value for guard-time partition pruning.
    ``INDEX``, ``USING`` and ``PARTITION`` are soft keywords.
    """

    name: str
    table: str
    columns: tuple[str, ...]
    kind: str = "btree"
    partitioned_by: str | None = None


@dataclass(frozen=True)
class DropIndex(Statement):
    """``DROP INDEX name``."""

    name: str


@dataclass(frozen=True)
class Analyze(Statement):
    """``ANALYZE [table]`` — collect optimizer statistics.

    With no table every table is analyzed.  Like ``EXPLAIN``, ``ANALYZE``
    is a soft keyword recognized only at the very start of a statement.
    """

    table: str | None = None


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN [ANALYZE] <select or set-operation>``.

    ``EXPLAIN`` shows the enforced (rewritten) plan without executing it;
    ``EXPLAIN ANALYZE`` executes the statement under a trace and annotates
    the plan with per-node row counts and stage timings.  ``EXPLAIN`` and
    ``ANALYZE`` are soft keywords — they stay usable as identifiers
    everywhere except at the very start of a statement.
    """

    statement: Statement
    analyze: bool = False


@dataclass(frozen=True)
class Begin(Statement):
    """``BEGIN [TRANSACTION | WORK]`` — open a snapshot-isolation transaction.

    Like ``EXPLAIN``/``ANALYZE``, the transaction-control words are soft
    keywords recognized only at the very start of a statement, so columns
    named ``begin`` keep working.
    """


@dataclass(frozen=True)
class Commit(Statement):
    """``COMMIT [TRANSACTION | WORK]`` — first-committer-wins validate + apply."""


@dataclass(frozen=True)
class Rollback(Statement):
    """``ROLLBACK [TRANSACTION | WORK]`` — discard the staged writes."""


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_expression(expr: Expression) -> Iterator[Expression]:
    """Yield ``expr`` and all nested expressions (not entering subqueries)."""
    stack: list[Expression] = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.child_expressions())


def iter_column_refs(expr: Expression) -> Iterator[ColumnRef]:
    """Yield every :class:`ColumnRef` in ``expr`` (not entering subqueries)."""
    for node in walk_expression(expr):
        if isinstance(node, ColumnRef):
            yield node


def iter_subqueries(expr: Expression) -> Iterator[Select]:
    """Yield every SELECT nested directly or transitively under ``expr``.

    Only the *top level* of each nested select is yielded; callers recurse
    explicitly if they need deeper levels.
    """
    for node in walk_expression(expr):
        yield from node.child_selects()


def clause_expressions(select: Select) -> Iterator[Expression]:
    """Yield the top-level expressions of every clause of a SELECT."""
    for item in select.items:
        yield item.expression
    if select.where is not None:
        yield select.where
    yield from select.group_by
    if select.having is not None:
        yield select.having
    for order_item in select.order_by:
        yield order_item.expression
    yield from join_conditions(select)


def collect_parameters(statement: "Select | SetOperation") -> list[Parameter]:
    """Every :class:`Parameter` of a statement, subqueries included.

    Used by the prepared-statement machinery to validate bindings before
    execution; duplicates (the same placeholder used twice) appear once.
    """
    seen: dict[object, Parameter] = {}

    def scan_select(select: Select) -> None:
        for source in select_sources(select):
            if isinstance(source, SubquerySource):
                scan_select(source.select)
        for expression in clause_expressions(select):
            for node in walk_expression(expression):
                if isinstance(node, Parameter):
                    seen.setdefault(node.key, node)
                for nested in node.child_selects():
                    scan_select(nested)

    branches = (
        statement.branches() if isinstance(statement, SetOperation) else [statement]
    )
    for branch in branches:
        scan_select(branch)
    return list(seen.values())


def expression_aggregates(expr: Expression, aggregate_names: frozenset[str]) -> list[FunctionCall]:
    """Return the aggregate calls appearing in ``expr`` (outside subqueries)."""
    return [
        node
        for node in walk_expression(expr)
        if isinstance(node, FunctionCall) and node.name.lower() in aggregate_names
    ]


def select_sources(select: Select) -> Iterator[TableSource]:
    """Yield every leaf (non-Join) source of a SELECT's FROM clause."""

    def _leaves(source: TableSource) -> Iterator[TableSource]:
        if isinstance(source, Join):
            yield from _leaves(source.left)
            yield from _leaves(source.right)
        else:
            yield source

    for source in select.sources:
        yield from _leaves(source)


def join_conditions(select: Select) -> Iterator[Expression]:
    """Yield every join ON condition of a SELECT's FROM clause."""

    def _conditions(source: TableSource) -> Iterator[Expression]:
        if isinstance(source, Join):
            yield from _conditions(source.left)
            yield from _conditions(source.right)
            if source.condition is not None:
                yield source.condition

    for source in select.sources:
        yield from _conditions(source)


def replace_where(select: Select, where: Expression | None) -> Select:
    """Return a copy of ``select`` with a new WHERE clause."""
    import dataclasses

    return dataclasses.replace(select, where=where)


def conjoin(left: Expression | None, right: Expression) -> Expression:
    """AND-combine two predicates, treating ``None`` as absent."""
    if left is None:
        return right
    return BinaryOp("AND", left, right)


AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})
"""Names treated as aggregates by the analyzer and executor."""
